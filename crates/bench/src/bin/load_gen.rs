//! Load generator for the `pinocchio-serve` query service.
//!
//! Boots a real server over TCP, hammers it with pipelined concurrent
//! clients while a writer connection streams position updates, and
//! measures end-to-end throughput plus the queue-to-response latency
//! histogram — once per configured `batch_max`, so the checked-in
//! record shows what per-epoch request batching buys (shared
//! from-scratch solves, fewer snapshot loads) against the batching-off
//! baseline.
//!
//! The run doubles as an exactness gate: after the load drains, the
//! final `best` and `solve` answers over the wire must **bit-match** a
//! from-scratch computation on a locally mirrored copy of the final
//! state (same updates applied through the same [`World::apply`]
//! codepath), and the server's final counters must satisfy the
//! `ServeStats` accounting identity. Any disagreement aborts the run
//! before a record is written.
//!
//! Emits `BENCH_PR5.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per batch size. Runs at
//! `PINOCCHIO_SCALE=small` in CI (the `serve-smoke` job).

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_geo::Point;
use pinocchio_serve::{serve, MaintenanceMode, ServerConfig, UpdateOp, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

/// Concurrent query connections.
const CLIENTS: usize = 4;
/// Queries sent by each client.
const QUERIES_PER_CLIENT: usize = 200;
/// Requests each client keeps in flight (pipelining keeps the admission
/// queue non-empty, which is what gives `batch_max` something to do).
const PIPELINE: usize = 32;
/// Updates streamed by the writer connection during the query load.
const UPDATES: usize = 50;
/// The benchmarked batch sizes: batching off vs. the server default ×2.
const BATCH_SIZES: [usize; 2] = [1, 32];
/// Candidate-set size (smaller than the solver benches: every `solve`
/// query is a full from-scratch run).
const CANDIDATES: usize = 60;

/// A blocking line client for the serial (writer / verification) roles.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.stream, "{request}").expect("send");
        let mut line = String::new();
        // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
        self.reader.read_line(&mut line).expect("recv");
        serde_json::from_str(line.trim_end()).expect("response is JSON")
    }
}

fn uint(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field} in {v}"))
}

fn float_bits(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing f64 field {field} in {v}"))
        .to_bits()
}

/// The query mix one client cycles through; solves rotate over the
/// pruning solvers so batch mates can share runs per (epoch, algo).
fn request_for(i: usize, client: usize, candidate_ids: &[u64]) -> String {
    match i % 4 {
        0 => r#"{"v":1,"op":"best"}"#.to_string(),
        1 => format!(r#"{{"v":1,"op":"top_k","k":{}}}"#, 1 + (i + client) % 5),
        2 => format!(
            r#"{{"v":1,"op":"influence_of","candidate":{}}}"#,
            candidate_ids[(i + client) % candidate_ids.len()]
        ),
        _ => {
            let algo = ["pin-vo", "pin", "pin-join"][(i / 4 + client) % 3];
            format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#)
        }
    }
}

/// Runs the full load against one server instance and returns the row.
fn run_one(initial: &World, batch_max: usize) -> serde_json::Value {
    let handle = serve(
        initial.clone(),
        ServerConfig {
            queue_capacity: 2 * CLIENTS * PIPELINE,
            batch_max,
            workers: 4,
            solve_threads: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let candidate_ids = initial.candidate_ids();
    let object_ids = initial.object_ids();

    println!("  batch_max={batch_max}: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, {UPDATES} updates");
    let started = Instant::now();

    // Writer: serial acked updates, mirrored locally for the final gate.
    let mut mirror = initial.clone();
    let writer = {
        let mut rng = StdRng::seed_from_u64(0x10AD + batch_max as u64);
        let mut client = Client::connect(addr);
        let ops: Vec<UpdateOp> = (0..UPDATES)
            .map(|_| UpdateOp::AppendPosition {
                object: object_ids[rng.gen_range(0..object_ids.len())],
                position: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            })
            .collect();
        for op in &ops {
            mirror.apply(op).expect("mirror accepts its own updates");
        }
        thread::spawn(move || {
            for op in ops {
                let UpdateOp::AppendPosition { object, position } = &op else {
                    unreachable!("writer only appends");
                };
                let ack = client.round_trip(&format!(
                    r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
                    position.x, position.y
                ));
                assert_eq!(
                    ack.get("applied").and_then(Value::as_bool),
                    Some(true),
                    "update rejected: {ack}"
                );
            }
        })
    };

    // Query clients: pipelined chunks keep PIPELINE requests in flight.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let candidate_ids = candidate_ids.clone();
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut stream = stream;
                let mut sent = 0usize;
                while sent < QUERIES_PER_CLIENT {
                    let chunk = PIPELINE.min(QUERIES_PER_CLIENT - sent);
                    let mut burst = String::new();
                    for i in sent..sent + chunk {
                        burst.push_str(&request_for(i, c, &candidate_ids));
                        burst.push('\n');
                    }
                    stream.write_all(burst.as_bytes()).expect("send burst");
                    for _ in 0..chunk {
                        let mut line = String::new();
                        // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
                        reader.read_line(&mut line).expect("recv");
                        let v: Value =
                            serde_json::from_str(line.trim_end()).expect("response is JSON");
                        assert_eq!(
                            v.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "query failed under load: {v}"
                        );
                    }
                    sent += chunk;
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for client in clients {
        client.join().expect("client thread");
    }
    let seconds = started.elapsed().as_secs_f64();

    // Exactness gate: the served final state must bit-match the mirror.
    let mut check = Client::connect(addr);
    let best = check.round_trip(r#"{"v":1,"op":"best"}"#);
    let (id, loc, inf) = mirror.best().unwrap().expect("non-empty world");
    assert_eq!(uint(&best, "epoch"), UPDATES as u64, "stale final epoch");
    assert_eq!(uint(&best, "candidate"), id, "served best diverged");
    assert_eq!(float_bits(&best, "x"), loc.x.to_bits());
    assert_eq!(float_bits(&best, "y"), loc.y.to_bits());
    assert_eq!(uint(&best, "influence"), u64::from(inf));
    let solved = check.round_trip(r#"{"v":1,"op":"solve","algo":"pin-vo"}"#);
    let outcome = mirror.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(uint(&solved, "candidate"), outcome.candidate);
    assert_eq!(uint(&solved, "influence"), u64::from(outcome.influence));
    assert_eq!(float_bits(&solved, "x"), outcome.location.x.to_bits());
    assert_eq!(float_bits(&solved, "y"), outcome.location.y.to_bits());

    let ack = check.round_trip(r#"{"v":1,"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    drop(check);
    let stats = handle.join();

    let queries = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(stats.shed, 0, "the load must fit the admission queue");
    assert_eq!(stats.updates_applied, UPDATES as u64);
    assert_eq!(stats.queries_completed(), queries + 2);
    assert_eq!(stats.queries_completed(), stats.latency_total());
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "accounting identity violated: {stats:?}"
    );

    let throughput = queries as f64 / seconds;
    let shared = stats.queries_solve - stats.solve_runs;
    println!(
        "  batch_max={batch_max}: {throughput:.0} q/s in {}, batches={} jobs/batch={:.2} \
         solves={} shared={} high_water={}",
        fmt_secs(seconds),
        stats.batches,
        stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        stats.solve_runs,
        shared,
        stats.queue_high_water,
    );
    serde_json::json!({
        "batch_max": batch_max,
        "clients": CLIENTS,
        "pipeline": PIPELINE,
        "queries": queries,
        "updates": UPDATES,
        "seconds": seconds,
        "throughput_qps": throughput,
        "batches": stats.batches,
        "batched_jobs": stats.batched_jobs,
        "jobs_per_batch": stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        "queries_solve": stats.queries_solve,
        "solve_runs": stats.solve_runs,
        "shared_solves": shared,
        "epochs_published": stats.epochs_published,
        "queue_high_water": stats.queue_high_water,
        "stats": stats.to_json(),
    })
}

/// Side of the square frame (km) for the update-heavy scenario. Much
/// larger than the trajectories (~±1 km around a per-object centre), so
/// the per-object NIB regions cover a small fraction of the frame and
/// spatial pruning has room to work — the regime the paper's datasets
/// are in (city-sized frames, venue-sized activity regions).
const UPDATE_FRAME_KM: f64 = 400.0;

/// Generates an update-heavy op stream (~70 % position appends, the
/// rest churn on both populations) plus the setup ops that build the
/// initial world. Every op is valid at its point in the stream.
fn update_heavy_ops(
    objects: usize,
    candidates: usize,
    op_count: usize,
) -> (Vec<UpdateOp>, Vec<UpdateOp>) {
    let mut rng = StdRng::seed_from_u64(0x9126);
    let random_center = |rng: &mut StdRng| -> Point {
        Point::new(
            rng.gen_range(0.0..UPDATE_FRAME_KM),
            rng.gen_range(0.0..UPDATE_FRAME_KM),
        )
    };
    let jitter = |rng: &mut StdRng, center: Point| -> Point {
        Point::new(
            center.x + rng.gen_range(-1.0..1.0),
            center.y + rng.gen_range(-1.0..1.0),
        )
    };

    // Live bookkeeping so removals / appends always target live ids.
    let mut live_objects: Vec<(u64, Point)> = Vec::new();
    let mut live_candidates: Vec<u64> = Vec::new();
    let mut next_object = 0u64;
    let mut next_candidate = 0u64;

    let mut setup = Vec::with_capacity(objects + candidates);
    for _ in 0..candidates {
        setup.push(UpdateOp::InsertCandidate {
            candidate: next_candidate,
            location: random_center(&mut rng),
        });
        live_candidates.push(next_candidate);
        next_candidate += 1;
    }
    for _ in 0..objects {
        let center = random_center(&mut rng);
        let n = rng.gen_range(3..9);
        setup.push(UpdateOp::InsertObject {
            object: next_object,
            positions: (0..n).map(|_| jitter(&mut rng, center)).collect(),
        });
        live_objects.push((next_object, center));
        next_object += 1;
    }

    let mut ops = Vec::with_capacity(op_count);
    while ops.len() < op_count {
        match rng.gen_range(0..100) {
            0..=69 => {
                let (object, center) = live_objects[rng.gen_range(0..live_objects.len())];
                ops.push(UpdateOp::AppendPosition {
                    object,
                    position: jitter(&mut rng, center),
                });
            }
            70..=79 => {
                let center = random_center(&mut rng);
                let n = rng.gen_range(3..9);
                ops.push(UpdateOp::InsertObject {
                    object: next_object,
                    positions: (0..n).map(|_| jitter(&mut rng, center)).collect(),
                });
                live_objects.push((next_object, center));
                next_object += 1;
            }
            80..=84 if live_objects.len() > objects / 2 => {
                let (object, _) = live_objects.swap_remove(rng.gen_range(0..live_objects.len()));
                ops.push(UpdateOp::RemoveObject { object });
            }
            85..=94 => {
                ops.push(UpdateOp::InsertCandidate {
                    candidate: next_candidate,
                    location: random_center(&mut rng),
                });
                live_candidates.push(next_candidate);
                next_candidate += 1;
            }
            _ if live_candidates.len() > candidates / 2 => {
                let candidate =
                    live_candidates.swap_remove(rng.gen_range(0..live_candidates.len()));
                ops.push(UpdateOp::RemoveCandidate { candidate });
            }
            _ => {} // removal floor hit: reroll
        }
    }
    (setup, ops)
}

/// Applies the stream and returns the wall-clock seconds it took.
fn apply_timed(world: &mut World, ops: &[UpdateOp]) -> f64 {
    let started = Instant::now();
    for op in ops {
        world.apply(op).expect("op stream is valid");
    }
    started.elapsed().as_secs_f64()
}

/// The update-heavy scenario: the same op stream through the delta path
/// and the full-scan reference path, exactness-gated three ways (static
/// re-solve, cross-mode bit-match, from-scratch world rebuilt from the
/// final live sets), plus the epoch-publish (world-clone) cost the
/// serve writer pays per published batch.
fn run_update_heavy() -> serde_json::Value {
    // Candidate sets are venue-scale (the paper's datasets carry
    // thousands of venues): the full-scan path pays O(m) per append,
    // the delta path only pays for the NIB neighbourhood.
    let (objects, candidates, op_count) = if is_small_scale() {
        (160, 600, 4_000)
    } else {
        (400, 1_200, 12_000)
    };
    println!(
        "update-heavy: {objects} objects x {candidates} candidates, {op_count} ops, \
         frame {UPDATE_FRAME_KM} km"
    );
    let (setup, ops) = update_heavy_ops(objects, candidates, op_count);
    let appends = ops
        .iter()
        .filter(|op| matches!(op, UpdateOp::AppendPosition { .. }))
        .count();

    let mut delta = World::new(defaults::TAU);
    for op in &setup {
        delta.apply(op).expect("setup is valid");
    }
    let mut full = delta.clone();
    full.set_maintenance_mode(MaintenanceMode::FullScan);

    let delta_secs = apply_timed(&mut delta, &ops);
    let full_secs = apply_timed(&mut full, &ops);
    let delta_ups = op_count as f64 / delta_secs;
    let full_ups = op_count as f64 / full_secs;
    let speedup = full_secs / delta_secs;
    println!(
        "  delta: {delta_ups:.0} updates/s ({}), full-scan: {full_ups:.0} updates/s ({}), \
         speedup {speedup:.1}x [{appends} appends]",
        fmt_secs(delta_secs),
        fmt_secs(full_secs),
    );

    // Exactness gates. (1) Both paths against a from-scratch static
    // solve of their own final state (also audits the cached argmax and
    // the challenger bound).
    delta.verify_against_static();
    full.verify_against_static();
    // (2) The two paths against each other, bit-for-bit in wire-id
    // space: same live sets, same influence for every candidate, same
    // optimum, same from-scratch solve outcome.
    assert_eq!(delta.best().unwrap(), full.best().unwrap(), "best diverged");
    assert_eq!(delta.candidate_ids(), full.candidate_ids());
    assert_eq!(delta.object_ids(), full.object_ids());
    for id in delta.candidate_ids() {
        assert_eq!(
            delta.influence_of(id).unwrap(),
            full.influence_of(id).unwrap(),
            "influence of candidate {id} diverged"
        );
    }
    let a = delta.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    let b = full.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(a.candidate, b.candidate, "solve winner diverged");
    assert_eq!(a.influence, b.influence);
    assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
    assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());

    // (3) Epoch-publish cost: the serve writer clones the whole world
    // once per published epoch. With structurally shared position logs
    // this copies Arc spines, not trajectories.
    let reps = 200u32;
    let clone_started = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(delta.clone());
    }
    let epoch_clone_us = clone_started.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    println!("  epoch publish (world clone): {epoch_clone_us:.0} us");

    // The tentpole's acceptance gate: sustained update throughput must
    // be at least 2x the pre-delta (full-scan) path on this stream.
    assert!(
        speedup >= 2.0,
        "delta maintenance must sustain >= 2x the full-scan update rate, got {speedup:.2}x \
         ({delta_ups:.0} vs {full_ups:.0} updates/s)"
    );

    serde_json::json!({
        "objects": objects,
        "candidates": candidates,
        "ops": op_count,
        "appends": appends,
        "frame_km": UPDATE_FRAME_KM,
        "delta_seconds": delta_secs,
        "delta_updates_per_sec": delta_ups,
        "full_scan_seconds": full_secs,
        "full_scan_updates_per_sec": full_ups,
        "speedup": speedup,
        "epoch_clone_us": epoch_clone_us,
        "final_objects": delta.object_count(),
        "final_candidates": delta.candidate_count(),
    })
}

fn main() {
    let d = dataset(DatasetKind::Foursquare);
    let m = CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(&d, m, 8);
    let world = World::from_parts(d.objects().to_vec(), candidates, defaults::TAU)
        .expect("well-formed world");
    println!(
        "load-gen: {} objects x {} candidates, tau={}",
        world.object_count(),
        world.candidate_count(),
        defaults::TAU
    );

    let rows: Vec<serde_json::Value> = BATCH_SIZES
        .iter()
        .map(|&batch_max| run_one(&world, batch_max))
        .collect();

    let record = serde_json::json!({
        "id": "load_gen_pr5",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "candidates": m,
        "rows": rows,
    });
    write_record("load_gen_pr5", &record);

    // Checked-in copy at the workspace root so the PR carries the
    // measured numbers alongside the code.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR5.json");
    println!("[record written to {}]", root.display());

    // The PR 6 update-heavy scenario: delta-validated maintenance vs the
    // full-scan reference, gated on exactness and the 2x speedup floor.
    let update_heavy = run_update_heavy();
    let record = serde_json::json!({
        "id": "load_gen_pr6",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "update_heavy": update_heavy,
    });
    write_record("load_gen_pr6", &record);
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR6.json");
    println!("[record written to {}]", root.display());
}
