//! Top-K effectiveness metrics (Tables 3–4).
//!
//! The paper ranks the top `K` of the candidate set by ground-truth
//! check-in counts as the *relevant* locations and the top `K` returned
//! by each method as the *recommended* locations, then reports
//! `Precision@K` and `AveragePrecision@K` averaged over 50 candidate
//! groups.

use std::collections::HashSet;

/// `Precision@K`: fraction of the first `K` recommendations that appear
/// among the first `K` relevant items.
///
/// Because both lists are cut at the same `K`, `Recall@K` coincides with
/// `Precision@K` (paper, footnote 6).
///
/// # Panics
/// Panics if `k == 0` or either list is shorter than `k`.
pub fn precision_at_k(recommended: &[usize], relevant: &[usize], k: usize) -> f64 {
    assert!(k > 0, "K must be positive");
    assert!(
        recommended.len() >= k && relevant.len() >= k,
        "both rankings must contain at least K = {k} items"
    );
    let relevant_set: HashSet<usize> = relevant[..k].iter().copied().collect();
    let hits = recommended[..k]
        .iter()
        .filter(|i| relevant_set.contains(i))
        .count();
    hits as f64 / k as f64
}

/// `AveragePrecision@K`: `(1/K) · Σ_{i=1..K} rel(i) · Precision@i`,
/// where `rel(i)` is 1 when the i-th recommendation is relevant.
///
/// Rewards placing relevant items early; always ≤ `Precision@K`.
///
/// # Panics
/// Panics if `k == 0` or either list is shorter than `k`.
pub fn average_precision_at_k(recommended: &[usize], relevant: &[usize], k: usize) -> f64 {
    assert!(k > 0, "K must be positive");
    assert!(
        recommended.len() >= k && relevant.len() >= k,
        "both rankings must contain at least K = {k} items"
    );
    let relevant_set: HashSet<usize> = relevant[..k].iter().copied().collect();
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, item) in recommended[..k].iter().enumerate() {
        if relevant_set.contains(item) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let ranking = [4, 2, 7, 1, 9];
        assert_eq!(precision_at_k(&ranking, &ranking, 5), 1.0);
        assert_eq!(average_precision_at_k(&ranking, &ranking, 5), 1.0);
    }

    #[test]
    fn disjoint_ranking_scores_zero() {
        let rec = [0, 1, 2];
        let rel = [3, 4, 5];
        assert_eq!(precision_at_k(&rec, &rel, 3), 0.0);
        assert_eq!(average_precision_at_k(&rec, &rel, 3), 0.0);
    }

    #[test]
    fn precision_counts_set_overlap_only() {
        // Order within the top-K does not matter for P@K.
        let rec = [2, 0, 9];
        let rel = [0, 1, 2];
        // overlap {0, 2} of 3.
        assert!((precision_at_k(&rec, &rel, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_rewards_early_hits() {
        let rel = [0, 1, 2, 3];
        let early = [0, 9, 8, 7]; // hit at rank 1
        let late = [9, 8, 7, 0]; // hit at rank 4
        let ap_early = average_precision_at_k(&early, &rel, 4);
        let ap_late = average_precision_at_k(&late, &rel, 4);
        assert!(ap_early > ap_late);
        assert!((ap_early - 0.25).abs() < 1e-12); // P@1 = 1, /4
        assert!((ap_late - 0.0625).abs() < 1e-12); // P@4 = 1/4, /4
    }

    #[test]
    fn ap_never_exceeds_precision() {
        let rec = [5, 3, 1, 0, 2, 4];
        let rel = [0, 1, 2, 3, 4, 5];
        for k in 1..=6 {
            let p = precision_at_k(&rec, &rel, k);
            let ap = average_precision_at_k(&rec, &rel, k);
            assert!(ap <= p + 1e-12, "k={k}: AP {ap} > P {p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least K")]
    fn short_ranking_rejected() {
        let _ = precision_at_k(&[1, 2], &[1, 2, 3], 3);
    }
}
