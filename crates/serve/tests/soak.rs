//! Soak test: concurrent readers query a live server over TCP while a
//! writer client streams random updates through the ingest path.
//!
//! The exactness property under test: every response carries the epoch
//! it was answered at, and its payload must **bit-match** a from-scratch
//! computation over an independently maintained mirror of the world at
//! that exact epoch — floats compared via `to_bits`, never with a
//! tolerance. The mirror is reconstructible because the writer sends
//! updates one at a time and each ack names the epoch that first
//! includes it, so epoch `e` is exactly "initial world + the first `k`
//! acked updates".
//!
//! The test ends with a graceful drain: a `shutdown` wire command, then
//! `ServerHandle::join`, whose final counters must satisfy the
//! [`ServeStats`] accounting identity. `join` returning at all proves
//! every thread exited and no mutex was poisoned.

use pinocchio_core::Algorithm;
use pinocchio_geo::Point;
use pinocchio_serve::{serve, ServerConfig, ShardedWorld, UpdateOp, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;

const READERS: usize = 4;
const QUERIES_PER_READER: usize = 60;
const UPDATES: usize = 80;
const CANDIDATES: u64 = 8;
const TAU: f64 = 0.7;

/// A blocking line-oriented client: send one request, read one reply.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.stream, "{request}").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        serde_json::from_str(line.trim_end()).expect("response is JSON")
    }

    /// Sends one request and reads lines until the terminal one: an
    /// error, a `"done":true` marker, or any non-batch single line.
    fn stream(&mut self, request: &str) -> Vec<Value> {
        writeln!(self.stream, "{request}").expect("send");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("recv");
            let v: Value = serde_json::from_str(line.trim_end()).expect("response is JSON");
            let terminal = v.get("ok").and_then(Value::as_bool) != Some(true)
                || v.get("done").and_then(Value::as_bool) == Some(true)
                || v.get("tiles").is_none();
            lines.push(v);
            if terminal {
                return lines;
            }
        }
    }
}

fn seed_world(rng: &mut StdRng) -> World {
    let mut world = World::new(TAU);
    for j in 0..CANDIDATES {
        world
            .apply(&UpdateOp::InsertCandidate {
                candidate: j,
                location: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            })
            .unwrap();
    }
    for i in 0..40u64 {
        let n = rng.gen_range(1..8);
        let positions = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)))
            .collect();
        world
            .apply(&UpdateOp::InsertObject {
                object: i,
                positions,
            })
            .unwrap();
    }
    world
}

/// One of the query shapes a reader cycles through.
#[derive(Clone, Copy)]
enum Probe {
    Best,
    TopK(usize),
    InfluenceOf(u64),
    Solve(Algorithm, &'static str),
    Heatmap(u32),
    TopRegion(usize, u32),
}

const SOLVES: [(Algorithm, &str); 5] = [
    (Algorithm::Naive, "na"),
    (Algorithm::Pinocchio, "pin"),
    (Algorithm::PinocchioVo, "pin-vo"),
    (Algorithm::PinocchioVoStar, "pin-vo*"),
    (Algorithm::PinocchioJoin, "pin-join"),
];

fn probe_request(probe: Probe) -> String {
    match probe {
        Probe::Best => r#"{"v":1,"op":"best"}"#.to_string(),
        Probe::TopK(k) => format!(r#"{{"v":1,"op":"top_k","k":{k}}}"#),
        Probe::InfluenceOf(c) => format!(r#"{{"v":1,"op":"influence_of","candidate":{c}}}"#),
        Probe::Solve(_, wire) => format!(r#"{{"v":1,"op":"solve","algo":"{wire}"}}"#),
        Probe::Heatmap(resolution) => {
            format!(r#"{{"v":1,"id":7,"op":"heatmap","resolution":{resolution}}}"#)
        }
        Probe::TopRegion(k, resolution) => {
            format!(r#"{{"v":1,"op":"top_region","k":{k},"resolution":{resolution}}}"#)
        }
    }
}

fn update_request(op: &UpdateOp) -> String {
    match op {
        UpdateOp::InsertObject { object, positions } => {
            let coords: Vec<String> = positions
                .iter()
                .map(|p| format!("[{},{}]", p.x, p.y))
                .collect();
            format!(
                r#"{{"v":1,"op":"insert_object","object":{object},"positions":[{}]}}"#,
                coords.join(",")
            )
        }
        UpdateOp::AppendPosition { object, position } => format!(
            r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
            position.x, position.y
        ),
        UpdateOp::RemoveObject { object } => {
            format!(r#"{{"v":1,"op":"remove_object","object":{object}}}"#)
        }
        other => panic!("soak writer does not emit {other:?}"),
    }
}

fn bits(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing f64 field {field} in {v}"))
        .to_bits()
}

fn uint(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field} in {v}"))
}

/// Checks one recorded response (every line of it, for streamed ones)
/// against the mirror world of its epoch.
fn verify(probe: Probe, lines: &[Value], reference: &World, shards: usize) {
    let response = lines.last().expect("at least one response line");
    for line in lines {
        assert_eq!(
            line.get("ok").and_then(Value::as_bool),
            Some(true),
            "reader got an error response: {line}"
        );
        // One snapshot answers the whole job: every batch of a stream
        // carries the same epoch as its terminal line.
        assert_eq!(uint(line, "epoch"), uint(response, "epoch"));
    }
    match probe {
        Probe::Best => {
            let (id, loc, inf) = reference.best().unwrap().expect("world is never empty");
            assert_eq!(uint(response, "candidate"), id);
            assert_eq!(bits(response, "x"), loc.x.to_bits());
            assert_eq!(bits(response, "y"), loc.y.to_bits());
            assert_eq!(uint(response, "influence"), u64::from(inf));
        }
        Probe::TopK(k) => {
            let expected = reference.top_k(k).unwrap();
            let entries = response
                .get("entries")
                .and_then(Value::as_array)
                .expect("top_k entries");
            assert_eq!(entries.len(), expected.len());
            for (entry, (id, loc, inf)) in entries.iter().zip(expected) {
                assert_eq!(uint(entry, "candidate"), id);
                assert_eq!(bits(entry, "x"), loc.x.to_bits());
                assert_eq!(bits(entry, "y"), loc.y.to_bits());
                assert_eq!(uint(entry, "influence"), u64::from(inf));
            }
        }
        Probe::InfluenceOf(c) => {
            let inf = reference.influence_of(c).unwrap();
            assert_eq!(uint(response, "candidate"), c);
            assert_eq!(uint(response, "influence"), u64::from(inf));
        }
        Probe::Solve(algorithm, _) => {
            // From-scratch single-thread solve of the mirrored epoch; the
            // server may have answered with its parallel drivers or
            // shared a batch mate's run — the bits must not care.
            let outcome = reference.solve(algorithm, 1).unwrap();
            assert_eq!(
                response.get("algorithm").and_then(Value::as_str),
                Some(format!("{algorithm:?}").as_str())
            );
            assert_eq!(uint(response, "candidate"), outcome.candidate);
            assert_eq!(bits(response, "x"), outcome.location.x.to_bits());
            assert_eq!(bits(response, "y"), outcome.location.y.to_bits());
            assert_eq!(uint(response, "influence"), u64::from(outcome.influence));
        }
        Probe::Heatmap(resolution) => {
            // Re-solve the mirrored epoch from scratch. Samples are
            // exact influence counts, identical for every shard
            // topology; bands are descent-dependent, so full tile
            // bit-equality is asserted against a mirror of the *same*
            // topology the server ran.
            let mirror = ShardedWorld::from_world(reference.clone(), shards)
                .expect("mirror repartition")
                .heatmap(resolution)
                .expect("mirror heatmap");
            assert_eq!(response.get("done").and_then(Value::as_bool), Some(true));
            assert_eq!(uint(response, "resolution"), u64::from(resolution));
            let n_tiles = (resolution as usize) * (resolution as usize);
            assert_eq!(uint(response, "tiles_total") as usize, n_tiles);
            assert_eq!(mirror.tiles.len(), n_tiles);
            let frame = response
                .get("frame")
                .and_then(Value::as_array)
                .expect("frame [x0,y0,x1,y1]");
            let frame_bits: Vec<u64> = frame
                .iter()
                .map(|v| v.as_f64().expect("frame coordinate").to_bits())
                .collect();
            let want = [
                mirror.frame.lo().x,
                mirror.frame.lo().y,
                mirror.frame.hi().x,
                mirror.frame.hi().y,
            ];
            for (got, want) in frame_bits.iter().zip(want) {
                assert_eq!(*got, want.to_bits(), "frame diverged from the mirror");
            }
            let mut streamed = 0usize;
            for batch in &lines[..lines.len() - 1] {
                assert_eq!(uint(batch, "offset") as usize, streamed);
                let tiles = batch
                    .get("tiles")
                    .and_then(Value::as_array)
                    .expect("tiles array");
                for tile in tiles {
                    let t = tile.as_array().expect("[lo,hi,sample]");
                    let (lo, hi, sample) = (
                        t[0].as_u64().unwrap(),
                        t[1].as_u64().unwrap(),
                        t[2].as_u64().unwrap(),
                    );
                    let m = mirror.tiles[streamed];
                    assert_eq!(sample, u64::from(m.sample), "tile {streamed} sample");
                    assert_eq!(lo, u64::from(m.lo), "tile {streamed} lower band");
                    assert_eq!(hi, u64::from(m.hi), "tile {streamed} upper band");
                    assert!(lo <= sample && sample <= hi);
                    streamed += 1;
                }
            }
            assert_eq!(streamed, n_tiles, "the stream covered the whole grid");
        }
        Probe::TopRegion(k, resolution) => {
            // top_region is exact, so it must bit-match the unsharded
            // mirror whatever topology the server runs.
            let mirror = ShardedWorld::from_world(reference.clone(), 1)
                .expect("mirror wrap")
                .top_region(k, resolution)
                .expect("mirror top_region");
            let cells = response
                .get("cells")
                .and_then(Value::as_array)
                .expect("cells");
            assert_eq!(cells.len(), mirror.cells.len());
            for (cell, want) in cells.iter().zip(&mirror.cells) {
                assert_eq!(uint(cell, "tile") as usize, want.tile);
                assert_eq!(bits(cell, "x"), want.center.x.to_bits());
                assert_eq!(bits(cell, "y"), want.center.y.to_bits());
                assert_eq!(uint(cell, "influence"), u64::from(want.influence));
            }
        }
    }
}

/// Runs the full soak at the given shard count. The mirror worlds are
/// always **unsharded**, so every verified response is a bit-match of a
/// sharded server answer against a from-scratch unsharded computation
/// of its epoch.
fn soak(shards: usize) {
    let mut rng = StdRng::seed_from_u64(0x50A4);
    let initial = seed_world(&mut rng);
    let candidate_ids = initial.candidate_ids();

    let handle = serve(
        initial.clone(),
        ServerConfig {
            queue_capacity: 512,
            batch_max: 8,
            workers: 3,
            solve_threads: 2,
            shards,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    // Writer: streams random object churn one update at a time, mirrors
    // each acked op locally, and snapshots the mirror per acked epoch.
    let writer_seed = rng.gen::<u64>();
    let writer = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(writer_seed);
        let mut client = Client::connect(addr);
        let mut mirror = initial;
        let mut live: Vec<u64> = mirror.object_ids();
        let mut next_id = 1000u64;
        let mut epochs: Vec<(u64, World)> = vec![(0, mirror.clone())];
        for _ in 0..UPDATES {
            let roll = rng.gen_range(0u32..10);
            let op = if roll < 7 {
                let object = live[rng.gen_range(0..live.len())];
                UpdateOp::AppendPosition {
                    object,
                    position: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
                }
            } else if roll < 9 || live.len() <= 10 {
                let object = next_id;
                next_id += 1;
                live.push(object);
                UpdateOp::InsertObject {
                    object,
                    positions: vec![Point::new(
                        rng.gen_range(0.0..30.0),
                        rng.gen_range(0.0..20.0),
                    )],
                }
            } else {
                let object = live.swap_remove(rng.gen_range(0..live.len()));
                UpdateOp::RemoveObject { object }
            };
            let ack = client.round_trip(&update_request(&op));
            assert_eq!(
                ack.get("ok").and_then(Value::as_bool),
                Some(true),
                "update rejected: {ack}"
            );
            assert_eq!(ack.get("applied").and_then(Value::as_bool), Some(true));
            mirror
                .apply(&op)
                .expect("mirror accepts what the server did");
            epochs.push((uint(&ack, "epoch"), mirror.clone()));
        }
        epochs
    });

    // Readers: hammer the query path concurrently with the churn above,
    // recording every (probe, response) pair for post-hoc verification.
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let candidate_ids = candidate_ids.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut recorded = Vec::with_capacity(QUERIES_PER_READER);
                for i in 0..QUERIES_PER_READER {
                    let probe = match i % 6 {
                        0 => Probe::Best,
                        1 => Probe::TopK(1 + (i + r) % 5),
                        2 => Probe::InfluenceOf(candidate_ids[(i + r) % candidate_ids.len()]),
                        3 => Probe::Heatmap(if (i + r) % 2 == 0 { 8 } else { 16 }),
                        4 => Probe::TopRegion(1 + (i + r) % 6, 16),
                        _ => {
                            let (algorithm, wire) = SOLVES[(i / 6 + r) % SOLVES.len()];
                            Probe::Solve(algorithm, wire)
                        }
                    };
                    let lines = client.stream(&probe_request(probe));
                    recorded.push((probe, lines));
                }
                recorded
            })
        })
        .collect();

    let epochs = writer.join().expect("writer thread");
    let recordings: Vec<_> = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .collect();

    // Serial acked updates publish one epoch each: 0..=UPDATES, dense.
    assert_eq!(epochs.len(), UPDATES + 1);
    for (expected, (epoch, _)) in epochs.iter().enumerate() {
        assert_eq!(*epoch, expected as u64);
    }

    let mut verified = 0usize;
    for recorded in &recordings {
        for (probe, lines) in recorded {
            let epoch = uint(lines.last().expect("terminal line"), "epoch") as usize;
            let (_, reference) = &epochs[epoch];
            verify(*probe, lines, reference, shards);
            verified += 1;
        }
    }
    assert_eq!(verified, READERS * QUERIES_PER_READER);

    // Graceful drain: shutdown over the wire, then join every thread.
    let mut control = Client::connect(addr);
    let ack = control.round_trip(r#"{"v":1,"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    drop(control);

    let stats = handle.join();
    assert_eq!(stats.updates_applied, UPDATES as u64);
    assert_eq!(stats.epochs_published, UPDATES as u64);
    assert_eq!(
        stats.queries_completed(),
        (READERS * QUERIES_PER_READER) as u64
    );
    assert_eq!(stats.queries_completed(), stats.latency_total());
    assert_eq!(stats.shed, 0, "queue_capacity 512 must never shed here");
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "every received line must be accounted for exactly once: {stats:?}"
    );
}

#[test]
fn concurrent_readers_bit_match_every_epoch_and_shutdown_is_clean() {
    soak(1);
}

#[test]
fn four_shard_server_bit_matches_unsharded_mirrors_every_epoch() {
    soak(4);
}
