//! Bench smoke — a small release-mode benchmark of the validation hot
//! path, comparing the scalar kernel, the arena/block kernel, and the
//! PIN-JOIN object-side μ-aggregate join on the Fig. 8 / Fig. 9 default
//! workloads.
//!
//! Emits `BENCH_PR4.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per (dataset, solver):
//!
//! * `naive`       — NA under the scalar kernel,
//! * `arena_naive` — NA over the position arena with the block-bounded
//!   kernel (the full-scan validation workload, where block bounds pay
//!   the most — the PR-3 headline scalar-vs-arena comparison),
//! * `vo_seq`   — sequential PINOCCHIO-VO, scalar kernel,
//! * `vo_par`   — parallel PINOCCHIO-VO (4 workers), scalar kernel,
//! * `arena_vo` — sequential PINOCCHIO-VO over the position arena with
//!   the block-bounded kernel,
//! * `arena_vo_par` — the parallel driver on the block kernel,
//! * `join_seq`   — sequential PIN-JOIN (μ-aggregate tree), scalar
//!   kernel,
//! * `join_par`   — parallel PIN-JOIN filter phase (4 workers), scalar
//!   kernel,
//! * `arena_join` / `arena_join_par` — the same two over the block
//!   kernel.
//!
//! Besides timing, the run is a correctness gate: it aborts if any
//! solver row disagrees with `naive` on `(best_candidate,
//! max_influence)`, or if a join row never fires a subtree-level IA/NIB
//! decision (the whole point of the μ-aggregate tree).
//!
//! Intended to run at `PINOCCHIO_SCALE=small` in CI (the `bench-smoke`
//! job); at full scale it is the same sweep, just slower. Each solver is
//! warmed once and timed over three runs, keeping the best, so the
//! numbers are stable enough for a smoke-level assertion without
//! Criterion's run time.

use pinocchio_bench::*;
use pinocchio_core::{join, parallel, Algorithm, EvalKernel, PrimeLs, SolveStats};
use pinocchio_data::{sample_candidate_group, Dataset};
use pinocchio_prob::PowerLawPf;
use std::path::PathBuf;
use std::time::Instant;

/// Parallel worker count for the `*_par` rows.
const PAR_THREADS: usize = 4;
/// Timed repetitions per row (best-of is recorded).
const REPS: usize = 3;

fn build(d: &Dataset, kernel: EvalKernel) -> PrimeLs<PowerLawPf> {
    let m = defaults::CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(d, m, 8);
    PrimeLs::builder()
        .objects(d.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(defaults::TAU)
        .evaluation_kernel(kernel)
        .build()
        .expect("benchmark problems are well-formed")
}

/// Best-of-`REPS` wall time plus the stats of the final run.
fn best_of<F: FnMut() -> (usize, u32, SolveStats)>(mut run: F) -> (f64, usize, u32, SolveStats) {
    let _ = run(); // warm-up: faults pages, fills the tree/A2D caches
    let mut best = f64::INFINITY;
    let mut last = (0usize, 0u32, SolveStats::default());
    for _ in 0..REPS {
        let t = Instant::now();
        last = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last.0, last.1, last.2)
}

/// Records one row and returns the verdict so the caller can gate
/// agreement against the naive reference.
fn row(
    rows: &mut Vec<serde_json::Value>,
    dataset: &str,
    solver: &str,
    (secs, best_candidate, max_influence, stats): (f64, usize, u32, SolveStats),
) -> (usize, u32, SolveStats) {
    println!(
        "  {solver:<14} {:<10} best=#{best_candidate} inf={max_influence} \
         positions={} subtrees_ia={} subtrees_nib={}",
        fmt_secs(secs),
        stats.positions_evaluated,
        stats.subtrees_pruned_ia,
        stats.subtrees_pruned_nib,
    );
    rows.push(serde_json::json!({
        "dataset": dataset,
        "solver": solver,
        "seconds": secs,
        "best_candidate": best_candidate,
        "max_influence": max_influence,
        "positions_evaluated": stats.positions_evaluated,
        "positions_skipped_by_blocks": stats.positions_skipped_by_blocks,
        "blocks_pruned": stats.blocks_pruned,
        "validated_pairs": stats.validated_pairs,
        "subtrees_pruned_ia": stats.subtrees_pruned_ia,
        "subtrees_pruned_nib": stats.subtrees_pruned_nib,
        "join_nodes_visited": stats.join_nodes_visited,
    }));
    (best_candidate, max_influence, stats)
}

fn main() {
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        println!(
            "bench-smoke: dataset {} ({} objects)",
            kind.letter(),
            d.objects().len()
        );
        let scalar = build(&d, EvalKernel::Scalar);
        let blocked = build(&d, EvalKernel::Blocked);

        let solve = |p: &PrimeLs<PowerLawPf>, a: Algorithm| {
            let r = p.solve(a);
            (r.best_candidate, r.max_influence, r.stats)
        };
        let from_result =
            |r: pinocchio_core::SolveResult| (r.best_candidate, r.max_influence, r.stats);

        let (ref_best, ref_inf, _) = row(
            &mut rows,
            kind.letter(),
            "naive",
            best_of(|| solve(&scalar, Algorithm::Naive)),
        );
        // Every non-reference row must reproduce NA's verdict exactly —
        // the smoke run doubles as a cross-solver exactness gate.
        let check = |solver: &str, verdict: (usize, u32, SolveStats)| -> SolveStats {
            assert_eq!(
                (verdict.0, verdict.1),
                (ref_best, ref_inf),
                "{solver} disagrees with naive on dataset {}",
                kind.letter()
            );
            verdict.2
        };

        let rowc = |rows: &mut Vec<serde_json::Value>,
                    solver: &str,
                    timing: (f64, usize, u32, SolveStats)|
         -> SolveStats {
            let verdict = row(rows, kind.letter(), solver, timing);
            check(solver, verdict)
        };

        rowc(
            &mut rows,
            "arena_naive",
            best_of(|| solve(&blocked, Algorithm::Naive)),
        );
        rowc(
            &mut rows,
            "vo_seq",
            best_of(|| solve(&scalar, Algorithm::PinocchioVo)),
        );
        rowc(
            &mut rows,
            "vo_par",
            best_of(|| from_result(parallel::solve_vo(&scalar, PAR_THREADS))),
        );
        rowc(
            &mut rows,
            "arena_vo",
            best_of(|| solve(&blocked, Algorithm::PinocchioVo)),
        );
        rowc(
            &mut rows,
            "arena_vo_par",
            best_of(|| from_result(parallel::solve_vo(&blocked, PAR_THREADS))),
        );
        for (solver, stats) in [
            (
                "join_seq",
                rowc(
                    &mut rows,
                    "join_seq",
                    best_of(|| solve(&scalar, Algorithm::PinocchioJoin)),
                ),
            ),
            (
                "join_par",
                rowc(
                    &mut rows,
                    "join_par",
                    best_of(|| from_result(join::solve_par(&scalar, PAR_THREADS))),
                ),
            ),
            (
                "arena_join",
                rowc(
                    &mut rows,
                    "arena_join",
                    best_of(|| solve(&blocked, Algorithm::PinocchioJoin)),
                ),
            ),
            (
                "arena_join_par",
                rowc(
                    &mut rows,
                    "arena_join_par",
                    best_of(|| from_result(join::solve_par(&blocked, PAR_THREADS))),
                ),
            ),
        ] {
            assert!(
                stats.subtrees_pruned_ia > 0 && stats.subtrees_pruned_nib > 0,
                "{solver} never decided a subtree on dataset {} \
                 (ia={} nib={}) — the μ-aggregate bounds are not firing",
                kind.letter(),
                stats.subtrees_pruned_ia,
                stats.subtrees_pruned_nib,
            );
        }
    }

    let record = serde_json::json!({
        "id": "bench_smoke_pr4",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "candidates": defaults::CANDIDATES,
        "par_threads": PAR_THREADS,
        "reps": REPS,
        "rows": rows,
    });
    write_record("bench_smoke_pr4", &record);

    // Also drop the record at the workspace root so the PR carries the
    // measured numbers alongside the code (BENCH_PR4.json is checked in;
    // BENCH_PR3.json stays as the pre-join baseline).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR4.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR4.json");
    println!("[record written to {}]", root.display());
}
