//! Property-based tests of the evaluation toolkit.

use pinocchio_eval::{average_precision_at_k, precision_at_k, tune_tau, Polynomial};
use proptest::prelude::*;

/// A random permutation of `0..n`, derived from a seed vector.
fn arb_permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(any::<u64>(), n).prop_map(move |keys| {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| keys[i]);
        idx
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// P@K and AP@K live in [0, 1] with AP ≤ P, and a ranking scored
    /// against itself is perfect.
    #[test]
    fn metric_bounds(
        (rec, rel) in (10usize..40).prop_flat_map(|n| (arb_permutation(n), arb_permutation(n))),
        k_frac in 0.1f64..1.0,
    ) {
        let k = ((rec.len() as f64 * k_frac) as usize).max(1);
        let p = precision_at_k(&rec, &rel, k);
        let ap = average_precision_at_k(&rec, &rel, k);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&ap));
        prop_assert!(ap <= p + 1e-12);
        prop_assert_eq!(precision_at_k(&rec, &rec, k), 1.0);
        prop_assert_eq!(average_precision_at_k(&rec, &rec, k), 1.0);
    }

    /// Precision@K only depends on the top-K *sets*: permuting the order
    /// inside each top-K prefix leaves it unchanged.
    #[test]
    fn precision_is_set_based(
        (rec, rel) in (10usize..30).prop_flat_map(|n| (arb_permutation(n), arb_permutation(n))),
        k_frac in 0.2f64..1.0,
        swap in any::<bool>(),
    ) {
        let k = ((rec.len() as f64 * k_frac) as usize).max(2);
        let base = precision_at_k(&rec, &rel, k);
        let mut shuffled = rec.clone();
        if swap {
            shuffled.swap(0, k - 1); // stays within the top-K prefix
        } else {
            shuffled[..k].reverse();
        }
        prop_assert_eq!(precision_at_k(&shuffled, &rel, k), base);
    }

    /// Exact polynomial data is recovered to machine precision.
    #[test]
    fn polyfit_recovers_exact_polynomials(
        coeffs in prop::collection::vec(-5.0f64..5.0, 1..5),
        n_extra in 0usize..10,
    ) {
        let degree = coeffs.len() - 1;
        let truth = |x: f64| coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
        let xs: Vec<f64> = (0..coeffs.len() + n_extra).map(|i| i as f64 * 0.7 + 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, degree);
        prop_assert!(fit.rms_error(&xs, &ys) < 1e-6, "rms {}", fit.rms_error(&xs, &ys));
        // Interpolates at an unseen point too.
        let x = 0.37;
        prop_assert!((fit.eval(x) - truth(x)).abs() < 1e-6);
    }

    /// tune_tau on any monotone non-increasing step function terminates
    /// and never returns something farther from the target than the best
    /// value it probed.
    #[test]
    fn tune_tau_returns_best_probed(
        plateaus in prop::collection::vec(0u32..1000, 2..8),
        target in 0u32..1000,
    ) {
        // Build a non-increasing step function over (0, 1).
        let mut sorted = plateaus.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let f = |tau: f64| {
            let idx = ((tau * sorted.len() as f64) as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        let mut probed: Vec<u32> = Vec::new();
        let (_, inf) = tune_tau(
            |tau| {
                let v = f(tau);
                probed.push(v);
                v
            },
            target,
            0.01,
            0.99,
            20,
        );
        let best_probed = probed
            .iter()
            .map(|v| v.abs_diff(target))
            .min()
            .expect("probed at least once");
        prop_assert_eq!(inf.abs_diff(target), best_probed);
    }
}
