//! Condvar fixture: one wait outside any loop (misses spurious
//! wake-ups), one wait whose returned guard is discarded.

use std::sync::{Condvar, Mutex};

pub struct Gate {
    ready: Mutex<bool>,
    signal: Condvar,
}

impl Gate {
    pub fn await_once(&self) {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        if !*ready {
            ready = self.signal.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
        *ready = false;
    }

    pub fn await_dropped(&self) {
        let ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*ready {
            self.signal.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
    }
}
