//! Weighted PRIME-LS — objects with non-uniform importance.
//!
//! Classical MAX-INF work defines a location's influence as the *total
//! weight* of the objects it wins (Xia et al., VLDB 2005); the paper's
//! Definition 2 is the unit-weight special case. The generalisation
//! matters in practice: customers have different lifetime values,
//! tracked animals different conservation priorities.
//!
//! `inf_w(c) = Σ_{O : Pr_c(O) ≥ τ} w(O)`, maximised over candidates.
//!
//! Both pruning rules apply verbatim (they reason per object–candidate
//! pair, independent of weights), so the weighted solver is PINOCCHIO's
//! pruning phase plus early-stopping validation with weighted
//! accumulators. A VO-style bounds heap would also carry over; it is
//! omitted because the weighted variant is an extension, not a paper
//! exhibit, and PIN-level pruning already removes the bulk of the work.

use crate::problem::PrimeLs;
use crate::result::SolveStats;
use pinocchio_geo::{Point, RegionVerdict};
use pinocchio_prob::ProbabilityFunction;

/// Result of a weighted solve.
#[derive(Debug, Clone)]
pub struct WeightedResult {
    /// Index of the optimal candidate (ties → smaller index).
    pub best_candidate: usize,
    /// Location of the optimal candidate.
    pub best_location: Point,
    /// `inf_w(best)` — the maximum total influenced weight.
    pub max_weighted_influence: f64,
    /// Exact weighted influence of every candidate.
    pub weighted_influences: Vec<f64>,
    /// Cost counters. Pairs of zero-weight objects are reported as
    /// `pairs_skipped_by_bounds` (the weight shortcut plays the role of
    /// a bound), so the pair accounting stays complete.
    pub stats: SolveStats,
}

/// Solves weighted PRIME-LS with per-object weights.
///
/// # Panics
/// Panics when `weights` does not match the object count or contains a
/// non-finite or negative value (negative weights would invalidate the
/// pruning logic: an object you *lose* value by influencing cannot be
/// decided by the influence-arcs shortcut).
pub fn solve_weighted<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    weights: &[f64],
) -> WeightedResult {
    assert_eq!(
        weights.len(),
        problem.objects().len(),
        "one weight per object required"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let mut pair = problem.pair_eval();

    let tree = problem.candidate_tree();
    let a2d = problem.a2d();

    let m = problem.candidates().len();
    let mut stats = SolveStats::default();
    let mut influences = vec![0.0f64; m];
    let mut undecided: Vec<usize> = Vec::new();
    for entry in a2d.entries() {
        let Some(regions) = entry.regions else {
            stats.uninfluenceable_objects += 1;
            continue;
        };
        let weight = weights[entry.index];
        if weight.abs().total_cmp(&0.0).is_eq() {
            // A zero weight cannot affect any ranking; its pairs are
            // skipped the way a VO bound would skip them.
            stats.pairs_skipped_by_bounds += m as u64;
            continue;
        }
        undecided.clear();
        let mut ia_hits = 0u64;
        let mut nib_members = 0u64;
        tree.query_region(
            |node| node.intersects(&regions.nib_mbr()),
            |p| regions.in_non_influence_boundary(p),
            &mut |p, &j| {
                nib_members += 1;
                match regions.classify(p) {
                    RegionVerdict::Influences => {
                        ia_hits += 1;
                        influences[j] += weight;
                    }
                    RegionVerdict::Undecided => undecided.push(j),
                    // pinocchio-lint: allow(panic-path) -- the query's region filter only forwards points inside the NIB, which classify() never maps to CannotInfluence
                    RegionVerdict::CannotInfluence => unreachable!("filtered by the query"),
                }
            },
        );
        stats.decided_by_ia += ia_hits;
        stats.decided_by_nib += m as u64 - nib_members;
        for &j in &undecided {
            if pair.influences(&problem.candidates()[j], entry.index, true, &mut stats) {
                influences[j] += weight;
            }
        }
    }

    let (best_candidate, _) = influences
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets (BuildError::NoCandidates), so max_by over the influence vector is Some
        .expect("at least one candidate by construction");
    WeightedResult {
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_weighted_influence: influences[best_candidate],
        weighted_influences: influences,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Algorithm;
    use crate::state::A2d;
    use pinocchio_data::{
        sample_candidate_group, GeneratorConfig, MovingObject, SyntheticGenerator,
    };
    use pinocchio_prob::PowerLawPf;

    fn problem(seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(60, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, 30, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn unit_weights_reduce_to_plain_prime_ls() {
        for seed in [1u64, 2] {
            let p = problem(seed);
            let unweighted = p.solve(Algorithm::Pinocchio);
            let weighted = solve_weighted(&p, &vec![1.0; p.objects().len()]);
            assert_eq!(weighted.best_candidate, unweighted.best_candidate);
            let plain = unweighted.influences.unwrap();
            for (w, &u) in weighted.weighted_influences.iter().zip(&plain) {
                assert!((w - u as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn weights_scale_influence_linearly() {
        let p = problem(3);
        let base = solve_weighted(&p, &vec![1.0; p.objects().len()]);
        let scaled = solve_weighted(&p, &vec![2.5; p.objects().len()]);
        for (a, b) in base
            .weighted_influences
            .iter()
            .zip(&scaled.weighted_influences)
        {
            assert!((a * 2.5 - b).abs() < 1e-9);
        }
        assert_eq!(base.best_candidate, scaled.best_candidate);
    }

    #[test]
    fn a_heavy_object_moves_the_optimum() {
        // Two objects in different places; weight decides the winner.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![pinocchio_geo::Point::new(0.0, 0.0)]),
                MovingObject::new(1, vec![pinocchio_geo::Point::new(20.0, 0.0)]),
            ])
            .candidates(vec![
                pinocchio_geo::Point::new(0.1, 0.0),
                pinocchio_geo::Point::new(20.1, 0.0),
            ])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        let west = solve_weighted(&p, &[5.0, 1.0]);
        assert_eq!(west.best_candidate, 0);
        assert!((west.max_weighted_influence - 5.0).abs() < 1e-12);
        let east = solve_weighted(&p, &[1.0, 5.0]);
        assert_eq!(east.best_candidate, 1);
    }

    #[test]
    fn zero_weight_objects_are_ignored() {
        let p = problem(5);
        let mut weights = vec![1.0; p.objects().len()];
        weights[0] = 0.0;
        let r = solve_weighted(&p, &weights);
        // Consistency: recompute with the object physically removed.
        let without = PrimeLs::builder()
            .objects(p.objects()[1..].to_vec())
            .candidates(p.candidates().to_vec())
            .probability_function(*p.pf())
            .tau(p.tau())
            .build()
            .unwrap();
        let reference = solve_weighted(&without, &vec![1.0; without.objects().len()]);
        for (a, b) in r
            .weighted_influences
            .iter()
            .zip(&reference.weighted_influences)
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_accounting_is_complete() {
        let p = problem(5);
        let a2d = A2d::build(p.objects(), p.pf(), p.tau());
        let influenceable_pairs = (a2d.influenceable() * p.candidates().len()) as u64;
        let mut weights = vec![1.0; p.objects().len()];
        weights[0] = 0.0; // zero-weight pairs must still be accounted
        let r = solve_weighted(&p, &weights);
        assert_eq!(r.stats.accounted_pairs(), influenceable_pairs);
    }

    #[test]
    #[should_panic(expected = "one weight per object")]
    fn weight_count_mismatch_rejected() {
        let p = problem(7);
        let _ = solve_weighted(&p, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let p = problem(9);
        let _ = solve_weighted(&p, &vec![-1.0; p.objects().len()]);
    }
}
