//! Datasets: moving objects plus venues with ground truth.

use crate::object::MovingObject;
use pinocchio_geo::{Mbr, Point};

/// A point of interest at which check-ins occur.
///
/// Venues double as the pool from which candidate locations are sampled
/// — exactly as the paper samples its candidates "from check-in
/// coordinates by random uniform sampling" (§6.1) — and carry the
/// ground-truth popularity used to score effectiveness (Tables 3–4).
#[derive(Debug, Clone, PartialEq)]
pub struct Venue {
    /// Venue position in the dataset's planar kilometre frame.
    pub position: Point,
    /// Total number of check-ins recorded at this venue.
    pub checkins: u64,
    /// Number of *distinct* users who checked in here.
    pub distinct_visitors: u64,
}

/// A complete evaluation dataset: named collection of moving objects and
/// venues in a shared planar kilometre frame.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    objects: Vec<MovingObject>,
    venues: Vec<Venue>,
}

impl Dataset {
    /// Assembles a dataset.
    ///
    /// # Panics
    /// Panics when there are no objects — every experiment needs at least
    /// one moving object. (Venue-less datasets are permitted: ground
    /// truth is only needed by the effectiveness experiments.)
    pub fn new(name: impl Into<String>, objects: Vec<MovingObject>, venues: Vec<Venue>) -> Self {
        let name = name.into();
        assert!(!objects.is_empty(), "dataset {name} has no moving objects");
        Dataset {
            name,
            objects,
            venues,
        }
    }

    /// Dataset name (e.g. `"foursquare-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The moving objects `Ω`.
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// The venues with their ground-truth popularity.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// Total number of check-ins across all objects.
    pub fn total_checkins(&self) -> usize {
        self.objects.iter().map(MovingObject::position_count).sum()
    }

    /// The frame enclosing every position of every object.
    pub fn frame(&self) -> Mbr {
        let mut mbr: Option<Mbr> = None;
        for o in &self.objects {
            let m = o.mbr();
            mbr = Some(mbr.map_or(m, |acc| acc.union(&m)));
        }
        mbr.expect("non-empty by construction")
    }

    /// Returns a dataset restricted to the given objects (cloned),
    /// keeping venues and name; used by the object-count scalability
    /// experiment (Fig. 9).
    pub fn with_objects(&self, objects: Vec<MovingObject>) -> Dataset {
        Dataset::new(self.name.clone(), objects, self.venues.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)]),
                MovingObject::new(1, vec![Point::new(5.0, 1.0)]),
            ],
            vec![Venue {
                position: Point::new(1.0, 1.0),
                checkins: 10,
                distinct_visitors: 2,
            }],
        )
    }

    #[test]
    fn accessors_and_totals() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.objects().len(), 2);
        assert_eq!(d.venues().len(), 1);
        assert_eq!(d.total_checkins(), 3);
    }

    #[test]
    fn frame_encloses_everything() {
        let d = toy();
        let f = d.frame();
        assert_eq!(f.lo(), Point::new(0.0, 0.0));
        assert_eq!(f.hi(), Point::new(5.0, 2.0));
    }

    #[test]
    fn with_objects_substitutes() {
        let d = toy();
        let d2 = d.with_objects(vec![MovingObject::new(9, vec![Point::new(1.0, 1.0)])]);
        assert_eq!(d2.objects().len(), 1);
        assert_eq!(d2.venues().len(), 1);
    }

    #[test]
    #[should_panic(expected = "no moving objects")]
    fn empty_dataset_rejected() {
        let _ = Dataset::new("empty", vec![], vec![]);
    }
}
