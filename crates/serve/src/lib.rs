//! `pinocchio-serve` — an epoch-snapshot query service over a PRIME-LS
//! instance.
//!
//! The crate turns the incremental engine
//! ([`DynamicPrimeLs`](pinocchio_core::DynamicPrimeLs)) into a
//! multi-threaded network service, std-only (no external runtime):
//!
//! * [`store`] — the epoch-snapshot state store. A single writer thread
//!   applies streamed updates and publishes immutable [`Arc`] snapshots
//!   through a `OnceLock` publication chain; readers are **lock-free**
//!   and every query is answered against one consistent epoch.
//! * [`scheduler`] — the bounded admission queue. Submission never
//!   blocks: at capacity, requests are shed with a typed `overloaded`
//!   rejection (explicit backpressure). Workers drain jobs in batches
//!   and answer each batch on a single snapshot, sharing from-scratch
//!   solve results between batch mates.
//! * [`wire`] — versioned newline-delimited JSON over TCP: the
//!   request/response grammar, typed error codes, and the shared
//!   `Display`-based conversions from the core solver errors.
//! * [`ingest`] — [`World`], the id-keyed state wrapper whose
//!   [`World::apply`] is the one update codepath shared by the server's
//!   writer thread and the CLI `replay` subcommand.
//! * [`shard`] — [`ShardedWorld`], the object-partitioned topology:
//!   N in-process shard worlds (routed by a stable hash of the wire
//!   object id), merged influence partials for queries, and the core
//!   sharded solver for `solve` requests — shard-transparent on the
//!   wire.
//! * [`server`] — the thread topology: accept loop, per-connection
//!   reader/writer pairs, the writer thread, the worker pool, and
//!   graceful drain-on-shutdown with `resume_unwind` panic containment.
//! * [`stats`] — [`ServeStats`], the observability counter block with a
//!   strict accounting identity, queryable in-band via `stats`.
//!
//! DESIGN.md §12 documents the happens-before argument for the snapshot
//! store, the backpressure policy, and the full wire-protocol reference.
//!
//! [`Arc`]: std::sync::Arc

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ingest;
pub mod scheduler;
pub mod server;
pub mod shard;
pub mod stats;
pub mod store;
pub mod wire;

pub use ingest::{SolveOutcome, World};
pub use pinocchio_core::MaintenanceMode;
pub use scheduler::{AdmissionQueue, Job, SubmitError};
pub use server::{serve, ServerConfig, ServerHandle};
pub use shard::{InProcessShard, ShardSummary, ShardTransport, ShardedWorld};
pub use stats::{ServeStats, LATENCY_BUCKETS, LATENCY_BUCKET_BOUNDS_US};
pub use store::{Publisher, Reader, Snapshot};
pub use wire::{
    parse_algorithm, parse_request, response_err, response_ok, ErrorCode, QueryOp, Request,
    UpdateOp, WireError, PROTOCOL_VERSION,
};
