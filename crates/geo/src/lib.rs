//! Geometry kernel for the PINOCCHIO location-selection framework.
//!
//! This crate provides the spatial primitives that every other crate in the
//! workspace builds on:
//!
//! * [`Point`] — a position in a two-dimensional plane (projected
//!   kilometres) or on the sphere (degrees of longitude/latitude),
//! * [`Mbr`] — minimum bounding rectangles with the `minDist`/`maxDist`
//!   metrics of Roussopoulos et al. that the paper's pruning rules are
//!   built on,
//! * [`metric`] — pluggable distance metrics (planar Euclidean and
//!   great-circle haversine),
//! * [`region`] — membership tests and areas for the paper's two pruning
//!   regions: the *influence-arcs* region (Lemma 2) and the
//!   *non-influence boundary* (Lemma 3),
//! * [`projection`] — an equirectangular projection for turning raw
//!   longitude/latitude check-ins into a local planar frame measured in
//!   kilometres.
//!
//! The crate is dependency-free and forbids `unsafe` code.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod mbr;
pub mod metric;
pub mod point;
pub mod projection;
pub mod region;

pub use mbr::Mbr;
pub use metric::{DistanceMetric, Euclidean, Haversine};
pub use point::Point;
pub use projection::EquirectangularProjection;
pub use region::{InfluenceRegions, RegionVerdict};
