//! Offline stand-in for the `serde_json` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the subset the workspace's experiment harness uses: the
//! [`Value`] tree, [`Map`], the [`json!`] macro, and
//! [`to_string`] / [`to_string_pretty`]. There is no serde integration —
//! values are built through `From` conversions, which is exactly how the
//! `json!` call sites use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers keep their integer spelling when printed.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Infinity/NaN; serde_json serialises
                    // non-finite floats as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An order-preserving JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing and returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

/// References convert by cloning, so `json!` can borrow its expression
/// operands the way real serde_json's `to_value(&value)` does.
impl<T: Clone> From<&T> for Value
where
    Value: From<T>,
{
    fn from(v: &T) -> Value {
        Value::from(v.clone())
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<A, B> From<(A, B)> for Value
where
    Value: From<A> + From<B>,
{
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![Value::from(a), Value::from(b)])
    }
}

impl<A, B, C> From<(A, B, C)> for Value
where
    Value: From<A> + From<B> + From<C>,
{
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![Value::from(a), Value::from(b), Value::from(c)])
    }
}

impl<T, const N: usize> From<[T; N]> for Value
where
    Value: From<T>,
{
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

impl<T> From<BTreeMap<String, T>> for Value
where
    Value: From<T>,
{
    fn from(v: BTreeMap<String, T>) -> Value {
        let mut map = Map::new();
        for (k, val) in v {
            map.insert(k, Value::from(val));
        }
        Value::Object(map)
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => Value::from(inner),
            None => Value::Null,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialisation error (this stand-in never fails; the type exists for
/// signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`].
///
/// A recursive-descent parser covering the full JSON grammar this
/// crate's serialiser can emit (and standard escapes / exponents
/// besides), so output round-trips: `from_str(&to_string(&v)?) == Ok(v)`
/// for any `v` without non-finite floats.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error),
        Some(b'n') => eat(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => eat(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => eat(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error);
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(Error)?;
                        let hex = std::str::from_utf8(hex).map_err(|_| Error)?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                        out.push(char::from_u32(code).ok_or(Error)?);
                        *pos += 4;
                    }
                    _ => return Err(Error),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 character (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error)?;
                let c = rest.chars().next().ok_or(Error)?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error)?;
    if text.is_empty() || text == "-" {
        return Err(Error);
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::NegInt(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error)
}

impl Value {
    /// The string payload, if this is a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64`, for any JSON number (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a `Value::Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object map, if this is a `Value::Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` on an object value; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let v: Value = value.clone().into();
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let v: Value = value.clone().into();
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Builds a [`Value`] from a JSON-like literal; non-literal Rust
/// expressions are converted through `Into<Value>`.
///
/// Values inside object and array literals are munched token-by-token up
/// to the next top-level comma, so multi-token Rust expressions
/// (`result.max_influence`, `frame.width()`) work as in real serde_json.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::Value> = Vec::new();
        {
            $crate::json_elems!(items; $($tt)*);
        }
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_entries!(map; $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from(&$other) };
}

/// Internal: parses array elements. Nested `{}`/`[]`/`null` match as
/// token trees first; anything else parses as one Rust expression, which
/// keeps commas inside turbofish (`BTreeMap<_, _>`) intact.
#[macro_export]
#[doc(hidden)]
macro_rules! json_elems {
    ($items:ident;) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::Value::from(&$value));
        $crate::json_elems!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::Value::from(&$value));
    };
}

/// Internal: parses `"key": value` entries of an object literal (same
/// value grammar as [`json_elems!`]).
#[macro_export]
#[doc(hidden)]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from(&$value));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::Value::from(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let xs = vec![1.5f64, 2.0];
        let v = json!({
            "name": "pinocchio",
            "count": 3usize,
            "nested": { "avg": 1.75, "max": 2.0 },
            "series": xs,
            "pair": [1, 2],
            "flag": true,
            "nothing": null,
        });
        let Value::Object(map) = &v else {
            panic!("not an object")
        };
        assert_eq!(map.get("name"), Some(&Value::from("pinocchio")));
        assert_eq!(map.get("count"), Some(&Value::from(3usize)));
        assert!(matches!(map.get("nested"), Some(Value::Object(_))));
        assert_eq!(map.len(), 7);
    }

    #[test]
    fn pretty_printing_round_trips_structure() {
        let v = json!({ "a": [1, 2], "b": { "c": "x\"y" } });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": ["));
        assert!(s.contains("\\\"y\""));
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2],"b":{"c":"x\"y"}}"#);
    }

    #[test]
    fn numbers_print_like_serde_json() {
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        assert_eq!(to_string(&json!(-4i64)).unwrap(), "-4");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2.0");
    }

    #[test]
    fn maps_replace_on_duplicate_insert() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), json!(1)).is_none());
        assert_eq!(m.insert("k".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&json!(2)));
    }

    #[test]
    fn btreemap_and_vec_conversions() {
        let mut b = std::collections::BTreeMap::new();
        b.insert("x".to_string(), vec![1.0f64, 2.0]);
        let v = Value::from(b);
        let Value::Object(map) = &v else { panic!() };
        assert!(matches!(map.get("x"), Some(Value::Array(a)) if a.len() == 2));
    }
}
