//! Bench PR 8 — the log-domain kernel gate: scalar vs blocked vs
//! log-blocked across the main solvers on the Fig. 8 / Fig. 9 default
//! workloads at τ ∈ {0.5, 0.7}.
//!
//! Emits `BENCH_PR8.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per (dataset, τ, kernel,
//! solver) for the solvers `naive`, `vo_seq`, `vo_par`, `join_seq` and
//! `join_par`.
//!
//! The run doubles as a correctness-and-performance gate:
//!
//! * every row must reproduce the scalar-naive `(best_candidate,
//!   max_influence)` verdict for its (dataset, τ) exactly, and
//! * on the validation-dominated configs — the naive rows, where every
//!   pair is validated and the kernel *is* the workload — the
//!   log-blocked kernel must run ≥ [`SPEEDUP_FLOOR`]× faster than the
//!   PR-3 blocked kernel. The two naive runs are interleaved
//!   rep-for-rep so the ratio compares like machine state with like.
//!
//! Intended to run at `PINOCCHIO_SCALE=small` in CI (the `kernel-bench`
//! job re-checks agreement and guards the checked-in rows against >10%
//! regression); at full scale it is the same sweep, just slower.

use pinocchio_bench::*;
use pinocchio_core::{join, parallel, Algorithm, EvalKernel, PrimeLs, SolveStats};
use pinocchio_data::{sample_candidate_group, Dataset};
use pinocchio_prob::PowerLawPf;
use std::path::PathBuf;
use std::time::Instant;

/// Parallel worker count for the `*_par` rows.
const PAR_THREADS: usize = 4;
/// Timed repetitions per row (best-of is recorded).
const REPS: usize = 5;
/// Required naive-row speedup of the log-blocked kernel over the
/// blocked kernel on every (dataset, τ) config.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Thresholds benchmarked: the paper default and the looser midpoint,
/// both sides of the influence/non-influence mix.
const TAUS: [f64; 2] = [0.5, 0.7];

fn build(d: &Dataset, kernel: EvalKernel, tau: f64) -> PrimeLs<PowerLawPf> {
    let m = defaults::CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(d, m, 8);
    PrimeLs::builder()
        .objects(d.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(tau)
        .evaluation_kernel(kernel)
        .build()
        .expect("benchmark problems are well-formed")
}

type Verdict = (usize, u32, SolveStats);

/// Best-of-[`REPS`] wall time plus the verdict of the final run.
fn best_of<F: FnMut() -> Verdict>(mut run: F) -> (f64, Verdict) {
    let _ = run(); // warm-up: faults pages, fills the tree/A2D caches
    let mut best = f64::INFINITY;
    let mut last = (0usize, 0u32, SolveStats::default());
    for _ in 0..REPS {
        let t = Instant::now();
        last = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last)
}

/// Interleaved best-of-[`REPS`] of two runners: reps alternate A, B,
/// A, B, … so a machine-throughput shift lands on both sides of the
/// later ratio instead of on whichever happened to run second.
fn best_of_paired<F, G>(mut a: F, mut b: G) -> ((f64, Verdict), (f64, Verdict))
where
    F: FnMut() -> Verdict,
    G: FnMut() -> Verdict,
{
    let _ = a();
    let _ = b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut last_a = (0usize, 0u32, SolveStats::default());
    let mut last_b = last_a;
    for _ in 0..REPS {
        let t = Instant::now();
        last_a = a();
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        last_b = b();
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    ((best_a, last_a), (best_b, last_b))
}

/// Records one row and returns its verdict for the agreement gate.
fn row(
    rows: &mut Vec<serde_json::Value>,
    dataset: &str,
    tau: f64,
    kernel: &str,
    solver: &str,
    (secs, (best_candidate, max_influence, stats)): (f64, Verdict),
) -> Verdict {
    println!(
        "  {kernel:<11} {solver:<8} {:<10} best=#{best_candidate} inf={max_influence} \
         eval={} skip={} fallbacks={}",
        fmt_secs(secs),
        stats.positions_evaluated,
        stats.positions_skipped_by_blocks,
        stats.log_band_fallbacks,
    );
    rows.push(serde_json::json!({
        "dataset": dataset,
        "tau": tau,
        "kernel": kernel,
        "solver": solver,
        "seconds": secs,
        "best_candidate": best_candidate,
        "max_influence": max_influence,
        "validated_pairs": stats.validated_pairs,
        "positions_evaluated": stats.positions_evaluated,
        "positions_skipped_by_blocks": stats.positions_skipped_by_blocks,
        "blocks_pruned": stats.blocks_pruned,
        "log_band_fallbacks": stats.log_band_fallbacks,
    }));
    (best_candidate, max_influence, stats)
}

fn main() {
    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut gates: Vec<serde_json::Value> = Vec::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        for tau in TAUS {
            println!(
                "bench-pr8: dataset {} τ={tau} ({} objects)",
                kind.letter(),
                d.objects().len()
            );
            let scalar = build(&d, EvalKernel::Scalar, tau);
            let blocked = build(&d, EvalKernel::Blocked, tau);
            let log = build(&d, EvalKernel::LogBlocked, tau);

            let solve = |p: &PrimeLs<PowerLawPf>, a: Algorithm| {
                let r = p.solve(a);
                (r.best_candidate, r.max_influence, r.stats)
            };
            let from_result =
                |r: pinocchio_core::SolveResult| (r.best_candidate, r.max_influence, r.stats);

            // The gate pair first: blocked-naive vs log-naive,
            // interleaved. These are the validation-dominated rows the
            // ≥2× floor is asserted on.
            let (blocked_naive, log_naive) = best_of_paired(
                || solve(&blocked, Algorithm::Naive),
                || solve(&log, Algorithm::Naive),
            );
            let speedup = blocked_naive.0 / log_naive.0;

            let (ref_best, ref_inf, _) = row(
                &mut rows,
                kind.letter(),
                tau,
                "scalar",
                "naive",
                best_of(|| solve(&scalar, Algorithm::Naive)),
            );
            let check = |kernel: &str, solver: &str, verdict: Verdict| {
                assert_eq!(
                    (verdict.0, verdict.1),
                    (ref_best, ref_inf),
                    "{kernel}/{solver} disagrees with scalar naive on dataset {} τ={tau}",
                    kind.letter()
                );
            };
            let naive_b = row(
                &mut rows,
                kind.letter(),
                tau,
                "blocked",
                "naive",
                blocked_naive,
            );
            check("blocked", "naive", naive_b);
            let naive_l = row(
                &mut rows,
                kind.letter(),
                tau,
                "log_blocked",
                "naive",
                log_naive,
            );
            check("log_blocked", "naive", naive_l);

            for (kernel, p) in [
                ("scalar", &scalar),
                ("blocked", &blocked),
                ("log_blocked", &log),
            ] {
                for (solver, timing) in [
                    ("vo_seq", best_of(|| solve(p, Algorithm::PinocchioVo))),
                    (
                        "vo_par",
                        best_of(|| from_result(parallel::solve_vo(p, PAR_THREADS))),
                    ),
                    ("join_seq", best_of(|| solve(p, Algorithm::PinocchioJoin))),
                    (
                        "join_par",
                        best_of(|| from_result(join::solve_par(p, PAR_THREADS))),
                    ),
                ] {
                    let verdict = row(&mut rows, kind.letter(), tau, kernel, solver, timing);
                    check(kernel, solver, verdict);
                }
            }

            println!(
                "  => naive blocked/log_blocked speedup: {speedup:.2}x (floor {SPEEDUP_FLOOR}x)"
            );
            gates.push(serde_json::json!({
                "dataset": kind.letter(),
                "tau": tau,
                "naive_speedup_log_over_blocked": speedup,
            }));
            assert!(
                speedup >= SPEEDUP_FLOOR,
                "log-blocked naive is only {speedup:.2}x faster than blocked on dataset {} τ={tau} \
                 (floor {SPEEDUP_FLOOR}x)",
                kind.letter()
            );
        }
    }

    let record = serde_json::json!({
        "id": "bench_pr8",
        "scale": if is_small_scale() { "small" } else { "full" },
        "candidates": defaults::CANDIDATES,
        "par_threads": PAR_THREADS,
        "reps": REPS,
        "speedup_floor": SPEEDUP_FLOOR,
        "naive_speedups": gates,
        "rows": rows,
    });
    write_record("bench_pr8", &record);

    // Also drop the record at the workspace root so the PR carries the
    // measured numbers alongside the code (BENCH_PR8.json is checked
    // in; the earlier BENCH_PR*.json files stay as prior baselines).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR8.json");
    println!("[record written to {}]", root.display());
}
