//! The probability-function trait and the paper's power-law default.

/// A monotonically decreasing, distance-based influence probability
/// function (§3.1).
///
/// Implementations map a non-negative distance in kilometres to an
/// influence probability in `[0, 1]` and must satisfy, for all
/// `0 ≤ d₁ ≤ d₂`:
///
/// * `prob(d₁) ≥ prob(d₂)` (monotone non-increasing),
/// * `prob(d) ∈ [0, 1]`,
/// * `inverse(p)` returns the smallest distance `d` with `prob(d) ≤ p`
///   whenever some distance attains probability `≤ p`, i.e. it inverts
///   the function on its range; `inverse(p) = None` when `p` exceeds the
///   maximum attainable probability `prob(0)`.
///
/// The inverse is the workhorse of Definition 5: `minMaxRadius(τ, n) =
/// PF⁻¹(1 − (1 − τ)^{1/n})`, and `None` certifies that the associated
/// object can never be influenced — even a facility at distance zero from
/// every position fails to reach the threshold (see
/// [`crate::radius::min_max_radius`]).
pub trait ProbabilityFunction: Send + Sync + std::fmt::Debug {
    /// Influence probability at distance `d ≥ 0` kilometres.
    fn prob(&self, d: f64) -> f64;

    /// The distance at which the function attains probability `p`, or
    /// `None` when `p > prob(0)` (unattainable).
    ///
    /// For functions with bounded support, probabilities at or below the
    /// infimum map to the support radius.
    fn inverse(&self, p: f64) -> Option<f64>;

    /// Maximum attainable probability, `prob(0)`.
    fn prob_at_zero(&self) -> f64 {
        self.prob(0.0)
    }

    /// Human-readable name for experiment logs.
    fn name(&self) -> &'static str;
}

/// The paper's default probability function (§6.1):
/// `PF(d) = ρ · (d₀ + d)^(−λ)`, the power-law check-in model of Liu et
/// al. (KDD 2013).
///
/// * `ρ` — *behaviour-pattern* factor, the probability at distance zero
///   when `d₀ = 1` (paper default `0.9`; also swept over `{0.5, 0.7, 0.9}`
///   in Fig. 15),
/// * `d₀` — distance offset keeping the function finite at `d = 0`
///   (paper default `1.0`),
/// * `λ` — power-law decay exponent (paper default `1.0`; swept over
///   `{0.75, 1.0, 1.25}` in Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawPf {
    rho: f64,
    d0: f64,
    lambda: f64,
}

impl PowerLawPf {
    /// Creates a power-law probability function.
    ///
    /// # Panics
    /// Panics unless `0 < ρ ≤ 1`, `d₀ > 0`, `λ > 0`, and `ρ·d₀^(−λ) ≤ 1`
    /// (probabilities must stay within `[0, 1]`).
    pub fn new(rho: f64, d0: f64, lambda: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(d0 > 0.0, "d0 must be positive, got {d0}");
        assert!(lambda > 0.0, "lambda must be positive, got {lambda}");
        let at_zero = rho * d0.powf(-lambda);
        assert!(
            at_zero <= 1.0 + 1e-12,
            "PF(0) = {at_zero} exceeds 1; choose a larger d0 or smaller rho"
        );
        PowerLawPf { rho, d0, lambda }
    }

    /// The paper's default parameters: `ρ = 0.9`, `d₀ = 1.0`, `λ = 1.0`.
    pub fn paper_default() -> Self {
        PowerLawPf::new(0.9, 1.0, 1.0)
    }

    /// Same `ρ`/`d₀`, different decay exponent (the Fig. 14 sweep).
    pub fn with_lambda(lambda: f64) -> Self {
        PowerLawPf::new(0.9, 1.0, lambda)
    }

    /// Same `d₀`/`λ`, different behaviour factor (the Fig. 15 sweep).
    pub fn with_rho(rho: f64) -> Self {
        PowerLawPf::new(rho, 1.0, 1.0)
    }

    /// Behaviour-pattern factor `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Distance offset `d₀`.
    pub fn d0(&self) -> f64 {
        self.d0
    }

    /// Decay exponent `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

/// Bit pattern of `1.0_f64` — the exact-representation test for the
/// unit-λ fast path below compares against this, not a float literal.
const UNIT_LAMBDA_BITS: u64 = 1.0_f64.to_bits();

impl PowerLawPf {
    /// Whether `λ` is exactly `1.0` (the paper default), enabling the
    /// division fast path: `x^(−1) = 1/x` and `x^(1/1) = x` exactly, so
    /// the `powf` calls — by far the most expensive operation in the
    /// validation hot loop — can be replaced by one division each.
    /// Bit comparison rather than `==` keeps the check honest about
    /// what it is: an exact-representation test, not a tolerance.
    #[inline]
    fn is_unit_lambda(&self) -> bool {
        self.lambda.to_bits() == UNIT_LAMBDA_BITS
    }
}

impl ProbabilityFunction for PowerLawPf {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "negative distance {d}");
        if self.is_unit_lambda() {
            return self.rho / (self.d0 + d);
        }
        self.rho * (self.d0 + d).powf(-self.lambda)
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p.is_nan() || p <= 0.0 {
            // p ≤ 0 (or NaN): the power law never reaches 0, so there is
            // no finite distance with prob(d) ≤ 0 — but every probability
            // target below the range is satisfied in the limit; callers
            // only ask for p in (0, 1], so reject degenerate input.
            return None;
        }
        let d = if self.is_unit_lambda() {
            self.rho / p - self.d0
        } else {
            (self.rho / p).powf(1.0 / self.lambda) - self.d0
        };
        if d < 0.0 {
            None // p > PF(0): unattainable even at distance zero
        } else {
            Some(d)
        }
    }

    fn name(&self) -> &'static str {
        "power-law"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let pf = PowerLawPf::paper_default();
        assert_eq!(pf.prob(0.0), 0.9); // ρ with d0 = 1, λ = 1
        assert!((pf.prob(1.0) - 0.45).abs() < 1e-12); // 0.9 / 2
        assert!((pf.prob(8.0) - 0.1).abs() < 1e-12); // 0.9 / 9
    }

    #[test]
    fn monotone_decreasing() {
        let pf = PowerLawPf::paper_default();
        let mut last = pf.prob(0.0);
        for i in 1..=100 {
            let p = pf.prob(i as f64 * 0.37);
            assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn inverse_round_trips() {
        for (rho, d0, lambda) in [(0.9, 1.0, 1.0), (0.5, 1.0, 0.75), (0.7, 2.0, 1.25)] {
            let pf = PowerLawPf::new(rho, d0, lambda);
            for d in [0.0, 0.1, 1.0, 5.0, 42.0] {
                let p = pf.prob(d);
                let d2 = pf.inverse(p).unwrap();
                assert!((d - d2).abs() < 1e-9, "d={d} p={p} d2={d2}");
            }
        }
    }

    #[test]
    fn inverse_unattainable_probability_is_none() {
        let pf = PowerLawPf::paper_default(); // PF(0) = 0.9
        assert_eq!(pf.inverse(0.95), None);
        assert_eq!(pf.inverse(0.0), None);
        assert_eq!(pf.inverse(-0.1), None);
        assert!(pf.inverse(0.9).unwrap().abs() < 1e-12);
    }

    #[test]
    fn lambda_controls_decay_speed() {
        let slow = PowerLawPf::with_lambda(0.75);
        let fast = PowerLawPf::with_lambda(1.25);
        assert_eq!(slow.prob(0.0), fast.prob(0.0)); // same at zero (d0 = 1)
        assert!(slow.prob(5.0) > fast.prob(5.0));
    }

    #[test]
    fn rho_scales_uniformly() {
        let lo = PowerLawPf::with_rho(0.5);
        let hi = PowerLawPf::with_rho(0.9);
        for d in [0.0, 1.0, 3.0] {
            assert!((hi.prob(d) / lo.prob(d) - 1.8).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_lambda_fast_path_round_trips() {
        // λ = 1 takes the division fast path in both directions; the
        // round trip must still invert exactly (to within the usual
        // analytic-inverse tolerance) across the whole distance range.
        for rho in [0.5, 0.7, 0.9] {
            let pf = PowerLawPf::new(rho, 1.0, 1.0);
            for d in [0.0, 1e-6, 0.1, 1.0, 5.0, 42.0, 1e4] {
                let p = pf.prob(d);
                let d2 = pf.inverse(p).unwrap();
                assert!(
                    (d - d2).abs() <= 1e-9 * (1.0 + d),
                    "rho={rho} d={d} p={p} d2={d2}"
                );
            }
        }
    }

    #[test]
    fn unit_lambda_fast_path_matches_powf() {
        // The division path may differ from `ρ·x^(−1)` only by the one
        // extra rounding the powf path performs — i.e. at most 1 ulp.
        // In practice they agree bitwise across this sweep; assert the
        // tight relative bound so a real regression cannot hide.
        let pf = PowerLawPf::paper_default();
        for i in 0..1000 {
            let d = i as f64 * 0.173;
            let fast = pf.prob(d);
            let slow = pf.rho() * (pf.d0() + d).powf(-1.0);
            assert!(
                (fast - slow).abs() <= slow * f64::EPSILON,
                "d={d}: fast={fast:e} slow={slow:e}"
            );
        }
    }

    #[test]
    fn swept_lambda_still_uses_powf_semantics() {
        // λ ≠ 1 must keep the general powf formula bit for bit.
        for lambda in [0.75_f64, 1.25, 2.0] {
            let pf = PowerLawPf::with_lambda(lambda);
            for d in [0.0_f64, 0.5, 3.0, 27.0] {
                let expect = 0.9 * (1.0 + d).powf(-lambda);
                assert_eq!(pf.prob(d).to_bits(), expect.to_bits(), "λ={lambda} d={d}");
            }
        }
        // A λ that is 1.0 only approximately must not take the fast path.
        let near = PowerLawPf::with_lambda(1.0 + 1e-15);
        let d = 2.0;
        let expect = 0.9 * 3.0_f64.powf(-(1.0 + 1e-15));
        assert_eq!(near.prob(d).to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn invalid_rho_rejected() {
        let _ = PowerLawPf::new(1.5, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn probability_above_one_rejected() {
        // ρ = 0.9 but d0 = 0.5, λ = 1 gives PF(0) = 1.8.
        let _ = PowerLawPf::new(0.9, 0.5, 1.0);
    }
}
