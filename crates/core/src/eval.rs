//! Per-pair evaluation dispatch — one place where every solver turns an
//! (object, candidate) pair into an influence verdict.
//!
//! Historically each solver called
//! [`CumulativeProbability::influences`] /
//! [`influences_early_stop`](CumulativeProbability::influences_early_stop)
//! directly and maintained its own `validated_pairs` /
//! `positions_evaluated` bookkeeping. [`PairEval`] centralises both, so
//! all solvers:
//!
//! * account for work identically (the stats-parity tests compare
//!   [`SolveStats`] across solvers and thread counts), and
//! * can be switched between the scalar evaluation path and the
//!   block-bounded structure-of-arrays kernel
//!   ([`CumulativeProbability::influences_blocked`]) with one
//!   [`EvalKernel`] knob on the problem instance — the verdicts are
//!   identical by construction, so every solver stays bit-identical
//!   under either kernel.

use crate::result::SolveStats;
use pinocchio_data::{MovingObject, PositionArena, BLOCK_SIZE};
use pinocchio_geo::{Euclidean, Point};
use pinocchio_prob::{
    BlockScratch, CumulativeProbability, EarlyStopOutcome, ProbabilityFunction, SoaBlocks,
};

/// Which evaluation path [`PairEval::influences`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalKernel {
    /// The scalar per-position scan over `MovingObject::positions()`
    /// (with the Lemma 4 early exit where the solver requests it).
    /// This is the default and reproduces the historical behaviour —
    /// and stats — exactly.
    #[default]
    Scalar,
    /// The block-bounded structure-of-arrays kernel: per-block
    /// `minDist`/`maxDist` bounds decide most objects from a handful of
    /// distances; only straddling blocks are refined. Verdicts are
    /// identical to [`EvalKernel::Scalar`]; `positions_evaluated`
    /// shrinks and the `blocks_pruned` / `positions_skipped_by_blocks`
    /// counters light up. The kernel subsumes the scalar early-stop
    /// flag (its bounding pass exits early in both directions), so the
    /// solver's `early_stop` request is ignored under this kernel.
    Blocked,
}

/// A borrowed evaluation context: the probability evaluator plus both
/// position representations (per-object `Vec<Point>` and the flat
/// [`PositionArena`]) and the problem's `τ`.
///
/// Built by [`PrimeLs::pair_eval`](crate::PrimeLs::pair_eval); the
/// arena is constructed together with the problem, so object index `k`
/// here always refers to the same object in both layouts.
#[derive(Debug)]
pub struct PairEval<'a, P> {
    eval: CumulativeProbability<P, Euclidean>,
    objects: &'a [MovingObject],
    arena: &'a PositionArena,
    kernel: EvalKernel,
    tau: f64,
    // Reused across every pair this evaluator validates (the blocked
    // kernel's per-block bound factors); owning it here is why
    // `influences` takes `&mut self`.
    scratch: BlockScratch,
}

impl<'a, P: ProbabilityFunction + Clone> PairEval<'a, P> {
    pub(crate) fn new(
        eval: CumulativeProbability<P, Euclidean>,
        objects: &'a [MovingObject],
        arena: &'a PositionArena,
        kernel: EvalKernel,
        tau: f64,
    ) -> Self {
        debug_assert_eq!(arena.object_count(), objects.len());
        PairEval {
            eval,
            objects,
            arena,
            kernel,
            tau,
            scratch: BlockScratch::default(),
        }
    }

    /// The underlying cumulative-probability evaluator.
    pub fn evaluator(&self) -> &CumulativeProbability<P, Euclidean> {
        &self.eval
    }

    /// The active evaluation kernel.
    pub fn kernel(&self) -> EvalKernel {
        self.kernel
    }

    /// Whether `candidate` influences object `object_index`
    /// (`Pr_c(O) ≥ τ`), recording the pair's cost into `stats`.
    ///
    /// `early_stop` selects the Lemma 4 early exit on the scalar path
    /// (Strategy 2); the blocked kernel always bounds in both
    /// directions and ignores the flag. Every call adds exactly one
    /// `validated_pairs`, and the pair's positions are fully accounted:
    /// on the scalar path the early exit's unevaluated tail is implicit
    /// in `positions_evaluated < n`, on the blocked path the identity
    /// `positions_evaluated + positions_skipped_by_blocks = n` holds
    /// per pair.
    pub fn influences(
        &mut self,
        candidate: &Point,
        object_index: usize,
        early_stop: bool,
        stats: &mut SolveStats,
    ) -> bool {
        stats.validated_pairs += 1;
        match self.kernel {
            EvalKernel::Scalar => {
                let object = &self.objects[object_index];
                let outcome = if early_stop {
                    self.eval
                        .influences_early_stop(candidate, object.positions(), self.tau)
                } else {
                    EarlyStopOutcome::from_verdict(
                        self.eval
                            .influences(candidate, object.positions(), self.tau),
                        object.position_count(),
                    )
                };
                stats.positions_evaluated += outcome.positions_evaluated as u64;
                outcome.influenced
            }
            EvalKernel::Blocked => {
                let view = SoaBlocks::new(
                    self.arena.object_xs(object_index),
                    self.arena.object_ys(object_index),
                    self.arena.object_block_mbrs(object_index),
                    BLOCK_SIZE,
                );
                let outcome =
                    self.eval
                        .influences_blocked(candidate, &view, self.tau, &mut self.scratch);
                stats.positions_evaluated += outcome.positions_evaluated as u64;
                stats.positions_skipped_by_blocks += outcome.positions_skipped as u64;
                stats.blocks_pruned += outcome.blocks_pruned as u64;
                outcome.influenced
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PrimeLs;
    use pinocchio_prob::PowerLawPf;

    fn problem(kernel: EvalKernel) -> PrimeLs<PowerLawPf> {
        PrimeLs::builder()
            .objects(vec![
                MovingObject::new(
                    0,
                    (0..40).map(|i| Point::new(i as f64 * 0.3, 0.0)).collect(),
                ),
                MovingObject::new(1, vec![Point::new(50.0, 50.0)]),
            ])
            .candidates(vec![Point::new(0.0, 0.1), Point::new(200.0, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .evaluation_kernel(kernel)
            .build()
            .unwrap()
    }

    #[test]
    fn kernels_agree_on_verdicts() {
        let scalar = problem(EvalKernel::Scalar);
        let blocked = problem(EvalKernel::Blocked);
        let mut ps = scalar.pair_eval();
        let mut pb = blocked.pair_eval();
        let mut s_stats = SolveStats::default();
        let mut b_stats = SolveStats::default();
        for k in 0..2 {
            for c in scalar.candidates() {
                for early in [false, true] {
                    assert_eq!(
                        ps.influences(c, k, early, &mut s_stats),
                        pb.influences(c, k, early, &mut b_stats),
                        "object {k} candidate {c:?} early={early}"
                    );
                }
            }
        }
        assert_eq!(s_stats.validated_pairs, b_stats.validated_pairs);
        assert_eq!(s_stats.positions_skipped_by_blocks, 0);
        assert_eq!(s_stats.blocks_pruned, 0);
    }

    #[test]
    fn blocked_accounting_is_total_per_pair() {
        let p = problem(EvalKernel::Blocked);
        let mut pair = p.pair_eval();
        let total_positions: u64 = p.objects().iter().map(|o| o.position_count() as u64).sum();
        let mut stats = SolveStats::default();
        for k in 0..p.objects().len() {
            for c in p.candidates() {
                let _ = pair.influences(c, k, true, &mut stats);
            }
        }
        // Every pair scans its object once: 2 candidates × all objects.
        assert_eq!(
            stats.positions_evaluated + stats.positions_skipped_by_blocks,
            2 * total_positions
        );
    }

    #[test]
    fn scalar_full_scan_counts_every_position() {
        let p = problem(EvalKernel::Scalar);
        let mut pair = p.pair_eval();
        let mut stats = SolveStats::default();
        let _ = pair.influences(&p.candidates()[0], 0, false, &mut stats);
        assert_eq!(stats.validated_pairs, 1);
        assert_eq!(
            stats.positions_evaluated,
            p.objects()[0].position_count() as u64
        );
    }
}
