//! Epoch-snapshot state store: single writer, lock-free readers.
//!
//! The store is a publication chain of immutable snapshots. Each
//! [`Node`] owns one `Arc<Snapshot>` and a [`OnceLock`] link to its
//! successor. The single [`Publisher`] appends by setting the tail's
//! link; every [`Reader`] holds a cursor into the chain and advances it
//! by chasing links.
//!
//! ## Happens-before
//!
//! `OnceLock::set` publishes with release semantics and `OnceLock::get`
//! observes with acquire semantics, so everything the writer did before
//! `publish` — in particular, building the snapshot's state — is
//! visible to any reader that observes the link. A reader therefore
//! always sees a fully constructed snapshot for whichever epoch its
//! cursor reaches, and never a torn or in-progress one. The query path
//! takes no lock anywhere: `Reader::latest` is a bounded walk of
//! already-published `Arc`s (the full argument is in DESIGN.md §12).
//!
//! Dropped prefixes of the chain are reclaimed automatically: once every
//! reader has advanced past a node and the publisher no longer
//! references it, its `Arc` count reaches zero. Readers pin at most the
//! suffix from the oldest cursor onward.

use std::sync::{Arc, OnceLock};

/// One immutable published state, tagged with its epoch.
///
/// Epoch 0 is the initial state the store was created with; every
/// `publish` increments the epoch by exactly one.
#[derive(Debug)]
pub struct Snapshot<T> {
    /// Monotone publication counter (0 = initial state).
    pub epoch: u64,
    /// The state frozen at this epoch.
    pub state: T,
}

/// A link of the publication chain.
#[derive(Debug)]
struct Node<T> {
    snapshot: Arc<Snapshot<T>>,
    next: OnceLock<Arc<Node<T>>>,
}

/// The writing half: owned by exactly one thread (not `Clone`), appends
/// snapshots to the chain.
#[derive(Debug)]
pub struct Publisher<T> {
    tail: Arc<Node<T>>,
}

/// The reading half: a cheap-to-clone cursor into the chain. `latest`
/// advances the cursor to the newest published snapshot without taking
/// any lock.
#[derive(Debug, Clone)]
pub struct Reader<T> {
    cursor: Arc<Node<T>>,
}

impl<T> Publisher<T> {
    /// Creates a store holding `initial` as epoch 0, returning the
    /// unique publisher and a reader positioned at epoch 0.
    pub fn new(initial: T) -> (Publisher<T>, Reader<T>) {
        let node = Arc::new(Node {
            snapshot: Arc::new(Snapshot {
                epoch: 0,
                state: initial,
            }),
            next: OnceLock::new(),
        });
        (
            Publisher {
                tail: Arc::clone(&node),
            },
            Reader { cursor: node },
        )
    }

    /// Publishes `state` as the next epoch and returns that epoch.
    ///
    /// This is the linearisation point of an update batch: after
    /// `publish` returns, every reader that calls `latest` observes this
    /// epoch (or a later one), fully constructed.
    pub fn publish(&mut self, state: T) -> u64 {
        let epoch = self.tail.snapshot.epoch + 1;
        let node = Arc::new(Node {
            snapshot: Arc::new(Snapshot { epoch, state }),
            next: OnceLock::new(),
        });
        // `set` can only fail if the link was already taken, which would
        // require a second publisher — impossible: `Publisher` is not
        // `Clone` and `publish` takes `&mut self`.
        let published = self.tail.next.set(Arc::clone(&node)).is_ok();
        debug_assert!(published, "single-writer invariant violated");
        self.tail = node;
        epoch
    }

    /// The most recently published epoch.
    pub fn epoch(&self) -> u64 {
        self.tail.snapshot.epoch
    }

    /// A snapshot of the most recently published state.
    pub fn current(&self) -> Arc<Snapshot<T>> {
        Arc::clone(&self.tail.snapshot)
    }
}

impl<T> Reader<T> {
    /// Advances to, and returns, the newest published snapshot.
    ///
    /// Lock-free: a finite chase of `OnceLock::get` loads — at most one
    /// hop per epoch published since this reader last looked.
    pub fn latest(&mut self) -> Arc<Snapshot<T>> {
        while let Some(next) = self.cursor.next.get() {
            self.cursor = Arc::clone(next);
        }
        Arc::clone(&self.cursor.snapshot)
    }

    /// The snapshot at the reader's current cursor, without advancing.
    pub fn current(&self) -> Arc<Snapshot<T>> {
        Arc::clone(&self.cursor.snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn epochs_are_dense_and_monotone() {
        let (mut publisher, mut reader) = Publisher::new("genesis");
        assert_eq!(reader.latest().epoch, 0);
        assert_eq!(reader.latest().state, "genesis");
        assert_eq!(publisher.publish("one"), 1);
        assert_eq!(publisher.publish("two"), 2);
        assert_eq!(publisher.epoch(), 2);
        let snap = reader.latest();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.state, "two");
        // A stale clone still sees its own epoch until it looks again.
        let stale = reader.clone();
        assert_eq!(publisher.publish("three"), 3);
        assert_eq!(stale.current().epoch, 2);
        assert_eq!(stale.clone().latest().epoch, 3);
    }

    #[test]
    fn every_reader_sees_a_consistent_snapshot_under_concurrency() {
        // The writer publishes vectors whose entries all equal the
        // epoch; readers assert they never observe a mixed state.
        let (mut publisher, reader) = Publisher::new(vec![0u64; 64]);
        let rounds = 200u64;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut r = reader.clone();
                thread::spawn(move || {
                    let mut max_seen = 0;
                    loop {
                        let snap = r.latest();
                        assert!(
                            snap.state.iter().all(|&v| v == snap.epoch),
                            "torn snapshot at epoch {}",
                            snap.epoch
                        );
                        assert!(snap.epoch >= max_seen, "epoch went backwards");
                        max_seen = snap.epoch;
                        if snap.epoch == rounds {
                            return max_seen;
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for epoch in 1..=rounds {
            publisher.publish(vec![epoch; 64]);
        }
        for h in handles {
            assert_eq!(h.join().expect("reader panicked"), rounds);
        }
    }

    #[test]
    fn old_nodes_are_reclaimed_once_readers_advance() {
        let (mut publisher, mut reader) = Publisher::new(Arc::new(0u64));
        let first = reader.latest();
        let probe = Arc::downgrade(&first.state);
        drop(first);
        publisher.publish(Arc::new(1));
        publisher.publish(Arc::new(2));
        assert!(probe.upgrade().is_some(), "reader still pins epoch 0");
        reader.latest();
        assert!(
            probe.upgrade().is_none(),
            "epoch 0 must be freed once nothing references it"
        );
    }
}
