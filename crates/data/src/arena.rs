//! `PositionArena` — all objects' positions flattened into one
//! structure-of-arrays store with per-block bounding rectangles.
//!
//! The paper stores each object's positions as its own `A_1D` array
//! ([`MovingObject::positions`]); that is faithful to Algorithm 1 but
//! costs one heap allocation per object and a pointer chase per
//! object–candidate validation. The arena keeps the same information in
//! three contiguous parallel arrays:
//!
//! * `xs` / `ys` — every position of every object, object by object, in
//!   storage order (so a per-object slice is exactly the object's `A_1D`
//!   with the coordinates split out), and
//! * `block_mbrs` — positions are grouped into fixed-size *blocks* of
//!   [`BLOCK_SIZE`] consecutive positions (blocks never span two
//!   objects), each carrying the precomputed MBR of its positions.
//!
//! The block MBRs are what makes the layout more than a cache
//! optimisation: the paper's own pruning argument (Theorems 1–2 bound an
//! object's influence through `minDist`/`maxDist` to the object MBR)
//! applies *within* an object to every block, so an evaluation kernel
//! can bound a block's contribution to the non-influence product from
//! two distances instead of evaluating [`BLOCK_SIZE`] positions — see
//! `pinocchio_prob`'s blocked evaluator and DESIGN.md §10.

use crate::object::MovingObject;
use pinocchio_geo::Mbr;

/// Number of consecutive positions per block.
///
/// Chosen so a block's two coordinate rows (16 × 2 × 8 bytes) fill four
/// cache lines and the per-block bound (two distances, two `PF` calls,
/// two `ln_1p`) amortises to well under one position evaluation.
pub const BLOCK_SIZE: usize = 16;

/// Per-object directory entry: where the object's positions and blocks
/// live inside the arena's flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    /// First position index in `xs`/`ys`.
    start: usize,
    /// Number of positions.
    len: usize,
    /// First block index in `block_mbrs`.
    block_start: usize,
    /// Number of blocks (`len.div_ceil(BLOCK_SIZE)`).
    block_len: usize,
}

/// Structure-of-arrays position store over a fixed object set.
///
/// Built once per problem instance; all solvers share it read-only
/// (every field is plain data, so the arena is `Sync` and worker threads
/// borrow it directly).
#[derive(Debug, Clone)]
pub struct PositionArena {
    xs: Vec<f64>,
    ys: Vec<f64>,
    block_mbrs: Vec<Mbr>,
    /// One whole-trajectory MBR per object (`MBR(O)`, §3.1): the paper's
    /// Theorems 1–2 bound an object's influence from two distances to
    /// this rectangle, so kernels can decide most far/near pairs in O(1)
    /// before touching any block.
    object_mbrs: Vec<Mbr>,
    spans: Vec<Span>,
}

impl PositionArena {
    /// Flattens `objects` into the arena layout.
    ///
    /// Object order and per-object position order are preserved exactly,
    /// so index `i` here corresponds to `objects[i]` and the per-object
    /// coordinate slices replay `objects[i].positions()` verbatim.
    pub fn from_objects(objects: &[MovingObject]) -> Self {
        let total: usize = objects.iter().map(MovingObject::position_count).sum();
        let mut xs = Vec::with_capacity(total);
        let mut ys = Vec::with_capacity(total);
        let mut block_mbrs = Vec::with_capacity(total.div_ceil(BLOCK_SIZE) + objects.len());
        let mut object_mbrs = Vec::with_capacity(objects.len());
        let mut spans = Vec::with_capacity(objects.len());
        for object in objects {
            let positions = object.positions();
            let start = xs.len();
            let block_start = block_mbrs.len();
            for p in positions {
                xs.push(p.x);
                ys.push(p.y);
            }
            for chunk in positions.chunks(BLOCK_SIZE) {
                // pinocchio-lint note: chunks of a non-empty slice are
                // non-empty, so the MBR always exists.
                if let Some(mbr) = Mbr::from_points(chunk) {
                    block_mbrs.push(mbr);
                }
            }
            object_mbrs.push(object.mbr());
            spans.push(Span {
                start,
                len: positions.len(),
                block_start,
                block_len: block_mbrs.len() - block_start,
            });
        }
        PositionArena {
            xs,
            ys,
            block_mbrs,
            object_mbrs,
            spans,
        }
    }

    /// Number of objects in the arena.
    #[inline]
    pub fn object_count(&self) -> usize {
        self.spans.len()
    }

    /// Total number of positions across all objects.
    #[inline]
    pub fn total_positions(&self) -> usize {
        self.xs.len()
    }

    /// Total number of blocks across all objects.
    #[inline]
    pub fn total_blocks(&self) -> usize {
        self.block_mbrs.len()
    }

    /// Number of positions of object `i`.
    #[inline]
    pub fn position_count(&self, i: usize) -> usize {
        self.spans[i].len
    }

    /// The x coordinates of object `i`'s positions, in storage order.
    #[inline]
    pub fn object_xs(&self, i: usize) -> &[f64] {
        let s = self.spans[i];
        &self.xs[s.start..s.start + s.len]
    }

    /// The y coordinates of object `i`'s positions, in storage order.
    #[inline]
    pub fn object_ys(&self, i: usize) -> &[f64] {
        let s = self.spans[i];
        &self.ys[s.start..s.start + s.len]
    }

    /// The block MBRs of object `i`: block `b` covers its positions
    /// `b * BLOCK_SIZE .. ((b + 1) * BLOCK_SIZE).min(len)`.
    #[inline]
    pub fn object_block_mbrs(&self, i: usize) -> &[Mbr] {
        let s = self.spans[i];
        &self.block_mbrs[s.block_start..s.block_start + s.block_len]
    }

    /// The whole-trajectory MBR of object `i` (`MBR(O)`, §3.1).
    #[inline]
    pub fn object_mbr(&self, i: usize) -> &Mbr {
        &self.object_mbrs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_geo::Point;

    fn objects() -> Vec<MovingObject> {
        vec![
            MovingObject::new(0, (0..5).map(|i| Point::new(i as f64, 1.0)).collect()),
            MovingObject::new(1, vec![Point::new(-3.0, -4.0)]),
            MovingObject::new(
                2,
                (0..40).map(|i| Point::new(i as f64, -(i as f64))).collect(),
            ),
        ]
    }

    #[test]
    fn layout_matches_objects_exactly() {
        let objs = objects();
        let arena = PositionArena::from_objects(&objs);
        assert_eq!(arena.object_count(), 3);
        assert_eq!(arena.total_positions(), 46);
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(arena.position_count(i), o.position_count());
            let xs = arena.object_xs(i);
            let ys = arena.object_ys(i);
            for (k, p) in o.positions().iter().enumerate() {
                assert_eq!(xs[k].to_bits(), p.x.to_bits(), "object {i} position {k}");
                assert_eq!(ys[k].to_bits(), p.y.to_bits(), "object {i} position {k}");
            }
        }
    }

    #[test]
    fn blocks_never_span_objects() {
        let arena = PositionArena::from_objects(&objects());
        // 5 → 1 block, 1 → 1 block, 40 → 3 blocks.
        assert_eq!(arena.object_block_mbrs(0).len(), 1);
        assert_eq!(arena.object_block_mbrs(1).len(), 1);
        assert_eq!(arena.object_block_mbrs(2).len(), 3);
        assert_eq!(arena.total_blocks(), 5);
    }

    #[test]
    fn block_mbrs_are_tight() {
        let objs = objects();
        let arena = PositionArena::from_objects(&objs);
        for (i, o) in objs.iter().enumerate() {
            for (b, mbr) in arena.object_block_mbrs(i).iter().enumerate() {
                let lo = b * BLOCK_SIZE;
                let hi = ((b + 1) * BLOCK_SIZE).min(o.position_count());
                let expect = Mbr::from_points(&o.positions()[lo..hi]).unwrap();
                assert_eq!(*mbr, expect, "object {i} block {b}");
                for p in &o.positions()[lo..hi] {
                    assert!(mbr.contains_point(p));
                }
            }
        }
    }

    #[test]
    fn object_mbrs_match_objects() {
        let objs = objects();
        let arena = PositionArena::from_objects(&objs);
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(*arena.object_mbr(i), o.mbr(), "object {i}");
            // The object MBR is exactly the union of its block MBRs.
            let union = arena
                .object_block_mbrs(i)
                .iter()
                .copied()
                .reduce(|a, b| a.union(&b))
                .unwrap();
            assert_eq!(*arena.object_mbr(i), union, "object {i}");
        }
    }

    #[test]
    fn exact_multiple_of_block_size() {
        let o = vec![MovingObject::new(
            0,
            (0..BLOCK_SIZE as u64 * 2)
                .map(|i| Point::new(i as f64, 0.0))
                .collect(),
        )];
        let arena = PositionArena::from_objects(&o);
        assert_eq!(arena.object_block_mbrs(0).len(), 2);
    }

    #[test]
    fn empty_object_set_is_fine() {
        let arena = PositionArena::from_objects(&[]);
        assert_eq!(arena.object_count(), 0);
        assert_eq!(arena.total_positions(), 0);
        assert_eq!(arena.total_blocks(), 0);
    }
}
