//! Fig. 13 — the relationship between `n` and `τ`.
//!
//! Construction (paper §6.2): using the Fig. 11b resampled instance sets
//! with n ∈ {10, 20, 30, 40, 50} positions, fix the reference maximum
//! influence as the n = 20, τ = 0.7 solve; for every other n, tune τ
//! until the maximum influence matches the reference. The resulting
//! ⟨n, τ⟩ pairs form a level curve:
//!
//! (a) the tuned runs should cost about the same as the original run
//!     (time error < 3 % of NA in the paper), and the optimal locations
//!     should nearly coincide;
//! (b) a polynomial fit of the level curve (Matlab polyfit in the paper)
//!     predicts the τ for intermediate n ∈ {15, 25, 35, 45} with small
//!     influence error.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::{resample_positions, sample_candidate_group};
use pinocchio_eval::{tune_tau, Polynomial, Table};
use pinocchio_geo::Point;
use pinocchio_prob::PowerLawPf;

fn main() {
    let d = dataset(DatasetKind::Gowalla);
    let (_, candidates) =
        sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 13);
    let heavy: Vec<_> = d
        .objects()
        .iter()
        .filter(|o| o.position_count() >= 50)
        .cloned()
        .collect();
    println!(
        "level curve over {} objects with ≥ 50 positions\n",
        heavy.len()
    );

    let instance = |n: usize| {
        let objects = resample_positions(&heavy, n, 900 + n as u64);
        d.with_objects(objects)
    };

    // Reference: n = 20, τ = 0.7.
    let reference_problem = problem(
        &instance(20),
        candidates.clone(),
        PowerLawPf::paper_default(),
        0.7,
    );
    let reference = reference_problem.solve(Algorithm::PinocchioVo);
    println!(
        "reference: n = 20, tau = 0.70 -> max influence {}\n",
        reference.max_influence
    );

    // Tune τ for each n to hit the reference influence.
    let mut table = Table::new(
        "Fig. 13a: tuned <n, tau> level curve",
        &["n", "tau", "max inf", "PIN-VO", "best location"],
    );
    let (mut ns, mut taus) = (Vec::new(), Vec::new());
    let mut optima: Vec<Point> = Vec::new();
    let mut rec = Vec::new();
    for n in [10usize, 20, 30, 40, 50] {
        let sub = instance(n);
        let (tau, influence) = if n == 20 {
            (0.7, reference.max_influence)
        } else {
            tune_tau(
                |tau| {
                    problem(&sub, candidates.clone(), PowerLawPf::paper_default(), tau)
                        .solve(Algorithm::PinocchioVo)
                        .max_influence
                },
                reference.max_influence,
                0.01,
                0.99,
                24,
            )
        };
        let p = problem(&sub, candidates.clone(), PowerLawPf::paper_default(), tau);
        let (r, secs) = timed_solve(&p, Algorithm::PinocchioVo);
        table.push_row(vec![
            n.to_string(),
            format!("{tau:.3}"),
            influence.to_string(),
            fmt_secs(secs),
            r.best_location.to_string(),
        ]);
        ns.push(n as f64);
        taus.push(tau);
        optima.push(r.best_location);
        rec.push(serde_json::json!({
            "n": n, "tau": tau, "max_influence": influence, "vo_secs": secs,
        }));
    }
    println!("{table}");

    let (mut sum, mut max, mut cnt) = (0.0f64, 0.0f64, 0);
    for i in 0..optima.len() {
        for j in (i + 1)..optima.len() {
            let dist = optima[i].euclidean(&optima[j]);
            sum += dist;
            max = max.max(dist);
            cnt += 1;
        }
    }
    println!(
        "optimal locations along the curve: avg pairwise distance {:.2} km, max {:.2} km\n",
        sum / cnt as f64,
        max
    );

    // (b) polynomial fit of τ(n), validated on intermediate n.
    let poly = Polynomial::fit(&ns, &taus, 2);
    println!("Fig. 13b: quadratic fit tau(n) = {poly}");
    let mut fit_table = Table::new(
        "fit validation at intermediate n",
        &[
            "n",
            "predicted tau",
            "max inf at predicted tau",
            "influence error %",
        ],
    );
    let mut rec_fit = Vec::new();
    for n in [15usize, 25, 35, 45] {
        let predicted = poly.eval(n as f64).clamp(0.01, 0.99);
        let sub = instance(n);
        let inf = problem(
            &sub,
            candidates.clone(),
            PowerLawPf::paper_default(),
            predicted,
        )
        .solve(Algorithm::PinocchioVo)
        .max_influence;
        let err = (inf as f64 - reference.max_influence as f64).abs()
            / reference.max_influence.max(1) as f64
            * 100.0;
        fit_table.push_row(vec![
            n.to_string(),
            format!("{predicted:.3}"),
            inf.to_string(),
            format!("{err:.1}"),
        ]);
        rec_fit.push(serde_json::json!({
            "n": n, "predicted_tau": predicted, "max_influence": inf, "error_pct": err,
        }));
    }
    println!("{fit_table}");

    write_record(
        "fig13_level_curve",
        &serde_json::json!({
            "reference_influence": reference.max_influence,
            "level_curve": rec,
            "optima_distance_km": { "avg": sum / cnt as f64, "max": max },
            "fit_coefficients": poly.coefficients(),
            "fit_validation": rec_fit,
        }),
    );
}
