//! The structured diagnostic model shared by every rule.

use serde_json::{json, Value};
use std::fmt;

/// How a diagnostic affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported but does not fail the run.
    Warn,
    /// Fails the run (exit code 1).
    Deny,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding: rule id, severity, location, message and an optional
/// suggested fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `panic-path`). One of [`RULES`] or
    /// the meta-rule `suppression-hygiene`.
    pub rule: &'static str,
    /// Whether this finding fails the run.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the rule has a concrete recommendation.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a deny-severity diagnostic.
    pub fn deny(rule: &'static str, file: &str, line: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: file.to_string(),
            line,
            message,
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// The diagnostic as a JSON object (for `--format json`).
    pub fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("rule".to_string(), json!(self.rule));
        map.insert("severity".to_string(), json!(self.severity.label()));
        map.insert("file".to_string(), json!(self.file.as_str()));
        map.insert("line".to_string(), json!(self.line as u64));
        map.insert("message".to_string(), json!(self.message.as_str()));
        map.insert(
            "suggestion".to_string(),
            match &self.suggestion {
                Some(s) => json!(s.as_str()),
                None => Value::Null,
            },
        );
        Value::Object(map)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity.label(),
            self.rule,
            self.file,
            self.line,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// The five substantive rule ids, in documentation order. The engine
/// additionally emits `suppression-hygiene` for malformed suppressions.
pub const RULES: [&str; 5] = [
    "panic-path",
    "float-soundness",
    "atomic-ordering",
    "crate-hygiene",
    "stats-accounting",
];

/// The meta-rule id for malformed `pinocchio-lint` suppressions.
pub const SUPPRESSION_RULE: &str = "suppression-hygiene";

/// Whether `name` is a known rule id (including the meta-rule).
pub fn is_known_rule(name: &str) -> bool {
    name == SUPPRESSION_RULE || RULES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_location_and_suggestion() {
        let d = Diagnostic::deny("panic-path", "crates/core/src/vo.rs", 12, "no".to_string())
            .with_suggestion("yes");
        let text = d.to_string();
        assert!(text.contains("[panic-path]"));
        assert!(text.contains("crates/core/src/vo.rs:12"));
        assert!(text.contains("help: yes"));
    }

    #[test]
    fn json_shape() {
        let d = Diagnostic::deny("atomic-ordering", "a.rs", 3, "msg".to_string());
        let v = d.to_json();
        assert_eq!(
            v.get("rule").and_then(Value::as_str),
            Some("atomic-ordering")
        );
        assert_eq!(v.get("line").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("suggestion"), Some(&Value::Null));
    }

    #[test]
    fn rule_registry() {
        assert!(is_known_rule("float-soundness"));
        assert!(is_known_rule(SUPPRESSION_RULE));
        assert!(!is_known_rule("made-up"));
    }
}
