//! Fig. 12 — effect of the probability threshold τ.
//!
//! Running time (NA vs PIN-VO) and maximum influence for
//! τ ∈ {0.1, 0.3, 0.5, 0.7, 0.9} on both datasets.
//!
//! Expected shape (paper): PIN-VO's time falls then rises as τ grows
//! (very small τ leaves many near-tied candidates for Strategy 1; large
//! τ weakens Strategy 2); the maximum influence decreases monotonically.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_prob::PowerLawPf;

fn main() {
    let mut record = serde_json::Map::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        let (_, candidates) =
            sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 12);
        let mut table = Table::new(
            format!("Fig. 12 ({}): effect of tau", kind.letter()),
            &["tau", "NA", "PIN-VO", "speedup", "max inf", "inf %"],
        );
        let mut per_kind = Vec::new();
        let total = d.objects().len() as f64;
        for &tau in &defaults::TAU_SWEEP {
            let p = problem(&d, candidates.clone(), PowerLawPf::paper_default(), tau);
            let (na, na_secs) = timed_solve(&p, Algorithm::Naive);
            let (vo, vo_secs) = timed_solve(&p, Algorithm::PinocchioVo);
            assert_eq!(
                na.max_influence, vo.max_influence,
                "solvers disagree at tau={tau}"
            );
            table.push_row(vec![
                format!("{tau:.1}"),
                fmt_secs(na_secs),
                fmt_secs(vo_secs),
                format!("{:.1}x", na_secs / vo_secs.max(1e-9)),
                vo.max_influence.to_string(),
                format!("{:.1}", vo.max_influence as f64 / total * 100.0),
            ]);
            per_kind.push(serde_json::json!({
                "tau": tau, "na_secs": na_secs, "vo_secs": vo_secs,
                "max_influence": vo.max_influence,
            }));
        }
        println!("{table}");
        record.insert(kind.letter().to_string(), serde_json::json!(per_kind));
    }
    write_record("fig12_effect_tau", &serde_json::Value::Object(record));
}
