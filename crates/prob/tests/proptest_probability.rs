//! Property-based tests of the probability substrate.

use pinocchio_geo::{Euclidean, Point};
use pinocchio_prob::{
    min_max_radius, required_single_position_probability, ConcavePf, ConvexPf,
    CumulativeProbability, LinearPf, LogsigPf, PowerLawPf, ProbabilityFunction,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-30.0f64..30.0, -30.0f64..30.0).prop_map(|(x, y)| Point::new(x, y))
}

/// One of the five PF families with random (valid) parameters.
fn arb_pf() -> impl Strategy<Value = Box<dyn ProbabilityFunction>> {
    let rho = 0.1f64..1.0;
    let scale = 1.0f64..30.0;
    prop_oneof![
        (rho.clone(), 0.3f64..2.0)
            .prop_map(|(r, l)| Box::new(PowerLawPf::new(r, 1.0, l)) as Box<dyn ProbabilityFunction>),
        (rho.clone(), scale.clone())
            .prop_map(|(r, s)| Box::new(LogsigPf::new(r, s)) as Box<dyn ProbabilityFunction>),
        (rho.clone(), scale.clone())
            .prop_map(|(r, s)| Box::new(ConvexPf::new(r, s)) as Box<dyn ProbabilityFunction>),
        (rho.clone(), scale.clone())
            .prop_map(|(r, s)| Box::new(ConcavePf::new(r, s)) as Box<dyn ProbabilityFunction>),
        (rho, scale)
            .prop_map(|(r, s)| Box::new(LinearPf::new(r, s)) as Box<dyn ProbabilityFunction>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every PF family is monotone non-increasing and bounded in [0, 1].
    #[test]
    fn pf_families_are_monotone_and_bounded(pf in arb_pf(), d1 in 0.0f64..50.0, d2 in 0.0f64..50.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (p_lo, p_hi) = (pf.prob(lo), pf.prob(hi));
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo >= p_hi - 1e-12, "{}: PF({lo}) = {p_lo} < PF({hi}) = {p_hi}", pf.name());
    }

    /// inverse() inverts prob() wherever the probability is attainable.
    #[test]
    fn pf_inverse_round_trips(pf in arb_pf(), d in 0.0f64..40.0) {
        let p = pf.prob(d);
        if p > 1e-12 {
            let d2 = pf.inverse(p).expect("attainable probability");
            prop_assert!(
                (pf.prob(d2) - p).abs() < 1e-9,
                "{}: PF(inverse({p})) = {} != {p}",
                pf.name(),
                pf.prob(d2)
            );
        }
    }

    /// Theorem 1's sandwich: with distances sorted, the cumulative
    /// probability lies between the all-farthest and all-nearest bounds.
    #[test]
    fn cumulative_probability_sandwich(
        positions in prop::collection::vec(arb_point(), 1..25),
        candidate in arb_point(),
    ) {
        let pf = PowerLawPf::paper_default();
        let eval = CumulativeProbability::new(pf, Euclidean);
        let pr = eval.cumulative(&candidate, &positions);
        let n = positions.len() as i32;
        let dists: Vec<f64> = positions.iter().map(|p| p.euclidean(&candidate)).collect();
        let p_near = pf.prob(dists.iter().copied().fold(f64::INFINITY, f64::min));
        let p_far = pf.prob(dists.iter().copied().fold(0.0, f64::max));
        let upper = 1.0 - (1.0 - p_near).powi(n);
        let lower = 1.0 - (1.0 - p_far).powi(n);
        prop_assert!(pr <= upper + 1e-12);
        prop_assert!(pr >= lower - 1e-12);
    }

    /// The required per-position probability and minMaxRadius are
    /// consistent: n positions exactly at the radius reach exactly τ.
    #[test]
    fn radius_consistency(tau in 0.05f64..0.9, n in 1usize..200) {
        let pf = PowerLawPf::paper_default();
        let q = required_single_position_probability(tau, n);
        prop_assert!((0.0..1.0).contains(&q));
        if let Some(mu) = min_max_radius(&pf, tau, n) {
            let cumulative = 1.0 - (1.0 - pf.prob(mu)).powi(n as i32);
            prop_assert!((cumulative - tau).abs() < 1e-6, "Pr = {cumulative} at radius {mu}");
        } else {
            // Unattainable: even at distance zero the bound fails.
            prop_assert!(pf.prob(0.0) < q);
        }
    }

    /// Order independence: cumulative probability is invariant under
    /// position permutation (it is a product).
    #[test]
    fn cumulative_is_order_free(
        positions in prop::collection::vec(arb_point(), 2..20),
        candidate in arb_point(),
        rotate_by in 0usize..19,
    ) {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let a = eval.cumulative(&candidate, &positions);
        let mut rotated = positions.clone();
        rotated.rotate_left(rotate_by % positions.len());
        let b = eval.cumulative(&candidate, &rotated);
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// Early stopping under every PF family: same verdict as exhaustive.
    #[test]
    fn early_stop_across_families(
        pf in arb_pf(),
        positions in prop::collection::vec(arb_point(), 1..25),
        candidate in arb_point(),
        tau in 0.05f64..0.95,
    ) {
        #[derive(Debug)]
        struct Wrap<'a>(&'a dyn ProbabilityFunction);
        impl ProbabilityFunction for Wrap<'_> {
            fn prob(&self, d: f64) -> f64 { self.0.prob(d) }
            fn inverse(&self, p: f64) -> Option<f64> { self.0.inverse(p) }
            fn name(&self) -> &'static str { "wrap" }
        }
        let eval = CumulativeProbability::new(Wrap(pf.as_ref()), Euclidean);
        let exact = eval.influences(&candidate, &positions, tau);
        let es = eval.influences_early_stop(&candidate, &positions, tau);
        prop_assert_eq!(es.influenced, exact);
    }
}
