//! The five lint rules.
//!
//! Every rule is a pure function from a [`SourceFile`] to diagnostics;
//! suppression filtering happens in the engine. Scoping conventions:
//!
//! * `panic-path` and `float-soundness` skip `#[cfg(test)]` regions —
//!   tests may unwrap and compare floats exactly.
//! * `atomic-ordering` covers tests too: a mis-ordered atomic in a test
//!   can mask the very race the test exists to catch.
//! * `crate-hygiene` applies to library crate roots (`src/lib.rs`);
//!   binary roots are exempt.
//! * `stats-accounting` applies to files that define a top-level entry
//!   point into an instrumented subsystem: a column-0 `pub fn solve…`
//!   in `crates/core` must account into `SolveStats`, and a column-0
//!   `pub fn serve…` in `crates/serve` must account into `ServeStats`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Crates whose library code must stay panic-free.
const PANIC_FREE_CRATES: [&str; 4] = ["core", "prob", "geo", "index"];

/// The crate a repo-relative path belongs to (`crates/<name>/…`), or
/// `None` for the facade `src/` tree.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether this path is a library crate root.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Runs every rule against one file.
pub fn check_file(file: &SourceFile, rules: &[&'static str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            "panic-path" => panic_path(file, &mut out),
            "float-soundness" => float_soundness(file, &mut out),
            "atomic-ordering" => atomic_ordering(file, &mut out),
            "crate-hygiene" => crate_hygiene(file, &mut out),
            "stats-accounting" => stats_accounting(file, &mut out),
            _ => {}
        }
    }
    out
}

// ---- panic-path --------------------------------------------------------

/// Panicking constructs that have no place in library hot paths.
const PANIC_TOKENS: [(&str, &str); 6] = [
    (".unwrap()", "return a typed error (e.g. `SolveError`), use `unwrap_or`/`ok_or`, or justify the invariant with a suppression"),
    (".expect(", "return a typed error (e.g. `SolveError`) or justify the invariant with a suppression"),
    ("panic!(", "convert to a `Result` or justify with a suppression"),
    ("unreachable!(", "prove the arm impossible via types, or justify with a suppression"),
    ("todo!(", "finish the implementation before it ships"),
    ("unimplemented!(", "finish the implementation before it ships"),
];

fn panic_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(krate) = crate_of(&file.path) else {
        return;
    };
    if !PANIC_FREE_CRATES.contains(&krate) || !file.path.contains("/src/") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, suggestion) in PANIC_TOKENS {
            if line.code.contains(token) {
                let name = token.trim_matches(|c| c == '.' || c == '(' || c == ')');
                out.push(
                    Diagnostic::deny(
                        "panic-path",
                        &file.path,
                        idx + 1,
                        format!("`{name}` in non-test library code of `{krate}`"),
                    )
                    .with_suggestion(suggestion),
                );
            }
        }
        for col in arithmetic_subscripts(&line.code) {
            out.push(
                Diagnostic::deny(
                    "panic-path",
                    &file.path,
                    idx + 1,
                    format!(
                        "arithmetic in index subscript (column {col}) can panic on under/overflow"
                    ),
                )
                .with_suggestion("use `.get(…)` with a typed error, or a checked offset"),
            );
        }
    }
}

/// Byte columns (1-based) of `expr[… + …]`-style subscripts — indexing
/// whose subscript contains `+` or `-`, the classic off-by-one panic.
/// Plain loop-variable subscripts (`inf[j]`) are deliberately allowed:
/// they are bounds-checked by construction throughout this workspace,
/// and flagging them would bury the signal.
fn arithmetic_subscripts(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Subscript only when `[` follows a value: identifier, `)`, `]`.
        let Some(&prev) = bytes[..i].last() else {
            continue;
        };
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
            continue;
        }
        // Find the matching `]` on this line.
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue;
        }
        let body = &code[i + 1..j - 1];
        // `;` means an array-repeat expression `[0u32; m]`, not indexing.
        if body.contains(';') {
            continue;
        }
        if body.contains('+') || body.contains('-') {
            cols.push(i + 1);
        }
    }
    cols
}

// ---- float-soundness ---------------------------------------------------

fn float_soundness(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.path.contains("/tests/") || file.path.contains("/benches/") {
        return; // integration tests and benches are test code wholesale
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if code.contains("f64::NAN") || code.contains("f32::NAN") {
            out.push(
                Diagnostic::deny(
                    "float-soundness",
                    &file.path,
                    idx + 1,
                    "NaN literal in non-test code".to_string(),
                )
                .with_suggestion("model the absent value with `Option<f64>` instead of NaN"),
            );
        }
        // rustfmt splits method chains, so the panicking adapter may sit
        // on the line after `partial_cmp`.
        let chain_next = file
            .lines
            .get(idx + 1)
            .map(|l| l.code.trim_start().starts_with('.'))
            .unwrap_or(false);
        let panics_here = code.contains(".unwrap()") || code.contains(".expect(");
        let panics_next = chain_next
            && file
                .lines
                .get(idx + 1)
                .map(|l| l.code.contains(".unwrap()") || l.code.contains(".expect("))
                .unwrap_or(false);
        if code.contains("partial_cmp") && (panics_here || panics_next) {
            out.push(
                Diagnostic::deny(
                    "float-soundness",
                    &file.path,
                    idx + 1,
                    "`partial_cmp(..).unwrap()` panics on NaN".to_string(),
                )
                .with_suggestion(
                    "use `f64::total_cmp`, or the repo's `argmax_smallest_index` helper for argmax",
                ),
            );
        }
        for col in float_eq_columns(code) {
            out.push(
                Diagnostic::deny(
                    "float-soundness",
                    &file.path,
                    idx + 1,
                    format!("`==`/`!=` against a float literal (column {col})"),
                )
                .with_suggestion(
                    "compare with an epsilon, `total_cmp`, or restructure to avoid exact equality",
                ),
            );
        }
    }
}

/// Byte columns of `==` / `!=` operators whose adjacent operand contains
/// a float literal. Token-level only: `a.x == b.x` with float fields is
/// invisible here (clippy's `float_cmp` covers that case in CI).
fn float_eq_columns(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut cols = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==" && bytes.get(i + 2) != Some(&b'=');
        let is_ne = two == b"!=";
        if (is_eq || is_ne)
            && (i == 0 || !matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!' | b'+' | b'-'))
        {
            let left = operand_before(code, i);
            let right = operand_after(code, i + 2);
            if has_float_literal(left) || has_float_literal(right) {
                cols.push(i + 1);
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    cols
}

fn operand_before(code: &str, op: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = op;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'(' | b')' | b' ') {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..op].trim()
}

fn operand_after(code: &str, from: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = from;
    while end < bytes.len() {
        let b = bytes[end];
        if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'(' | b')' | b' ' | b'-') {
            end += 1;
        } else {
            break;
        }
    }
    code[from..end].trim()
}

/// Whether `s` contains a float literal: a digit, then `.`, then a digit
/// or a non-alphanumeric (so `2.0` and `1.` match but `x2.abs()` does
/// not).
fn has_float_literal(s: &str) -> bool {
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'.' || i == 0 {
            continue;
        }
        if !bytes[i - 1].is_ascii_digit() {
            continue;
        }
        match bytes.get(i + 1) {
            None => return true,
            Some(&n) if n.is_ascii_digit() => return true,
            Some(&n) if !n.is_ascii_alphanumeric() && n != b'_' => return true,
            _ => {}
        }
    }
    s.contains("_f64") || s.contains("_f32")
}

// ---- atomic-ordering ---------------------------------------------------

/// Atomic memory-ordering variants (`std::sync::atomic::Ordering`).
/// `cmp::Ordering`'s variants (`Less`/`Equal`/`Greater`) never collide.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn atomic_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for variant in ATOMIC_ORDERINGS {
            let token = format!("Ordering::{variant}");
            if !line.code.contains(&token) {
                continue;
            }
            // `use std::sync::atomic::Ordering;` style imports are not
            // uses — but `Ordering::X` inside a `use` never appears as a
            // call argument, and an import of a *variant* is worth the
            // same scrutiny as a use, so no exemption.
            if variant == "Relaxed" {
                out.push(
                    Diagnostic::deny(
                        "atomic-ordering",
                        &file.path,
                        idx + 1,
                        "`Ordering::Relaxed` is deny-by-default".to_string(),
                    )
                    .with_suggestion(
                        "use Acquire/Release with an `// ordering:` argument, or justify Relaxed \
                         with `// pinocchio-lint: allow(atomic-ordering) -- <why no ordering is needed>`",
                    ),
                );
                continue;
            }
            // Same-line comment, or anywhere in the contiguous block of
            // comment-only lines directly above (multi-line happens-before
            // arguments are the norm, not the exception).
            let mut documented = line.comment.contains("ordering:");
            let mut back = idx;
            while !documented && back > 0 {
                let prev = &file.lines[back - 1];
                if !prev.code.trim().is_empty() || prev.comment.trim().is_empty() {
                    break;
                }
                documented = prev.comment.contains("ordering:");
                back -= 1;
            }
            if !documented {
                out.push(
                    Diagnostic::deny(
                        "atomic-ordering",
                        &file.path,
                        idx + 1,
                        format!("`{token}` without an `// ordering:` justification comment"),
                    )
                    .with_suggestion(
                        "state the happens-before argument: `// ordering: <what this acquire/release pairs with>`",
                    ),
                );
            }
        }
    }
}

// ---- crate-hygiene -----------------------------------------------------

fn crate_hygiene(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_crate_root(&file.path) {
        return;
    }
    for (attr, why) in [
        (
            "#![forbid(unsafe_code)]",
            "the workspace is 100% safe Rust; forbid keeps it that way",
        ),
        (
            "#![deny(missing_docs)]",
            "public items must be documented; deny keeps the bar from slipping",
        ),
    ] {
        if !file.code_contains(attr) {
            out.push(
                Diagnostic::deny(
                    "crate-hygiene",
                    &file.path,
                    1,
                    format!("crate root is missing `{attr}`"),
                )
                .with_suggestion(why),
            );
        }
    }
}

// ---- stats-accounting --------------------------------------------------

/// Per-crate accounting contracts: a column-0 `pub fn <prefix>…` is an
/// entry point into an instrumented subsystem, and the file defining it
/// must reference the crate's counter block.
const ACCOUNTED_ENTRY_POINTS: [(&str, &str, &str, &str); 5] = [
    (
        "core",
        "pub fn solve",
        "SolveStats",
        "solver entry point in a file that never references `SolveStats`",
    ),
    (
        "core",
        "pub fn try_solve",
        "SolveStats",
        "fallible solver entry point in a file that never references `SolveStats`",
    ),
    (
        "serve",
        "pub fn serve",
        "ServeStats",
        "service entry point in a file that never references `ServeStats`",
    ),
    (
        "heatmap",
        "pub fn try_heatmap",
        "SolveStats",
        "fallible heat-map entry point in a file that never references `SolveStats`",
    ),
    (
        "heatmap",
        "pub fn try_top_region",
        "SolveStats",
        "fallible top-region entry point in a file that never references `SolveStats`",
    ),
];

fn stats_accounting(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.path.contains("/src/") {
        return;
    }
    // A crate can carry several contracts (e.g. `pub fn solve…` and the
    // fallible `pub fn try_solve…` coordinator entry points); apply every
    // one that matches the file's crate.
    for (_, prefix, stats_type, message) in ACCOUNTED_ENTRY_POINTS
        .iter()
        .filter(|(krate, ..)| crate_of(&file.path) == Some(krate))
    {
        if file.code_contains(stats_type) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            // A column-0 `pub fn solve…`/`pub fn serve…` is an entry point;
            // methods are indented and dispatch to these.
            if line.code.starts_with(prefix) {
                out.push(
                    Diagnostic::deny("stats-accounting", &file.path, idx + 1, message.to_string())
                        .with_suggestion(format!(
                            "account the work in `{stats_type}` (see the accounting tests) so \
                             cost experiments keep covering it",
                        )),
                );
                break; // one diagnostic per (file, contract) is enough
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(path: &str, text: &str, rule: &'static str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, text), &[rule])
    }

    #[test]
    fn panic_path_scoping() {
        let bad = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        assert_eq!(lint_as("crates/core/src/vo.rs", bad, "panic-path").len(), 1);
        // Other crates are out of scope.
        assert!(lint_as("crates/bench/src/lib.rs", bad, "panic-path").is_empty());
        // Test regions are out of scope.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_as("crates/core/src/vo.rs", test_only, "panic-path").is_empty());
    }

    #[test]
    fn arithmetic_subscript_detection() {
        assert_eq!(arithmetic_subscripts("let x = v[i + 1];").len(), 1);
        assert_eq!(arithmetic_subscripts("let x = v[i - 1];").len(), 1);
        assert!(arithmetic_subscripts("let x = v[i];").is_empty());
        assert!(arithmetic_subscripts("let x = vec![0u32; m];").is_empty());
        assert!(arithmetic_subscripts("#[derive(Debug)]").is_empty());
        assert!(arithmetic_subscripts("fn f(x: &[f64]) {}").is_empty());
    }

    #[test]
    fn float_literal_detection() {
        assert!(has_float_literal("0.0"));
        assert!(has_float_literal("weight == 1."));
        assert!(has_float_literal("3.5e2"));
        assert!(!has_float_literal("x2.abs()"));
        assert!(!has_float_literal("v[0]"));
        assert!(!has_float_literal("a.b.c"));
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        let hits = float_eq_columns("if weight == 0.0 {");
        assert_eq!(hits.len(), 1);
        assert!(float_eq_columns("if a == b {").is_empty());
        assert!(float_eq_columns("if n <= 0.5 {").is_empty());
        assert!(float_eq_columns("if x != 1.5 {").len() == 1);
    }

    #[test]
    fn atomic_ordering_requires_comment() {
        let undocumented = "let v = b.load(Ordering::Acquire);\n";
        let d = lint_as(
            "crates/core/src/parallel.rs",
            undocumented,
            "atomic-ordering",
        );
        assert_eq!(d.len(), 1);
        let documented =
            "// ordering: pairs with the fetch_max release below\nlet v = b.load(Ordering::Acquire);\n";
        assert!(lint_as("crates/core/src/parallel.rs", documented, "atomic-ordering").is_empty());
        let same_line = "let v = b.load(Ordering::Acquire); // ordering: pairs with fetch_max\n";
        assert!(lint_as("crates/core/src/parallel.rs", same_line, "atomic-ordering").is_empty());
    }

    #[test]
    fn relaxed_is_denied_even_with_comment() {
        let text = "// ordering: none needed\nlet v = c.fetch_add(1, Ordering::Relaxed);\n";
        let d = lint_as("crates/core/src/parallel.rs", text, "atomic-ordering");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Relaxed"));
    }

    #[test]
    fn crate_hygiene_checks_roots_only() {
        let bare = "pub fn f() {}\n";
        let d = lint_as("crates/geo/src/lib.rs", bare, "crate-hygiene");
        assert_eq!(d.len(), 2);
        assert!(lint_as("crates/geo/src/point.rs", bare, "crate-hygiene").is_empty());
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(lint_as("crates/geo/src/lib.rs", good, "crate-hygiene").is_empty());
        assert_eq!(lint_as("src/lib.rs", bare, "crate-hygiene").len(), 2);
    }

    #[test]
    fn stats_accounting_flags_solver_files_without_stats() {
        let bad = "pub fn solve_fast() -> u32 {\n    1\n}\n";
        assert_eq!(
            lint_as("crates/core/src/fast.rs", bad, "stats-accounting").len(),
            1
        );
        let good = "use crate::result::SolveStats;\npub fn solve_fast() -> SolveStats {\n    SolveStats::default()\n}\n";
        assert!(lint_as("crates/core/src/fast.rs", good, "stats-accounting").is_empty());
        // Methods (indented) do not count as entry points.
        let method = "impl X {\n    pub fn solve(&self) {}\n}\n";
        assert!(lint_as("crates/core/src/x.rs", method, "stats-accounting").is_empty());
        // Other crates are out of scope.
        assert!(lint_as("crates/eval/src/fast.rs", bad, "stats-accounting").is_empty());
    }

    #[test]
    fn stats_accounting_covers_fallible_shard_coordinators() {
        // `pub fn try_solve…` does not share the `pub fn solve` prefix, so
        // this only trips if every matching contract is applied, not just
        // the first one found for the crate.
        let bad = "pub fn try_solve_sharded() -> u32 {\n    1\n}\n";
        let d = lint_as("crates/core/src/shard.rs", bad, "stats-accounting");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fallible"));
        let good = "use crate::result::SolveStats;\npub fn try_solve_sharded() -> SolveStats {\n    SolveStats::default()\n}\n";
        assert!(lint_as("crates/core/src/shard.rs", good, "stats-accounting").is_empty());
        // A file violating both core contracts gets one diagnostic each.
        let both =
            "pub fn solve_all() -> u32 {\n    1\n}\npub fn try_solve_all() -> u32 {\n    2\n}\n";
        assert_eq!(
            lint_as("crates/core/src/shard.rs", both, "stats-accounting").len(),
            2
        );
    }

    #[test]
    fn stats_accounting_covers_the_serve_entry_point() {
        let bad = "pub fn serve_forever() -> u32 {\n    1\n}\n";
        let d = lint_as("crates/serve/src/entry.rs", bad, "stats-accounting");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ServeStats"));
        let good = "use crate::stats::ServeStats;\npub fn serve_forever() -> ServeStats {\n    ServeStats::default()\n}\n";
        assert!(lint_as("crates/serve/src/entry.rs", good, "stats-accounting").is_empty());
        // The serve contract wants ServeStats, not core's SolveStats.
        let wrong_block = "use crate::SolveStats;\npub fn serve_forever() {}\n";
        assert_eq!(
            lint_as("crates/serve/src/entry.rs", wrong_block, "stats-accounting").len(),
            1
        );
        // `pub fn solve…` in serve is not an entry point there.
        let solver = "pub fn solve_fast() -> u32 {\n    1\n}\n";
        assert!(lint_as("crates/serve/src/entry.rs", solver, "stats-accounting").is_empty());
    }
}
