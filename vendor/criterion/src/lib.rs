//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this vendored crate
//! provides the subset of the criterion 0.5 API the workspace's benches
//! use: `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `finish`, `Bencher::iter` and
//! `Bencher::iter_batched`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for (a bounded version of)
//! the configured warm-up time, then runs timed iterations until the
//! measurement time elapses, and reports the mean wall-clock time per
//! iteration plus the spread across sample batches. No plots, no
//! statistics beyond mean/min/max — enough to compare alternatives on
//! the same machine in the same run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; every batch size runs one setup per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled by `iter` / `iter_batched`: (iterations, total time).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        loop {
            black_box(routine(setup()));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
            if busy >= self.measurement || wall.elapsed() >= 4 * self.measurement {
                break;
            }
        }
        self.result = Some((iters, busy));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (sampling here is time-driven).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up budget (clamped to 1 s to keep runs quick).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d.min(Duration::from_secs(1));
        self
    }

    /// Sets the measurement budget (clamped to 5 s to keep runs quick).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(Duration::from_secs(5));
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, total)) => {
                let per_iter = total.as_secs_f64() / iters as f64;
                println!(
                    "{label:55} {:>12}  ({iters} iterations)",
                    fmt_time(per_iter)
                );
            }
            None => println!("{label:55} (no measurement — routine never called iter)"),
        }
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Formats seconds-per-iteration with a human unit.
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions (compatible subset of the
/// criterion macro: the plain `criterion_group!(name, fn, ...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_simple_loop() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.bench_function(BenchmarkId::new("batched", 3), |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
