//! Fixture: a heat-map entry point that ignores the counter block.
//!
//! Deliberately defines both column-0 entry points without referencing
//! `SolveStats` anywhere — a descent that counts nothing is invisible to
//! the cost experiments the accounting discipline feeds.

/// Rasterises an influence heat map without accounting the descent.
pub fn try_heatmap() -> Vec<u32> {
    Vec::new()
}

/// Finds top tiles without accounting the branch-and-bound work.
pub fn try_top_region() -> Vec<u32> {
    Vec::new()
}
