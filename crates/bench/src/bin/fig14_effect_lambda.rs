//! Fig. 14 — effect of the power-law exponent λ.
//!
//! PIN-VO running time and maximum influence for λ ∈ {0.75, 1.0, 1.25}
//! on both datasets (ρ = 0.9, τ = 0.7).
//!
//! Expected shape (paper): similar running times across λ; maximum
//! influence *drops* as λ grows (faster decay ⇒ lower cumulative
//! probabilities), falling more steeply on Gowalla, whose objects have
//! fewer positions.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_prob::PowerLawPf;

fn main() {
    let lambdas = [0.75, 1.0, 1.25];
    let mut record = serde_json::Map::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        let (_, candidates) =
            sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 14);
        let total = d.objects().len() as f64;
        let mut table = Table::new(
            format!("Fig. 14 ({}): effect of lambda", kind.letter()),
            &["lambda", "PIN-VO", "max inf", "inf %"],
        );
        let mut per_kind = Vec::new();
        for &lambda in &lambdas {
            let p = problem(
                &d,
                candidates.clone(),
                PowerLawPf::with_lambda(lambda),
                defaults::TAU,
            );
            let (r, secs) = timed_solve(&p, Algorithm::PinocchioVo);
            table.push_row(vec![
                format!("{lambda:.2}"),
                fmt_secs(secs),
                r.max_influence.to_string(),
                format!("{:.1}", r.max_influence as f64 / total * 100.0),
            ]);
            per_kind.push(serde_json::json!({
                "lambda": lambda, "vo_secs": secs, "max_influence": r.max_influence,
            }));
        }
        println!("{table}");
        record.insert(kind.letter().to_string(), serde_json::json!(per_kind));
    }
    write_record("fig14_effect_lambda", &serde_json::Value::Object(record));
}
