//! Property-based tests: the R-tree agrees with linear scans under
//! arbitrary interleavings of bulk loads and insertions.

use pinocchio_geo::{Mbr, Point};
use pinocchio_index::{GridIndex, RTree};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rectangle queries return exactly the linear-scan result whether
    /// the tree was bulk loaded or built by insertion.
    #[test]
    fn rect_query_exactness(
        bulk in prop::collection::vec(arb_point(), 0..120),
        inserted in prop::collection::vec(arb_point(), 0..60),
        q1 in arb_point(),
        q2 in arb_point(),
    ) {
        let mut items: Vec<(Point, usize)> =
            bulk.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut tree = RTree::bulk_load(items.clone());
        for (k, &p) in inserted.iter().enumerate() {
            tree.insert(p, bulk.len() + k);
            items.push((p, bulk.len() + k));
        }
        tree.check_invariants();

        let rect = Mbr::new(q1, q2);
        let mut got = Vec::new();
        tree.query_rect(&rect, |_, &i| got.push(i));
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// k-NN distances match the sorted linear-scan distances.
    #[test]
    fn knn_exactness(
        points in prop::collection::vec(arb_point(), 1..150),
        q in arb_point(),
        k in 1usize..20,
    ) {
        let tree: RTree<usize> = points.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let got = tree.k_nearest_neighbors(&q, k);
        let mut dists: Vec<f64> = points.iter().map(|p| p.euclidean(&q)).collect();
        dists.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k.min(points.len()));
        for (i, (_, _, d)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9, "rank {i}: {d} vs {}", dists[i]);
        }
    }

    /// Grid and R-tree agree on circle queries.
    #[test]
    fn grid_and_rtree_agree(
        points in prop::collection::vec(arb_point(), 2..150),
        center in arb_point(),
        radius in 0.0f64..60.0,
    ) {
        let items: Vec<(Point, usize)> =
            points.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let grid = GridIndex::build(items, 4).unwrap();
        let mut a = Vec::new();
        tree.query_circle(&center, radius, |_, &i| a.push(i));
        let mut b = Vec::new();
        grid.query_circle(&center, radius, |_, &i| b.push(i));
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Custom node capacities keep all invariants.
    #[test]
    fn arbitrary_capacity_invariants(
        points in prop::collection::vec(arb_point(), 1..200),
        capacity in 2usize..16,
    ) {
        let mut tree = RTree::with_capacity(capacity);
        for (i, &p) in points.iter().enumerate() {
            tree.insert(p, i);
        }
        prop_assert_eq!(tree.check_invariants(), points.len());
    }
}
