//! Equirectangular projection between geodetic and local planar frames.
//!
//! The paper states (footnote 5) that distances are computed as geographic
//! spherical distances, while the pruning geometry is planar. For
//! city-scale datasets (Singapore spans ~40 km; the paper's own frame is
//! 39.22 × 27.03 km) an equirectangular projection about the dataset's
//! mid-latitude introduces well under 0.1 % distance error, so the entire
//! pipeline — generation, pruning and validation — runs in a consistent
//! planar kilometre frame after projection.

use crate::metric::EARTH_RADIUS_KM;
use crate::point::Point;

/// An equirectangular (plate carrée) projection anchored at a reference
/// longitude/latitude.
///
/// Forward maps `(lon°, lat°)` to kilometres east/north of the anchor;
/// inverse maps back. Exact on the anchor parallel; distance distortion at
/// city scale is negligible for this workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquirectangularProjection {
    lon0: f64,
    lat0: f64,
    cos_lat0: f64,
}

impl EquirectangularProjection {
    /// Creates a projection anchored at `(lon0°, lat0°)`.
    ///
    /// # Panics
    /// Panics if the anchor latitude is within 0.1° of a pole, where the
    /// projection degenerates.
    pub fn new(lon0: f64, lat0: f64) -> Self {
        assert!(
            lat0.abs() < 89.9,
            "equirectangular projection degenerates near the poles (lat0 = {lat0})"
        );
        EquirectangularProjection {
            lon0,
            lat0,
            cos_lat0: lat0.to_radians().cos(),
        }
    }

    /// Anchors the projection at the centroid of a batch of geodetic
    /// points, which minimises distortion across the dataset extent.
    ///
    /// Returns `None` for an empty slice.
    pub fn centered_on(points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let lon0 = points.iter().map(|p| p.x).sum::<f64>() / n;
        let lat0 = points.iter().map(|p| p.y).sum::<f64>() / n;
        Some(Self::new(lon0, lat0))
    }

    /// Projects a geodetic `(lon°, lat°)` point into the local kilometre
    /// frame.
    #[inline]
    pub fn forward(&self, geo: &Point) -> Point {
        let x = (geo.x - self.lon0).to_radians() * self.cos_lat0 * EARTH_RADIUS_KM;
        let y = (geo.y - self.lat0).to_radians() * EARTH_RADIUS_KM;
        Point::new(x, y)
    }

    /// Inverse of [`EquirectangularProjection::forward`].
    #[inline]
    pub fn inverse(&self, local: &Point) -> Point {
        let lon = self.lon0 + (local.x / (self.cos_lat0 * EARTH_RADIUS_KM)).to_degrees();
        let lat = self.lat0 + (local.y / EARTH_RADIUS_KM).to_degrees();
        Point::new(lon, lat)
    }

    /// Anchor longitude in degrees.
    #[inline]
    pub fn lon0(&self) -> f64 {
        self.lon0
    }

    /// Anchor latitude in degrees.
    #[inline]
    pub fn lat0(&self) -> f64 {
        self.lat0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Haversine;

    #[test]
    fn anchor_maps_to_origin() {
        let proj = EquirectangularProjection::new(103.8, 1.35);
        let p = proj.forward(&Point::new(103.8, 1.35));
        assert!(p.euclidean(&Point::ORIGIN) < 1e-12);
    }

    #[test]
    fn round_trip() {
        let proj = EquirectangularProjection::new(103.8, 1.35);
        let geo = Point::new(103.95, 1.29);
        let back = proj.inverse(&proj.forward(&geo));
        assert!((back.x - geo.x).abs() < 1e-10);
        assert!((back.y - geo.y).abs() < 1e-10);
    }

    #[test]
    fn projected_distance_close_to_haversine_at_city_scale() {
        let proj = EquirectangularProjection::new(103.8, 1.35);
        // Two points ~20 km apart in Singapore.
        let a = Point::new(103.70, 1.30);
        let b = Point::new(103.90, 1.40);
        let planar = proj.forward(&a).euclidean(&proj.forward(&b));
        let sphere = Haversine::distance_km(&a, &b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn centered_on_uses_centroid() {
        let pts = [Point::new(10.0, 50.0), Point::new(12.0, 52.0)];
        let proj = EquirectangularProjection::centered_on(&pts).unwrap();
        assert_eq!(proj.lon0(), 11.0);
        assert_eq!(proj.lat0(), 51.0);
        assert!(EquirectangularProjection::centered_on(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "poles")]
    fn polar_anchor_rejected() {
        let _ = EquirectangularProjection::new(0.0, 90.0);
    }
}
