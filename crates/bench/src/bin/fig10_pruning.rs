//! Fig. 10 — effect of the pruning rules.
//!
//! For each threshold τ ∈ {0.1 .. 0.9}, the average fraction of
//! candidates decided per object by the influence-arcs rule (IA) and the
//! non-influence boundary (NIB), on both datasets.
//!
//! Expected shape (paper): ~2/3 of candidates pruned overall; as τ grows
//! IA decides fewer and NIB more; on F the IA share dominates, on G the
//! NIB share dominates (candidate spread vs activity-region size).

use pinocchio_bench::*;
use pinocchio_core::{pinocchio::pruning_breakdown, A2d};
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_geo::Mbr;
use pinocchio_prob::PowerLawPf;

fn main() {
    let mut record = serde_json::Map::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        let (_, candidates) =
            sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 10);
        let m = candidates.len() as f64;

        let mut table = Table::new(
            format!("Fig. 10 ({}): candidates decided per rule", kind.letter()),
            &[
                "tau",
                "IA %",
                "NIB %",
                "undecided %",
                "predicted undecided %",
                "uninfluenceable objs",
            ],
        );
        // Candidate frame for the §4.3 Remark's analytical estimate
        // m' = m · (S_N − S_I) / S_C, with both areas clipped to the
        // frame (the Remark's δ ≫ 1 assumption does not hold here: at
        // small τ the regions dwarf the frame).
        let frame = Mbr::from_points(&candidates).expect("non-empty candidate set");
        let mut per_kind = Vec::new();
        for &tau in &defaults::TAU_SWEEP {
            let a2d = A2d::build(d.objects(), &PowerLawPf::paper_default(), tau);
            let (mut ia_sum, mut nib_sum, mut und_sum) = (0.0f64, 0.0, 0.0);
            let mut predicted_sum = 0.0f64;
            let mut counted = 0usize;
            for entry in a2d.entries() {
                let Some(regions) = entry.regions else {
                    continue;
                };
                let (ia, nib, und) = pruning_breakdown(&regions, &candidates);
                ia_sum += ia as f64 / m;
                nib_sum += nib as f64 / m;
                und_sum += und as f64 / m;
                // Analytical estimate of the undecided fraction from the
                // frame-clipped region areas (Remark at the end of §4.3).
                // A coarse 64-step quadrature is plenty for a fraction
                // reported to one decimal.
                predicted_sum += regions.expected_survivor_fraction_in_frame(&frame, 64);
                counted += 1;
            }
            let n = counted.max(1) as f64;
            let (ia, nib, und) = (ia_sum / n * 100.0, nib_sum / n * 100.0, und_sum / n * 100.0);
            let predicted = predicted_sum / n * 100.0;
            let unin = a2d.entries().len() - a2d.influenceable();
            table.push_row(vec![
                format!("{tau:.1}"),
                format!("{ia:.1}"),
                format!("{nib:.1}"),
                format!("{und:.1}"),
                format!("{predicted:.1}"),
                unin.to_string(),
            ]);
            per_kind.push(serde_json::json!({
                "tau": tau, "ia_pct": ia, "nib_pct": nib, "undecided_pct": und,
                "predicted_undecided_pct": predicted,
                "uninfluenceable": unin,
            }));
        }
        println!("{table}");
        record.insert(kind.letter().to_string(), serde_json::json!(per_kind));
    }
    write_record("fig10_pruning", &serde_json::Value::Object(record));
}
