//! Fixture: a solver entry point wired into `SolveStats`.
//!
//! Mirrors the join solver's accounting: bulk subtree decisions land in
//! the pair counters (`decided_by_ia` / `decided_by_nib`) so the
//! `evaluated + skipped = total` identity holds, while the `subtrees_*`
//! counters record how many O(1) node decisions produced them.

use crate::result::SolveStats;

/// Solves and reports cost counters, including the hierarchical-join
/// ones (`subtrees_pruned_ia`, `subtrees_pruned_nib`,
/// `join_nodes_visited`).
pub fn solve_fast() -> SolveStats {
    let mut stats = SolveStats::default();
    stats.decided_by_ia += 4; // a whole subtree of 4 objects at once
    stats.subtrees_pruned_ia += 1;
    stats.join_nodes_visited += 1;
    stats
}
