//! Fixture: float comparisons through the total order.

/// Compares floats through `total_cmp`.
pub fn same(a: f64, b: f64) -> bool {
    a.total_cmp(&1.0).is_eq() && !b.total_cmp(&2.0).is_eq()
}

/// Sorts by the total order; no NaN panic possible.
pub fn first(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

/// Signals absence with an Option.
pub fn sentinel() -> Option<f64> {
    None
}
