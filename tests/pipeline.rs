//! End-to-end pipeline: generate → persist → reload → solve, plus the
//! geodetic path (raw lon/lat → projection → solve).

use pinocchio::data::{io, sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::geo::{EquirectangularProjection, Haversine};
use pinocchio::prelude::*;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pinocchio-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn csv_round_trip_preserves_solve_results() {
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(80, 5)).generate();
    let dir = tempdir("roundtrip");
    let checkins = dir.join("checkins.csv");
    let venues = dir.join("venues.csv");
    io::save_checkins(&dataset, &checkins).unwrap();
    io::save_venues(&dataset, &venues).unwrap();
    let reloaded = io::load_dataset("reloaded", &checkins, Some(&venues)).unwrap();

    let (_, candidates) = sample_candidate_group(&dataset, 30, 17);
    let solve = |objects: Vec<MovingObject>| {
        PrimeLs::builder()
            .objects(objects)
            .candidates(candidates.clone())
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
            .solve(Algorithm::PinocchioVo)
    };
    let original = solve(dataset.objects().to_vec());
    let roundtrip = solve(reloaded.objects().to_vec());
    assert_eq!(original.best_candidate, roundtrip.best_candidate);
    assert_eq!(original.max_influence, roundtrip.max_influence);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn geodetic_data_projects_and_solves() {
    // Raw check-ins in lon/lat degrees around Singapore.
    let geo_positions = [
        (103.80, 1.30),
        (103.82, 1.31),
        (103.95, 1.35),
        (103.96, 1.36),
        (103.81, 1.29),
    ];
    let geo_points: Vec<Point> = geo_positions
        .iter()
        .map(|&(lon, lat)| Point::new(lon, lat))
        .collect();
    let proj = EquirectangularProjection::centered_on(&geo_points).unwrap();

    // Two objects: west pair + anchor, east pair.
    let west = MovingObject::new(
        0,
        vec![
            proj.forward(&geo_points[0]),
            proj.forward(&geo_points[1]),
            proj.forward(&geo_points[4]),
        ],
    );
    let east = MovingObject::new(
        1,
        vec![proj.forward(&geo_points[2]), proj.forward(&geo_points[3])],
    );
    // Candidates: one in each cluster (projected from geodetic too).
    let candidates = vec![
        proj.forward(&Point::new(103.81, 1.30)),
        proj.forward(&Point::new(103.955, 1.355)),
    ];

    let problem = PrimeLs::builder()
        .objects(vec![west, east])
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.6)
        .build()
        .unwrap();
    let r = problem.solve(Algorithm::PinocchioVo);
    // The west candidate has 3 nearby positions (~1-2 km): wins.
    assert_eq!(r.best_candidate, 0);
    assert_eq!(r.max_influence, 1);

    // Projection fidelity: planar distances match haversine within 0.1 %.
    let planar = problem.candidates()[0].euclidean(&problem.candidates()[1]);
    let sphere = Haversine::distance_km(&Point::new(103.81, 1.30), &Point::new(103.955, 1.355));
    assert!((planar - sphere).abs() / sphere < 1e-3);
}

#[test]
fn dataset_statistics_survive_reload() {
    use pinocchio::data::DatasetStats;
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(60, 23)).generate();
    let dir = tempdir("stats");
    let checkins = dir.join("c.csv");
    io::save_checkins(&dataset, &checkins).unwrap();
    let reloaded = io::load_dataset("r", &checkins, None).unwrap();
    let a = DatasetStats::of(&dataset);
    let b = DatasetStats::of(&reloaded);
    assert_eq!(a.users, b.users);
    assert_eq!(a.checkins, b.checkins);
    assert_eq!(a.min_checkins, b.min_checkins);
    assert_eq!(a.max_checkins, b.max_checkins);
    assert!((a.frame_width_km - b.frame_width_km).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}
