//! The moving-object model.

use pinocchio_geo::{Mbr, Point};

/// A moving object `O = {p₁ … pₙ}` — a user described by the multiset of
/// positions (check-ins) they visited (§3.1).
///
/// Positions are stored as a flat `Vec<Point>` — the paper's
/// one-dimensional array `A_1D` — in arrival order; none of the
/// algorithms require a particular ordering (the `minMaxRadius`
/// derivation sorts *conceptually* by distance to a candidate, but the
/// proofs only use min/max distances, which are order-free).
#[derive(Debug, Clone, PartialEq)]
pub struct MovingObject {
    id: u64,
    positions: Vec<Point>,
}

impl MovingObject {
    /// Creates a moving object from its identifier and positions.
    ///
    /// # Panics
    /// Panics when `positions` is empty or contains a non-finite
    /// coordinate — an object with no observed position carries no
    /// information and Definition 1's product would be vacuous.
    pub fn new(id: u64, positions: Vec<Point>) -> Self {
        assert!(
            !positions.is_empty(),
            "moving object {id} must have at least one position"
        );
        assert!(
            positions.iter().all(Point::is_finite),
            "moving object {id} has a non-finite position"
        );
        MovingObject { id, positions }
    }

    /// The object's identifier.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The object's positions (`A_1D`).
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Number of positions `n`.
    #[inline]
    pub fn position_count(&self) -> usize {
        self.positions.len()
    }

    /// The MBR of the object's activity region (`MBR(O)`, §3.1).
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(&self.positions).expect("non-empty by construction")
    }

    /// A copy of this object restricted to the positions at `indices`
    /// (used by the Fig. 11b / Fig. 13 resampling experiments).
    ///
    /// # Panics
    /// Panics if `indices` is empty or out of bounds.
    pub fn with_position_subset(&self, indices: &[usize]) -> MovingObject {
        MovingObject::new(
            self.id,
            indices.iter().map(|&i| self.positions[i]).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let o = MovingObject::new(7, vec![Point::new(1.0, 2.0), Point::new(3.0, 0.0)]);
        assert_eq!(o.id(), 7);
        assert_eq!(o.position_count(), 2);
        let mbr = o.mbr();
        assert_eq!(mbr.lo(), Point::new(1.0, 0.0));
        assert_eq!(mbr.hi(), Point::new(3.0, 2.0));
    }

    #[test]
    fn single_position_object_has_degenerate_mbr() {
        let o = MovingObject::new(1, vec![Point::new(5.0, 5.0)]);
        assert_eq!(o.mbr().area(), 0.0);
    }

    #[test]
    fn subset_selects_positions() {
        let o = MovingObject::new(
            1,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ],
        );
        let s = o.with_position_subset(&[0, 2]);
        assert_eq!(s.positions(), &[Point::new(0.0, 0.0), Point::new(2.0, 2.0)]);
        assert_eq!(s.id(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn empty_object_rejected() {
        let _ = MovingObject::new(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_position_rejected() {
        let _ = MovingObject::new(1, vec![Point::new(f64::NAN, 0.0)]);
    }
}
