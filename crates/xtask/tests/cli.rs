//! End-to-end tests of the `xtask` binary: exit codes, `--list-rules`,
//! `--format json`, and the `--changed` git scoping — everything a CI
//! job or pre-push hook observes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Builds a throwaway mini-workspace holding the given files.
fn scratch(tag: &str, files: &[(&str, String)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xtask-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("mkdir scratch root");
    for (rel, text) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("files live under root")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }
    root
}

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("run xtask binary")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("xtask exited by signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A passing file for every rule, placeable anywhere in scope.
fn clean_file() -> String {
    fixture("cast_truncation/good.rs")
}

#[test]
fn lint_exit_codes_mirror_findings() {
    let dirty = scratch(
        "lint-dirty",
        &[(
            "crates/data/src/fixture_mod.rs",
            fixture("cast_truncation/bad.rs"),
        )],
    );
    let out = xtask(&["lint", "--root", dirty.to_str().expect("utf-8 path")]);
    assert_eq!(exit_code(&out), 1, "deny findings exit 1: {}", stdout(&out));
    let _ = fs::remove_dir_all(&dirty);

    let clean = scratch(
        "lint-clean",
        &[("crates/data/src/fixture_mod.rs", clean_file())],
    );
    let out = xtask(&["lint", "--root", clean.to_str().expect("utf-8 path")]);
    assert_eq!(exit_code(&out), 0, "clean tree exits 0: {}", stdout(&out));
    let _ = fs::remove_dir_all(&clean);
}

#[test]
fn audit_stats_exit_codes_mirror_findings() {
    let dirty = scratch(
        "stats-dirty",
        &[(
            "crates/core/src/fixture_solver.rs",
            fixture("stats_accounting/bad.rs"),
        )],
    );
    let out = xtask(&["audit-stats", "--root", dirty.to_str().expect("utf-8 path")]);
    assert_eq!(
        exit_code(&out),
        1,
        "an uninstrumented solver exits 1 like lint: {}",
        stdout(&out)
    );
    let _ = fs::remove_dir_all(&dirty);

    let clean = scratch(
        "stats-clean",
        &[(
            "crates/core/src/fixture_solver.rs",
            fixture("stats_accounting/good.rs"),
        )],
    );
    let out = xtask(&["audit-stats", "--root", clean.to_str().expect("utf-8 path")]);
    assert_eq!(
        exit_code(&out),
        0,
        "instrumented solvers exit 0: {}",
        stdout(&out)
    );
    let _ = fs::remove_dir_all(&clean);
}

#[test]
fn check_headers_exit_codes_mirror_findings() {
    let dirty = scratch(
        "headers-dirty",
        &[("crates/core/src/lib.rs", fixture("crate_hygiene/bad.rs"))],
    );
    let out = xtask(&[
        "check-headers",
        "--root",
        dirty.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        exit_code(&out),
        1,
        "missing crate-root attributes exit 1 like lint: {}",
        stdout(&out)
    );
    let _ = fs::remove_dir_all(&dirty);

    let clean = scratch(
        "headers-clean",
        &[("crates/core/src/lib.rs", fixture("crate_hygiene/good.rs"))],
    );
    let out = xtask(&[
        "check-headers",
        "--root",
        clean.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "hygienic roots exit 0: {}",
        stdout(&out)
    );
    let _ = fs::remove_dir_all(&clean);
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(exit_code(&xtask(&[])), 2, "no subcommand");
    assert_eq!(exit_code(&xtask(&["frobnicate"])), 2, "unknown subcommand");
    assert_eq!(
        exit_code(&xtask(&["lint", "--format", "yaml"])),
        2,
        "unknown format"
    );
    assert_eq!(
        exit_code(&xtask(&["audit-stats", "--list-rules"])),
        2,
        "--list-rules is lint-only"
    );
    assert_eq!(
        exit_code(&xtask(&["check-headers", "--changed"])),
        2,
        "--changed is lint-only"
    );
}

#[test]
fn list_rules_prints_the_whole_registry() {
    let out = xtask(&["lint", "--list-rules"]);
    assert_eq!(exit_code(&out), 0);
    let text = stdout(&out);
    for spec in xtask::RULES {
        assert!(
            text.contains(spec.id),
            "--list-rules must name `{}`:\n{text}",
            spec.id
        );
    }
    assert!(
        text.contains("[meta: always on]"),
        "the meta rule is marked:\n{text}"
    );
}

#[test]
fn json_output_is_machine_readable() {
    let root = scratch(
        "json",
        &[(
            "crates/serve/src/fixture_io.rs",
            fixture("bounded_io/bad.rs"),
        )],
    );
    let out = xtask(&[
        "lint",
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    let _ = fs::remove_dir_all(&root);
    assert_eq!(exit_code(&out), 1, "findings still fail in JSON mode");
    let parsed: serde_json::Value =
        serde_json::from_str(&stdout(&out)).expect("stdout is a JSON document");
    let diags = parsed
        .get("diagnostics")
        .and_then(|v| v.as_array())
        .expect("diagnostics array");
    assert!(
        diags
            .iter()
            .all(|d| d.get("rule").and_then(|v| v.as_str()) == Some("bounded-io")),
        "{parsed:#}"
    );
    assert_eq!(
        parsed.get("deny_count").and_then(|v| v.as_u64()),
        Some(diags.len() as u64)
    );
}

fn git(root: &Path, args: &[&str]) -> Output {
    Command::new("git")
        .arg("-C")
        .arg(root)
        .args([
            "-c",
            "user.email=xtask@localhost",
            "-c",
            "user.name=xtask",
            "-c",
            "commit.gpgsign=false",
        ])
        .args(args)
        .output()
        .expect("run git")
}

#[test]
fn changed_mode_scopes_reports_to_touched_files() {
    let root = scratch(
        "changed",
        &[(
            "crates/data/src/fixture_mod.rs",
            fixture("cast_truncation/bad.rs"),
        )],
    );
    assert!(git(&root, &["init", "-q"]).status.success(), "git init");
    assert!(git(&root, &["add", "."]).status.success());
    assert!(
        git(&root, &["commit", "-qm", "seed"]).status.success(),
        "git commit"
    );

    // The only deny finding is in a committed (unchanged) file: scoping
    // to the empty change set must pass, while a full lint still fails.
    let out = xtask(&[
        "lint",
        "--changed",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "committed findings are out of scope: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
    let full = xtask(&["lint", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(exit_code(&full), 1, "the full lint still sees them");

    // A fresh (untracked) bad file is in scope and fails.
    fs::write(
        root.join("crates/data/src/fixture_new.rs"),
        fixture("cast_truncation/bad.rs"),
    )
    .expect("write untracked file");
    let out = xtask(&[
        "lint",
        "--changed",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(exit_code(&out), 1, "untracked findings are in scope");
    let text = stdout(&out);
    assert!(
        text.contains("fixture_new.rs") && !text.contains("fixture_mod.rs"),
        "only the touched file is reported:\n{text}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn changed_mode_without_git_falls_back_to_a_full_lint() {
    let root = scratch(
        "changed-nogit",
        &[(
            "crates/data/src/fixture_mod.rs",
            fixture("cast_truncation/bad.rs"),
        )],
    );
    // Block discovery of any enclosing repository: point git at the
    // scratch dir itself so `git -C <root>` cannot crawl upwards.
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args([
            "lint",
            "--changed",
            "--root",
            root.to_str().expect("utf-8 path"),
        ])
        .env("GIT_CEILING_DIRECTORIES", &root)
        .env("GIT_DIR", root.join("no-such-repo"))
        .output()
        .expect("run xtask binary");
    assert_eq!(
        exit_code(&out),
        1,
        "without git the full lint runs and fails: {}",
        stdout(&out)
    );
    assert!(
        stderr(&out).contains("linting everything"),
        "the fallback is announced on stderr: {}",
        stderr(&out)
    );
    let _ = fs::remove_dir_all(&root);
}
