#!/usr/bin/env bash
# Runs every experiment binary in sequence, printing each exhibit and
# writing JSON records to target/experiments/.
#
# Usage:
#   ./scripts/run_experiments.sh            # full (paper) scale
#   PINOCCHIO_SCALE=small ./scripts/run_experiments.sh   # fast CI scale
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  table2_datasets
  table34_precision
  table5_groups
  fig06_geo
  fig07_pf
  fig08_scal_candidates
  fig09_scal_objects
  fig10_pruning
  fig11_effect_n
  fig12_effect_tau
  fig13_level_curve
  fig14_effect_lambda
  fig15_effect_rho
  fig16_alt_pfs
)

cargo build --release -p pinocchio-bench

for bin in "${BINS[@]}"; do
  echo
  echo "================================================================"
  echo "== $bin"
  echo "================================================================"
  cargo run --release -q -p pinocchio-bench --bin "$bin"
done
