//! Cast-truncation fixture: the sanctioned shapes — saturating
//! `try_from` for integer narrowing, clamp-in-the-float-domain before
//! the lossy cast.

pub fn narrow(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

pub fn rounded(x: f64, limit: usize) -> usize {
    x.round().clamp(0.0, limit as f64) as usize
}
