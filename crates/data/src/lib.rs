//! Moving-object datasets for the PINOCCHIO framework.
//!
//! The paper evaluates on two LBS check-in datasets — Foursquare
//! (Singapore) and Gowalla (California) — that are not redistributable.
//! This crate substitutes *synthetic equivalents calibrated to every
//! statistic the paper reports* (Table 2 and the §4.3 coverage figures):
//! user / venue / check-in counts, the skewed per-user check-in
//! distribution, hotspot-clustered venue geography, and activity regions
//! that overlap heavily (each object covering ~55 % of each axis in the
//! Foursquare-like dataset).
//!
//! Contents:
//!
//! * [`MovingObject`] / [`Dataset`] / [`Venue`] — the data model,
//!   including per-venue ground-truth visit counts used by the
//!   effectiveness experiments (Tables 3–4),
//! * [`arena`] — the flat structure-of-arrays [`PositionArena`] with
//!   per-block MBRs that backs the blocked evaluation kernel,
//! * [`poslog`] — the structurally shared, append-friendly
//!   [`PositionLog`] backing the dynamic maintenance path (O(1)
//!   amortised append, chunk-sharing clone),
//! * [`gen`] — the `FoursquareLike` / `GowallaLike` generators,
//! * [`stats`] — dataset statistics (regenerates Table 2),
//! * [`sampling`] — deterministic sub-sampling of objects, positions and
//!   candidate groups (Figs. 9, 11b, 13; Tables 3–4), and the
//!   position-count grouping of Table 5,
//! * [`io`] — plain CSV persistence so externally obtained check-in data
//!   can be dropped in.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod dataset;
pub mod gen;
pub mod io;
pub mod object;
pub mod poslog;
pub mod sampling;
pub mod stats;
pub mod trajectory;

pub use arena::{PositionArena, BLOCK_SIZE};
pub use dataset::{Dataset, Venue};
pub use gen::{GeneratorConfig, SyntheticGenerator};
pub use object::MovingObject;
pub use poslog::{PositionLog, POSITION_CHUNK};
pub use sampling::{
    group_by_position_count, resample_positions, sample_candidate_group, sample_objects,
    PositionCountGroup, TABLE5_BOUNDS,
};
pub use stats::DatasetStats;
pub use trajectory::{generate_trajectories, subsample_interval, TrajectoryConfig};
