//! Wildlife-monitoring scenario (one of the applications the paper's
//! introduction motivates): place a tracking station so it detects the
//! largest number of migrating animals.
//!
//! Animals are *trajectories*, not check-ins: each is a random walk
//! around a seasonal home range. A station detects an animal at one of
//! its positions with a probability that drops to zero beyond sensor
//! range — the bounded-support concave PF from the paper's Fig. 16 sweep
//! models this well.
//!
//! Run with `cargo run --release --example wildlife`.

use pinocchio::data::{generate_trajectories, TrajectoryConfig};
use pinocchio::prelude::*;
use pinocchio::prob::ConcavePf;

fn main() {
    // A resident herd holding home ranges plus a migratory population
    // drifting towards the north-east feeding grounds — both produced by
    // the library's correlated random-walk model (the paper's
    // "continuous case", discretized at a fixed sampling interval).
    let residents = generate_trajectories(&TrajectoryConfig {
        n_objects: 40,
        samples_per_object: 60,
        frame_width_km: 30.0,
        frame_height_km: 20.0,
        ..TrajectoryConfig::home_ranging(40, 60, 42)
    });
    let migrants = generate_trajectories(&TrajectoryConfig {
        n_objects: 80,
        samples_per_object: 60,
        frame_width_km: 15.0,
        frame_height_km: 10.0,
        ..TrajectoryConfig::migrating(80, 60, 43)
    });
    let mut animals = residents;
    for (i, m) in migrants.into_iter().enumerate() {
        // Re-id the migrants after the residents.
        animals.push(MovingObject::new(40 + i as u64, m.positions().to_vec()));
    }

    // Candidate station sites: a survey grid over the region.
    let mut candidates = Vec::new();
    for gx in 0..12 {
        for gy in 0..8 {
            candidates.push(Point::new(gx as f64 * 4.0, gy as f64 * 4.0));
        }
    }

    // Sensor: certain detection at the mast (ρ = 0.95), nothing beyond
    // 6 km, concave falloff in between. An animal is "covered" when the
    // odds it is detected at least once along its trajectory reach 80 %.
    let problem = PrimeLs::builder()
        .objects(animals)
        .candidates(candidates)
        .probability_function(ConcavePf::new(0.95, 6.0))
        .tau(0.8)
        .build()
        .expect("valid problem");

    let result = problem.solve(Algorithm::PinocchioVo);
    println!(
        "best station: grid site #{} at {}",
        result.best_candidate, result.best_location
    );
    println!(
        "animals covered: {} of {}",
        result.max_influence,
        problem.objects().len()
    );
    println!(
        "solve cost: {} object-candidate validations, {} position probes, {:?}",
        result.stats.validated_pairs, result.stats.positions_evaluated, result.elapsed
    );

    // Show the top-5 sites for field planning.
    let influences = problem.all_influences();
    let mut ranked: Vec<usize> = (0..influences.len()).collect();
    ranked.sort_by_key(|&j| std::cmp::Reverse(influences[j]));
    println!("\ntop sites:");
    for &j in ranked.iter().take(5) {
        println!(
            "  site #{j:3} at {}  covers {:3} animals",
            problem.candidates()[j],
            influences[j]
        );
    }
}
