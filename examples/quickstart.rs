//! Quickstart: build a PRIME-LS problem by hand and solve it.
//!
//! Run with `cargo run --example quickstart`.

use pinocchio::prelude::*;

fn main() {
    // Three commuters, described by their check-in positions (km frame).
    // Ola works downtown and lives in the west; Priya stays downtown;
    // Sam lives far north-east.
    let objects = vec![
        MovingObject::new(
            0, // Ola
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.4, 0.2),
                Point::new(6.0, 0.5),
                Point::new(6.2, 0.4),
            ],
        ),
        MovingObject::new(
            1, // Priya
            vec![
                Point::new(0.2, 0.1),
                Point::new(0.3, -0.2),
                Point::new(0.1, 0.3),
            ],
        ),
        MovingObject::new(2, vec![Point::new(25.0, 30.0), Point::new(25.5, 29.5)]), // Sam
    ];

    // Two possible spots for a new coffee kiosk.
    let candidates = vec![
        Point::new(0.2, 0.0), // downtown
        Point::new(6.1, 0.4), // west suburb
    ];

    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        // The paper's power-law check-in model: PF(d) = 0.9 / (1 + d).
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .expect("valid problem");

    // Solve with every algorithm; they all agree on the answer and only
    // differ in how much work they do.
    for algorithm in Algorithm::ALL {
        let result = problem.solve(algorithm);
        println!(
            "{:8} -> candidate #{} at {} influences {} object(s) \
             ({} position probabilities evaluated)",
            algorithm.label(),
            result.best_candidate,
            result.best_location,
            result.max_influence,
            result.stats.positions_evaluated,
        );
    }

    // Inspect the probabilities behind the verdict.
    let eval = problem.evaluator();
    for (j, c) in problem.candidates().iter().enumerate() {
        for o in problem.objects() {
            println!(
                "Pr_c{}(O{}) = {:.3}",
                j,
                o.id(),
                eval.cumulative(c, o.positions())
            );
        }
    }
}
