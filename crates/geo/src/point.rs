//! Two-dimensional points.

use std::fmt;

/// A position in two-dimensional space.
///
/// Throughout the workspace a `Point` is interpreted in one of two frames:
///
/// * a **planar frame** where `x`/`y` are kilometres in a local projection
///   (the frame all algorithms run in), or
/// * a **geodetic frame** where `x` is longitude and `y` is latitude in
///   degrees (the frame raw check-in data arrives in; see
///   [`crate::projection`]).
///
/// The struct is deliberately a plain `Copy` pair of `f64`s so that
/// position arrays (`A_1D` in the paper) are flat, cache-friendly buffers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (kilometres east, or degrees of longitude).
    pub x: f64,
    /// Vertical coordinate (kilometres north, or degrees of latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Squared planar Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::euclidean`] in comparisons: it avoids the
    /// square root on the hot path.
    #[inline]
    pub fn euclidean_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Planar Euclidean distance to `other`.
    #[inline]
    pub fn euclidean(&self, other: &Point) -> f64 {
        self.euclidean_sq(other).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both coordinates are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.euclidean(&b), 5.0);
        assert_eq!(a.euclidean_sq(&b), 25.0);
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = Point::new(-1.5, 2.25);
        let b = Point::new(7.0, -3.0);
        assert_eq!(a.euclidean(&b), b.euclidean(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(12.0, -9.5);
        assert_eq!(p.euclidean(&p), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(4.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(4.0, 9.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 3.0));
    }

    #[test]
    fn tuple_conversions_round_trip() {
        let p: Point = (2.5, -1.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -1.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
