//! Least-squares polynomial fitting.
//!
//! Fig. 13b fits the ⟨n, τ⟩ level curve "by Matlab's polyfit"; this
//! module provides the same mathematics: minimise
//! `Σᵢ (yᵢ − p(xᵢ))²` over polynomials `p` of a given degree, solved via
//! the normal equations with partial-pivot Gaussian elimination. For the
//! tiny systems involved (degree ≤ 5, a handful of points) this is
//! numerically more than adequate.

use std::fmt;

/// A polynomial `c₀ + c₁·x + … + c_d·x^d` fitted by least squares.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Fits a polynomial of `degree` to the points `(xs[i], ys[i])`.
    ///
    /// # Panics
    /// Panics when the slices differ in length, contain fewer than
    /// `degree + 1` points, or the normal equations are singular
    /// (e.g. duplicated x values with too few distinct abscissae).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs and ys must pair up");
        let n = degree + 1;
        assert!(
            xs.len() >= n,
            "need at least {n} points for degree {degree}, got {}",
            xs.len()
        );

        // Normal equations: (VᵀV) c = Vᵀy with V the Vandermonde matrix.
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for (&x, &y) in xs.iter().zip(ys) {
            let mut powers = vec![1.0f64; 2 * n - 1];
            for k in 1..2 * n - 1 {
                powers[k] = powers[k - 1] * x;
            }
            for (i, row) in ata.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell += powers[i + j];
                }
                aty[i] += powers[i] * y;
            }
        }
        let coefficients = solve_linear(ata, aty);
        Polynomial { coefficients }
    }

    /// The coefficients, lowest order first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    pub fn eval(&self, x: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Root-mean-square error of the fit over the given points.
    pub fn rms_error(&self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        let sq: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (self.eval(x) - y).powi(2))
            .sum();
        (sq / xs.len() as f64).sqrt()
    }
}

impl fmt::Display for Polynomial {
    /// Writes `c0 + c1·x^1 + c2·x^2 …` with 4 decimal places.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.coefficients.iter().enumerate() {
            if i == 0 {
                write!(f, "{c:.4}")?;
            } else {
                write!(
                    f,
                    " {} {:.4}·x^{i}",
                    if *c < 0.0 { "-" } else { "+" },
                    c.abs()
                )?;
            }
        }
        Ok(())
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        assert!(
            a[pivot][col].abs() > 1e-12,
            "singular normal equations: supply more distinct x values"
        );
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (cell, &p) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_a_quadratic() {
        // y = 2 − 3x + 0.5x²
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - 3.0 * x + 0.5 * x * x).collect();
        let p = Polynomial::fit(&xs, &ys, 2);
        let c = p.coefficients();
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] + 3.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
        assert!(p.rms_error(&xs, &ys) < 1e-9);
    }

    #[test]
    fn linear_fit_of_noisy_line_recovers_slope() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        // Deterministic "noise" of mean zero.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.0 + 4.0 * x + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let p = Polynomial::fit(&xs, &ys, 1);
        assert!((p.coefficients()[1] - 4.0).abs() < 0.01);
        assert!(p.rms_error(&xs, &ys) < 0.06);
    }

    #[test]
    fn eval_uses_horner_correctly() {
        let p = Polynomial {
            coefficients: vec![1.0, 0.0, -2.0], // 1 − 2x²
        };
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(2.0), -7.0);
    }

    #[test]
    fn higher_degree_never_fits_worse() {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 / 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 1.3).sin()).collect();
        let mut last = f64::INFINITY;
        for degree in 1..=5 {
            let err = Polynomial::fit(&xs, &ys, degree).rms_error(&xs, &ys);
            assert!(err <= last + 1e-9, "degree {degree}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn underdetermined_fit_rejected() {
        let _ = Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 2);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn duplicate_xs_rejected() {
        let _ = Polynomial::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn display_renders_terms() {
        let p = Polynomial {
            coefficients: vec![0.5, -1.25],
        };
        let s = p.to_string();
        assert!(s.contains("0.5000"), "{s}");
        assert!(s.contains("1.2500·x^1"), "{s}");
    }
}
