//! The PRIME-LS problem and the PINOCCHIO solvers — the paper's core
//! contribution.
//!
//! Given moving objects `Ω`, candidate locations `C`, a monotone
//! decreasing probability function `PF` and a threshold `τ`, PRIME-LS
//! (Definition 3) asks for the candidate maximising
//! `inf(c) = |{O : Pr_c(O) ≥ τ}|` where
//! `Pr_c(O) = 1 − ∏ᵢ (1 − PF(dist(c, pᵢ)))`.
//!
//! Four solvers are provided, exactly matching the algorithms evaluated
//! in §6:
//!
//! * [`Algorithm::Naive`] — exhaustively evaluates every
//!   object–candidate pair (the paper's NA baseline),
//! * [`Algorithm::Pinocchio`] — Algorithm 2: per-object
//!   influence-arcs / non-influence-boundary pruning against the
//!   candidate R-tree, then plain validation of the undecided pairs,
//! * [`Algorithm::PinocchioVo`] — Algorithm 3: pruning plus the two
//!   validation optimizations (Strategy 1 upper/lower influence bounds
//!   with a max-heap and a global `maxminInf` cut-off; Strategy 2
//!   early-stopping via partial non-influence probabilities),
//! * [`Algorithm::PinocchioVoStar`] — PIN-VO\* in the paper: the
//!   validation optimizations *without* the pruning phase, used to
//!   separate the contribution of the two phases.
//!
//! All solvers return the same optimal candidate (ties broken towards
//! the smallest candidate index); they differ only in cost, which the
//! attached [`SolveStats`] quantify. Each also has a multi-threaded
//! counterpart in [`parallel`] — including PIN-VO, whose monotone
//! `maxminInf` bound is shared between workers through an atomic
//! `fetch_max` without giving up exactness.
//!
//! The solvers operate in a planar kilometre frame with the Euclidean
//! metric — project geodetic data first (`pinocchio_geo::projection`);
//! the pruning geometry (Lemmas 2–3) is only sound in a frame where the
//! probability distance and the MBR geometry agree.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod approx;
pub mod dynamic;
pub mod eval;
pub mod join;
pub mod naive;
pub mod parallel;
pub mod pinocchio;
pub mod problem;
pub mod result;
pub mod shard;
pub mod state;
pub mod topk;
pub mod vo;
pub mod weighted;

pub use approx::{solve_approx, ApproxConfig, ApproxResult};
pub use dynamic::{CandidateHandle, DynamicPrimeLs, MaintenanceMode, ObjectHandle};
pub use eval::{EvalKernel, PairEval};
pub use parallel::{solve_naive as solve_naive_par, solve_pinocchio as solve_pinocchio_par};
pub use parallel::{solve_vo as solve_vo_par, try_solve_vo as try_solve_vo_par};
pub use problem::{BuildError, PrimeLs, PrimeLsBuilder};
pub use result::{argmax_smallest_index, Algorithm, SolveError, SolveResult, SolveStats};
pub use shard::{
    shard_of, solve_sharded, try_solve_sharded, try_solve_sharded_timed, ShardTimings,
    ShardedPrimeLs,
};
pub use state::{A2d, ObjectEntry};
pub use topk::{solve_top_k, try_solve_top_k, TopKEntry, TopKResult};
pub use vo::{solve_with_options, try_solve_with_options};
pub use weighted::{solve_weighted, WeightedResult};
