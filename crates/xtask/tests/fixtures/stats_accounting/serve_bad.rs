//! Fixture: a service entry point that ignores the observability block.

/// Serves forever without counting anything.
pub fn serve_requests() -> u32 {
    0
}
