//! A function-span model layered over [`SourceFile`].
//!
//! The line model of [`crate::source`] answers "what tokens are on this
//! line"; the rules added for the concurrency/resource audit need the
//! next altitude up: *which function am I in, what does it acquire,
//! and what does it call*. This module parses item/function boundaries
//! by brace tracking over the already-blanked code lines and records
//! per-function facts:
//!
//! * lock acquisitions (`x.lock()` / `x.read()` / `x.write()`), with an
//!   approximate guard extent — bound guards live to the end of their
//!   innermost enclosing block or an explicit `drop(guard)`, statement
//!   temporaries to the end of their statement;
//! * `Condvar` waits, with whether they sit inside a loop and whether
//!   their result is consumed;
//! * heap-allocation constructors (`Vec::new`, `vec![`, `format!`, …);
//! * call sites, by identifier, for one level of intra-crate
//!   fact propagation;
//! * loop extents, for the bounded-io growth check.
//!
//! The model is deliberately approximate — it is a lexer with a brace
//! counter, not a type checker. The precision tradeoffs of every
//! approximation are documented in DESIGN.md §14; the escape hatch for
//! a false positive is always a justified suppression.

use crate::source::SourceFile;

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Lock identity: the last non-`self` segment of the receiver path
    /// (`self.shared.stats.lock()` → `stats`). Identity is scoped per
    /// crate by the rules that consume it.
    pub lock: String,
    /// Last line (inclusive) on which the guard may still be held.
    pub release_line: usize,
}

/// One `Condvar::wait*` call inside a function.
#[derive(Debug, Clone)]
pub struct WaitSite {
    /// 1-based line of the wait.
    pub line: usize,
    /// `wait`, `wait_timeout`, or `wait_while`.
    pub method: &'static str,
    /// Whether an enclosing `loop`/`while`/`for` block (within the same
    /// function) was open at the wait.
    pub in_loop: bool,
    /// Whether the wait's result is consumed: the statement is a `let`
    /// binding, an assignment, a `match`/`if` scrutinee, or the
    /// function's tail expression.
    pub consumed: bool,
}

/// One heap-allocation token inside a function.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line of the allocation.
    pub line: usize,
    /// The matched constructor token (e.g. `Vec::new`).
    pub what: &'static str,
}

/// One call site, by callee identifier.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// The identifier immediately before the `(`; method and free calls
    /// both reduce to their final name segment.
    pub callee: String,
}

/// One function (or method) span with its recorded facts.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub header_line: usize,
    /// 1-based line where the body closes.
    pub end_line: usize,
    /// Whether the header sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Whether the function is marked `// pinocchio-hot` (same line as
    /// the header or in the contiguous comment block above it).
    pub hot: bool,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Condvar waits, in source order.
    pub waits: Vec<WaitSite>,
    /// Allocation tokens, in source order.
    pub allocs: Vec<AllocSite>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Closed `loop`/`while`/`for` block extents `(start, end)`, 1-based
    /// inclusive.
    pub loops: Vec<(usize, usize)>,
}

/// A parsed file plus its function spans — the unit the engine hands to
/// both the per-file and the workspace-level rules.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// The classified source file.
    pub source: SourceFile,
    /// Function spans in header order.
    pub fns: Vec<FnSpan>,
}

impl FileAnalysis {
    /// Parses `text` and scans its function spans.
    pub fn parse(path: &str, text: &str) -> FileAnalysis {
        let source = SourceFile::parse(path, text);
        let fns = scan(&source);
        FileAnalysis { source, fns }
    }

    /// The innermost function span containing 1-based `line`, preferring
    /// later (more deeply nested) headers.
    pub fn fn_at(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.header_line <= line && line <= f.end_line)
            .max_by_key(|f| f.header_line)
    }
}

/// Heap-allocation constructor tokens. `.push(` and `.clone()` are
/// deliberately absent: push is amortized into a prior reservation
/// throughout this workspace, and clone is routinely `Copy` or an `Arc`
/// bump — flagging either would bury the signal.
const ALLOC_TOKENS: [&str; 16] = [
    "Vec::new",
    "Vec::with_capacity",
    "vec![",
    "String::new",
    "String::with_capacity",
    "String::from(",
    "Box::new",
    "format!(",
    ".to_string()",
    ".to_vec()",
    ".to_owned()",
    ".collect()",
    ".collect::<",
    "HashMap::new",
    "BTreeMap::new",
    "BinaryHeap::new",
];

/// Guard-returning recovery adapters that keep a `.lock()` chain a
/// guard expression rather than a consumed temporary.
const RECOVERY_ADAPTERS: [&str; 4] = ["unwrap_or_else", "unwrap", "expect", "into_inner"];

const KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "fn", "let",
    "mut", "ref", "use", "impl",
];

/// An open block on the scanner's stack.
struct Block {
    start_line: usize,
    is_loop: bool,
    /// Height of the open-fn stack when the block opened (0 = module
    /// level); blocks belong to the innermost function open at the time.
    owner: usize,
}

/// An open function under construction.
struct OpenFn {
    span: FnSpan,
    /// Brace depth of the body's opening `{` (the fn closes when depth
    /// returns to this value).
    entry_depth: i64,
    guards: Vec<OpenGuard>,
}

struct OpenGuard {
    lock_idx: usize,
    kind: GuardKind,
}

enum GuardKind {
    /// Bound to `name` at `depth`; released by `drop(name)` or when the
    /// brace depth falls below `depth`.
    Bound { name: String, depth: i64 },
}

/// Scans a classified file into function spans with facts.
pub fn scan(file: &SourceFile) -> Vec<FnSpan> {
    let mut done: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<OpenFn> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut depth: i64 = 0;
    // A detected header waiting for its body `{` (or a `;` for bodyless
    // trait declarations). `(name, header_line, hot, min_byte_on_line)`.
    let mut pending: Option<(String, usize, bool)> = None;
    let mut pending_pos: usize = 0;

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;

        if pending.is_none() {
            if let Some((pos, name)) = find_fn_header(code) {
                let hot = is_hot_marked(file, idx);
                pending = Some((name, lineno, hot));
                pending_pos = pos;
            }
        }

        let bytes = code.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'{' => {
                    if let Some((name, header_line, hot)) = pending.take() {
                        if i >= pending_pos || header_line != lineno {
                            stack.push(OpenFn {
                                span: FnSpan {
                                    name,
                                    header_line,
                                    end_line: header_line,
                                    in_test: file.lines[header_line - 1].in_test,
                                    hot,
                                    locks: Vec::new(),
                                    waits: Vec::new(),
                                    allocs: Vec::new(),
                                    calls: Vec::new(),
                                    loops: Vec::new(),
                                },
                                entry_depth: depth,
                                guards: Vec::new(),
                            });
                        } else {
                            pending = Some((name, header_line, hot));
                        }
                    }
                    blocks.push(Block {
                        start_line: lineno,
                        is_loop: opens_loop(code, i),
                        owner: stack.len(),
                    });
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if let Some(block) = blocks.pop() {
                        if block.is_loop && block.owner > 0 {
                            if let Some(open) = stack.get_mut(block.owner - 1) {
                                open.span.loops.push((block.start_line, lineno));
                            }
                        }
                    }
                    if let Some(open) = stack.last_mut() {
                        // Guards bound inside the block that just closed
                        // are released here.
                        release_out_of_scope_guards(open, depth, lineno);
                        if open.entry_depth == depth {
                            let mut open = stack.pop().unwrap_or_else(|| unreachable!());
                            for g in open.guards.drain(..) {
                                open.span.locks[g.lock_idx].release_line = lineno;
                            }
                            open.span.end_line = lineno;
                            done.push(open.span);
                        }
                    }
                }
                b';' if pending.is_some()
                    && (i >= pending_pos || !same_pending_line(&pending, lineno)) =>
                {
                    pending = None; // bodyless declaration
                }
                _ => {}
            }
        }
        // After the brace walk, a multi-line header's later lines may
        // open the body anywhere.
        pending_pos = 0;

        let height = stack.len();
        if let Some(open) = stack.last_mut() {
            record_facts(open, file, idx, &blocks, depth, height);
        }
    }
    // Unterminated functions (truncated file): close at EOF.
    while let Some(mut open) = stack.pop() {
        let last = file.lines.len().max(1);
        for g in open.guards.drain(..) {
            open.span.locks[g.lock_idx].release_line = last;
        }
        open.span.end_line = last;
        done.push(open.span);
    }
    done.sort_by_key(|f| f.header_line);
    done
}

fn same_pending_line(pending: &Option<(String, usize, bool)>, lineno: usize) -> bool {
    pending.as_ref().is_some_and(|(_, l, _)| *l == lineno)
}

fn release_out_of_scope_guards(open: &mut OpenFn, depth: i64, lineno: usize) {
    let mut kept = Vec::new();
    for g in open.guards.drain(..) {
        let GuardKind::Bound { depth: gd, .. } = &g.kind;
        if *gd > depth {
            open.span.locks[g.lock_idx].release_line = lineno;
        } else {
            kept.push(g);
        }
    }
    open.guards = kept;
}

/// Finds a `fn <name>` header on a code line; returns the byte offset of
/// the `fn` keyword and the name.
fn find_fn_header(code: &str) -> Option<(usize, String)> {
    let bytes = code.as_bytes();
    let mut search = 0usize;
    while let Some(rel) = code[search..].find("fn ") {
        let at = search + rel;
        search = at + 3;
        // Word boundary on the left (`pub fn`, column 0, `(`…).
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let rest = code[at + 3..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue; // `fn(` type position
        }
        return Some((at, name));
    }
    None
}

/// Whether the function whose header is at line index `idx` carries a
/// `pinocchio-hot` marker: on the header line's comment, or anywhere in
/// the contiguous comment/attribute block directly above it.
fn is_hot_marked(file: &SourceFile, idx: usize) -> bool {
    if file.lines[idx].comment.contains("pinocchio-hot") {
        return true;
    }
    let mut back = idx;
    while back > 0 {
        let prev = &file.lines[back - 1];
        let code = prev.code.trim();
        let comment_only = code.is_empty() && !prev.comment.trim().is_empty();
        let attribute = code.starts_with("#[");
        if !comment_only && !attribute {
            return false;
        }
        if prev.comment.contains("pinocchio-hot") {
            return true;
        }
        back -= 1;
    }
    false
}

/// Whether the `{` at byte `brace` opens a loop body: the code between
/// the previous statement boundary on the line and the brace contains a
/// `loop`/`while`/`for` keyword. A loop header split across lines is a
/// known false negative (documented).
fn opens_loop(code: &str, brace: usize) -> bool {
    let head = &code[..brace];
    let start = head.rfind([';', '{', '}']).map(|p| p + 1).unwrap_or(0);
    let head = &head[start..];
    for kw in ["loop", "while", "for"] {
        let mut search = 0usize;
        while let Some(rel) = head[search..].find(kw) {
            let at = search + rel;
            search = at + kw.len();
            let left_ok = at == 0 || {
                let p = head.as_bytes()[at - 1];
                !(p.is_ascii_alphanumeric() || p == b'_')
            };
            let right = head.as_bytes().get(at + kw.len());
            let right_ok = right.is_none_or(|&n| !(n.is_ascii_alphanumeric() || n == b'_'));
            if left_ok && right_ok {
                return true;
            }
        }
    }
    false
}

/// Records every fact visible on line `idx` into the innermost open fn
/// (`height` is the fn-stack height, which owns blocks with a matching
/// `owner`).
fn record_facts(
    open: &mut OpenFn,
    file: &SourceFile,
    idx: usize,
    blocks: &[Block],
    depth: i64,
    height: usize,
) {
    let lineno = idx + 1;
    let code = &file.lines[idx].code;

    // drop(guard) releases a bound guard early.
    for g in std::mem::take(&mut open.guards) {
        let GuardKind::Bound { name, .. } = &g.kind;
        if drops_name(code, name) {
            open.span.locks[g.lock_idx].release_line = lineno;
        } else {
            open.guards.push(g);
        }
    }

    let mut lock_positions: Vec<usize> = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut search = 0usize;
        while let Some(rel) = code[search..].find(method) {
            let at = search + rel;
            search = at + method.len();
            let lock = match receiver_at(code, at) {
                Receiver::Field(f) => Some(f),
                Receiver::BareSelf => None, // a method call, not a lock
                Receiver::Unknown => {
                    // Chain split across lines: resolve against the
                    // reconstructed statement instead.
                    let (stmt, _) = statement_around(file, idx);
                    match stmt.find(method).map(|p| receiver_at(&stmt, p)) {
                        Some(Receiver::Field(f)) => Some(f),
                        _ => None,
                    }
                }
            };
            let Some(lock) = lock else {
                continue;
            };
            lock_positions.push(at);
            let (stmt, stmt_end) = statement_around(file, idx);
            let lock_idx = open.span.locks.len();
            if let Some((name, bind_depth)) = guard_binding(&stmt, method, depth) {
                open.span.locks.push(LockSite {
                    line: lineno,
                    lock,
                    // Provisional: until released, the guard covers the
                    // rest of the function; finalized on release.
                    release_line: lineno,
                });
                open.guards.push(OpenGuard {
                    lock_idx,
                    kind: GuardKind::Bound {
                        name,
                        depth: bind_depth,
                    },
                });
            } else {
                open.span.locks.push(LockSite {
                    line: lineno,
                    lock,
                    release_line: stmt_end,
                });
            }
        }
    }

    for (pat, method) in [
        (".wait(", "wait"),
        (".wait_timeout(", "wait_timeout"),
        (".wait_while(", "wait_while"),
        (".wait_timeout_while(", "wait_timeout"),
    ] {
        let mut search = 0usize;
        while let Some(rel) = code[search..].find(pat) {
            let at = search + rel;
            search = at + pat.len();
            let in_loop = blocks.iter().any(|b| b.is_loop && b.owner == height);
            let (stmt, _) = statement_around(file, idx);
            open.span.waits.push(WaitSite {
                line: lineno,
                method,
                in_loop,
                consumed: wait_consumed(&stmt, pat),
            });
        }
    }

    for token in ALLOC_TOKENS {
        let mut search = 0usize;
        while let Some(rel) = code[search..].find(token) {
            let at = search + rel;
            search = at + token.len();
            // `Vec::new` must not also match inside `Vec::new_in` etc.
            let after = code.as_bytes().get(at + token.len());
            if !token.ends_with(['(', '!', ')', '<'])
                && after.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
            {
                continue;
            }
            open.span.allocs.push(AllocSite {
                line: lineno,
                what: token,
            });
        }
    }

    // Call sites: identifier immediately before a `(`.
    let bytes = code.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] != b'(' {
            continue;
        }
        let mut start = i;
        while start > 0 && {
            let p = bytes[start - 1];
            p.is_ascii_alphanumeric() || p == b'_'
        } {
            start -= 1;
        }
        if start == i {
            continue;
        }
        let name = &code[start..i];
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Skip definitions (`fn name(`).
        if code[..start].trim_end().ends_with("fn") {
            continue;
        }
        // Skip sites already classified as lock acquisitions.
        if matches!(name, "lock" | "read" | "write")
            && lock_positions.iter().any(|&p| p + 1 == start)
        {
            continue;
        }
        open.span.calls.push(CallSite {
            line: lineno,
            callee: name.to_string(),
        });
    }
}

fn drops_name(code: &str, name: &str) -> bool {
    let mut search = 0usize;
    while let Some(rel) = code[search..].find("drop(") {
        let at = search + rel;
        search = at + 5;
        let rest = &code[at + 5..];
        if let Some(close) = rest.find(')') {
            if rest[..close].trim() == name {
                return true;
            }
        }
    }
    false
}

/// What sits before a `.method()` call at byte `dot`.
enum Receiver {
    /// A dotted path ending in a named field/binding — the lock identity.
    Field(String),
    /// Exactly `self`: a method call on the surrounding type, not a lock.
    BareSelf,
    /// Nothing scannable on this line (chain split across lines, or a
    /// parenthesized receiver).
    Unknown,
}

/// Classifies the receiver of the method call whose `.` is at `dot`:
/// the last non-`self` segment of the dotted path is the lock identity
/// (`self.shared.stats.lock()` → `stats`).
fn receiver_at(code: &str, dot: usize) -> Receiver {
    let bytes = code.as_bytes();
    let mut start = dot;
    while start > 0 {
        let p = bytes[start - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b'.' || p == b':' {
            start -= 1;
        } else {
            break;
        }
    }
    let path = &code[start..dot];
    match path.rsplit(['.', ':']).find(|s| !s.is_empty()) {
        None => Receiver::Unknown,
        Some("self") => Receiver::BareSelf,
        Some(field) => Receiver::Field(field.to_string()),
    }
}

/// Reconstructs the statement containing line `idx`: the lines from the
/// previous statement boundary through the first line carrying `;` (or
/// an opening `{`, or — for tail expressions — the line before the
/// block's closing `}`). Continuation lines starting with `.`/`)`/`?`
/// are fused without a separator so split method chains re-form into
/// scannable dotted paths. Returns the text and the 1-based end line.
fn statement_around(file: &SourceFile, idx: usize) -> (String, usize) {
    const LOOKAROUND: usize = 16;
    let mut start = idx;
    for _ in 0..LOOKAROUND {
        if start == 0 {
            break;
        }
        let prev = file.lines[start - 1].code.trim_end();
        let prev_trim = prev.trim();
        if prev_trim.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
        {
            break;
        }
        start -= 1;
    }
    let mut end = idx;
    for _ in 0..LOOKAROUND {
        let code = file.lines[end].code.trim();
        if code.contains(';') || code.ends_with('{') {
            break;
        }
        let Some(next) = file.lines.get(end + 1) else {
            break;
        };
        if next.code.trim().starts_with('}') {
            break; // tail expression: the block closes next
        }
        end += 1;
    }
    let mut text = String::new();
    for l in &file.lines[start..=end] {
        let seg = l.code.trim();
        if seg.is_empty() {
            continue;
        }
        if !text.is_empty() && !seg.starts_with(['.', ')', '?', ',']) {
            text.push(' ');
        }
        text.push_str(seg);
    }
    (text, end + 1)
}

/// If the statement binds the guard of a `method` acquisition to a
/// variable, returns `(name, depth)`; otherwise the acquisition is a
/// statement temporary.
fn guard_binding(stmt: &str, method: &str, depth: i64) -> Option<(String, i64)> {
    let trimmed = stmt.trim_start();
    if !trimmed.starts_with("let ") {
        return None;
    }
    let eq = find_top_level_assign(trimmed)?;
    let (pattern, value) = trimmed.split_at(eq);
    let value = value[1..].trim_start();
    if value.starts_with('*') {
        return None; // the guard is dereferenced and copied, not held
    }
    // The chain after the acquisition must not consume the guard into
    // something else (`.lock().jobs.len()` is a temporary).
    let after_at = stmt.find(method)? + method.len();
    if chain_consumes(&stmt[after_at..]) {
        return None;
    }
    let pattern = pattern.trim_start_matches("let").trim();
    if pattern.starts_with('(') {
        return None; // tuple pattern: not a plain guard binding
    }
    let name: String = pattern
        .trim_start_matches("mut ")
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    Some((name, depth))
}

/// Byte offset of the first top-level `=` that is an assignment (not
/// `==`, `=>`, `<=`, `>=`, `!=`, `+=`, …).
fn find_top_level_assign(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i64;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = if i == 0 { b' ' } else { bytes[i - 1] };
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                if next != b'='
                    && next != b'>'
                    && !matches!(
                        prev,
                        b'=' | b'!'
                            | b'<'
                            | b'>'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the chain following a guard-producing call consumes the guard
/// into something that is not itself the guard (a field access or a
/// non-recovery adapter at the chain's own paren depth).
fn chain_consumes(after: &str) -> bool {
    let bytes = after.as_bytes();
    let mut depth = 0i64;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return false; // left the acquisition expression
                }
            }
            b';' | b'{' if depth == 0 => return false,
            b'.' if depth == 0 => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && {
                    let c = bytes[end];
                    c.is_ascii_alphanumeric() || c == b'_'
                } {
                    end += 1;
                }
                let ident = &after[start..end];
                if !ident.is_empty() && !RECOVERY_ADAPTERS.contains(&ident) {
                    return true;
                }
                i = end;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Whether a wait's result is consumed by its statement.
fn wait_consumed(stmt: &str, pat: &str) -> bool {
    let trimmed = stmt.trim_start();
    if trimmed.starts_with("let ")
        || trimmed.starts_with("match ")
        || trimmed.starts_with("if ")
        || trimmed.starts_with("while ")
        || trimmed.starts_with("return ")
    {
        return true;
    }
    let Some(at) = stmt.find(pat) else {
        return false;
    };
    if find_top_level_assign(&stmt[..at]).is_some() {
        return true;
    }
    // Tail expression: the statement never terminates with `;`.
    !stmt.trim_end().ends_with(';')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyse(text: &str) -> FileAnalysis {
        FileAnalysis::parse("crates/serve/src/x.rs", text)
    }

    #[test]
    fn finds_fn_spans_and_nesting() {
        let a = analyse(
            "pub fn outer() {\n\
             \x20   let x = 1;\n\
             \x20   fn inner() { work(); }\n\
             }\n\
             fn second() {}\n",
        );
        let names: Vec<&str> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "second"]);
        let outer = &a.fns[0];
        assert_eq!((outer.header_line, outer.end_line), (1, 4));
        assert_eq!(a.fn_at(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(a.fn_at(2).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn multi_line_headers_and_bodyless_declarations() {
        let a = analyse(
            "trait T {\n\
             \x20   fn decl(&self) -> u32;\n\
             }\n\
             pub fn long(\n\
             \x20   x: u32,\n\
             ) -> u32 {\n\
             \x20   x\n\
             }\n",
        );
        let names: Vec<&str> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["long"], "declarations have no span: {a:?}");
        assert_eq!(a.fns[0].header_line, 4);
        assert_eq!(a.fns[0].end_line, 8);
    }

    #[test]
    fn lock_identity_and_bound_guard_extent() {
        let a = analyse(
            "fn f(&self) {\n\
             \x20   let mut guard = self.shared.stats.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20   work();\n\
             \x20   drop(guard);\n\
             \x20   more();\n\
             }\n",
        );
        let locks = &a.fns[0].locks;
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].lock, "stats");
        assert_eq!(locks[0].line, 2);
        assert_eq!(locks[0].release_line, 4, "released by drop: {locks:?}");
    }

    #[test]
    fn block_scoped_guard_releases_at_block_end() {
        let a = analyse(
            "fn f(&self) {\n\
             \x20   let view = {\n\
             \x20       let mut guard = self.stats.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20       *guard\n\
             \x20   };\n\
             \x20   self.queue.depth();\n\
             }\n",
        );
        let locks = &a.fns[0].locks;
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].release_line, 5, "block end releases: {locks:?}");
    }

    #[test]
    fn chained_temporary_is_statement_scoped() {
        let a = analyse(
            "fn depth(&self) -> usize {\n\
             \x20   self.state.lock().unwrap_or_else(|p| p.into_inner()).jobs.len()\n\
             }\n\
             fn copy(&self) -> u64 {\n\
             \x20   let snapshot = *self.state.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20   snapshot\n\
             }\n",
        );
        assert_eq!(a.fns[0].locks[0].release_line, 2, "{:?}", a.fns[0].locks);
        assert_eq!(a.fns[1].locks[0].release_line, 5, "{:?}", a.fns[1].locks);
    }

    #[test]
    fn bare_self_lock_is_a_call_not_an_acquisition() {
        let a = analyse(
            "fn close(&self) {\n\
             \x20   self.lock().closed = true;\n\
             }\n",
        );
        assert!(a.fns[0].locks.is_empty(), "{:?}", a.fns[0].locks);
        assert!(
            a.fns[0].calls.iter().any(|c| c.callee == "lock"),
            "{:?}",
            a.fns[0].calls
        );
    }

    #[test]
    fn split_chain_receiver_resolves_via_statement() {
        // rustfmt splits long chains; the receiver sits on the line
        // above the `.lock()` — exactly the scheduler's wrapper idiom.
        let a = analyse(
            "fn lock(&self) -> G {\n\
             \x20   self.state\n\
             \x20       .lock()\n\
             \x20       .unwrap_or_else(|p| p.into_inner())\n\
             }\n",
        );
        let locks = &a.fns[0].locks;
        assert_eq!(locks.len(), 1, "{locks:?}");
        assert_eq!(locks[0].lock, "state");
    }

    #[test]
    fn wait_facts_loop_and_consumption() {
        let a = analyse(
            "fn good(&self) {\n\
             \x20   let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20   loop {\n\
             \x20       if ready() { break; }\n\
             \x20       state = self\n\
             \x20           .available\n\
             \x20           .wait_timeout(state, remaining)\n\
             \x20           .unwrap_or_else(|p| p.into_inner())\n\
             \x20           .0;\n\
             \x20   }\n\
             }\n\
             fn bad(&self, mut g: G) {\n\
             \x20   self.cv.wait(g);\n\
             }\n",
        );
        let good = &a.fns[0].waits[0];
        assert!(good.in_loop && good.consumed, "{good:?}");
        assert_eq!(good.method, "wait_timeout");
        let bad = &a.fns[1].waits[0];
        assert!(!bad.in_loop && !bad.consumed, "{bad:?}");
    }

    #[test]
    fn alloc_call_and_loop_facts() {
        let a = analyse(
            "fn f() {\n\
             \x20   let mut v = Vec::with_capacity(4);\n\
             \x20   while cond() {\n\
             \x20       helper(v.len());\n\
             \x20   }\n\
             \x20   let s = format!(\"x\");\n\
             }\n",
        );
        let f = &a.fns[0];
        let allocs: Vec<&str> = f.allocs.iter().map(|s| s.what).collect();
        assert_eq!(allocs, vec!["Vec::with_capacity", "format!("]);
        assert!(f.calls.iter().any(|c| c.callee == "helper"));
        assert!(f.calls.iter().any(|c| c.callee == "cond"));
        assert_eq!(f.loops, vec![(3, 5)]);
    }

    #[test]
    fn hot_marker_same_line_and_above() {
        let a = analyse(
            "// pinocchio-hot: per-pair kernel\n\
             fn k1() {}\n\
             fn cold() {}\n\
             #[inline]\n\
             // pinocchio-hot\n\
             fn k2() {}\n\
             fn k3() { /* pinocchio-hot */ }\n",
        );
        let hot: Vec<(&str, bool)> = a.fns.iter().map(|f| (f.name.as_str(), f.hot)).collect();
        assert_eq!(
            hot,
            vec![("k1", true), ("cold", false), ("k2", true), ("k3", true)]
        );
    }

    #[test]
    fn test_region_functions_are_marked() {
        let a = analyse(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let v = Vec::new(); }\n\
             }\n",
        );
        assert!(!a.fns[0].in_test);
        assert!(a.fns[1].in_test, "{:?}", a.fns[1]);
    }
}
