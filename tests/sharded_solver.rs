//! Cross-crate integration: the in-process sharded solver is
//! bit-identical to the unsharded solvers over the full property
//! matrix — seeds × thresholds × evaluation kernels × all five
//! algorithms × shard counts — and the serve-layer `ShardedWorld`
//! answers `best`/`top_k`/`influence_of` exactly like one world.

use pinocchio::core::{solve_sharded, Algorithm, EvalKernel, PrimeLs, ShardedPrimeLs, SolveResult};
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::{MovingObject, Point, PowerLawPf};
use pinocchio::serve::{ShardedWorld, World};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TAUS: [f64; 3] = [0.5, 0.7, 0.9];
const KERNELS: [EvalKernel; 3] = [
    EvalKernel::Scalar,
    EvalKernel::Blocked,
    EvalKernel::LogBlocked,
];

fn world(users: usize, candidates: usize, seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, seed ^ 0xABCD);
    (d.objects().to_vec(), cands)
}

fn unsharded(
    objects: &[MovingObject],
    candidates: &[Point],
    tau: f64,
    kernel: EvalKernel,
) -> PrimeLs<PowerLawPf> {
    PrimeLs::builder()
        .objects(objects.to_vec())
        .candidates(candidates.to_vec())
        .probability_function(PowerLawPf::paper_default())
        .tau(tau)
        .evaluation_kernel(kernel)
        .build()
        .unwrap()
}

fn assert_bit_identical(sharded: &SolveResult, reference: &SolveResult, context: &str) {
    assert_eq!(
        (sharded.best_candidate, sharded.max_influence),
        (reference.best_candidate, reference.max_influence),
        "sharded answer diverged ({context})"
    );
    assert_eq!(
        sharded.best_location.x.to_bits(),
        reference.best_location.x.to_bits(),
        "location x diverged ({context})"
    );
    assert_eq!(
        sharded.best_location.y.to_bits(),
        reference.best_location.y.to_bits(),
        "location y diverged ({context})"
    );
    // NA/PIN compute full influence vectors; the merged vector must be
    // elementwise equal, not just argmax-equal.
    if let (Some(merged), Some(exact)) = (&sharded.influences, &reference.influences) {
        assert_eq!(merged, exact, "influence vector diverged ({context})");
    }
}

#[test]
fn sharded_solves_bit_match_across_the_property_matrix() {
    for seed in [11u64, 29] {
        let (objects, candidates) = world(90, 40, seed);
        for tau in TAUS {
            for kernel in KERNELS {
                let problem = unsharded(&objects, &candidates, tau, kernel);
                for algorithm in Algorithm::WITH_EXTENSIONS {
                    let reference = problem.solve(algorithm);
                    for shards in SHARD_COUNTS {
                        let partitioned = ShardedPrimeLs::partition(
                            objects.clone(),
                            candidates.clone(),
                            PowerLawPf::paper_default(),
                            tau,
                            kernel,
                            shards,
                        )
                        .unwrap();
                        let result = solve_sharded(&partitioned, algorithm, 1);
                        assert_bit_identical(
                            &result,
                            &reference,
                            &format!(
                                "seed={seed} tau={tau} kernel={kernel:?} \
                                 algo={algorithm} shards={shards}"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_world_queries_bit_match_one_world() {
    for seed in [3u64, 17] {
        let (objects, candidates) = world(80, 30, seed);
        for tau in TAUS {
            let single = World::from_parts(objects.clone(), candidates.clone(), tau).unwrap();
            for shards in SHARD_COUNTS {
                let sharded = ShardedWorld::from_world(single.clone(), shards).unwrap();
                let context = format!("seed={seed} tau={tau} shards={shards}");
                assert_eq!(
                    sharded.best().unwrap(),
                    single.best().unwrap(),
                    "best diverged ({context})"
                );
                for k in [1usize, 5, candidates.len()] {
                    assert_eq!(
                        sharded.top_k(k).unwrap(),
                        single.top_k(k).unwrap(),
                        "top_k({k}) diverged ({context})"
                    );
                }
                for id in single.candidate_ids() {
                    assert_eq!(
                        sharded.influence_of(id).unwrap(),
                        single.influence_of(id).unwrap(),
                        "influence of {id} diverged ({context})"
                    );
                }
            }
        }
    }
}
