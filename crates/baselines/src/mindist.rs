//! A MIN-DIST reference baseline.
//!
//! MIN-DIST location selection (§2.1: Zhang et al., Qi et al.) picks the
//! location minimising an aggregate distance to the objects rather than
//! maximising influence. The paper classifies it as orthogonal to
//! PRIME-LS; it is included here as a reference point for the
//! effectiveness experiments and the documentation examples.
//!
//! Score of candidate `c`: the mean over objects of the *average*
//! distance from `c` to the object's positions (averaging per object
//! first keeps heavy check-in users from dominating).

use pinocchio_data::MovingObject;
use pinocchio_geo::Point;

/// Computes the MIN-DIST score (lower is better) per candidate.
///
/// # Panics
/// Panics when `candidates` or `objects` is empty.
pub fn min_dist(objects: &[MovingObject], candidates: &[Point]) -> Vec<f64> {
    assert!(!candidates.is_empty(), "MIN-DIST needs candidates");
    assert!(!objects.is_empty(), "MIN-DIST needs objects");
    let mut scores = vec![0.0f64; candidates.len()];
    for object in objects {
        let n = object.position_count() as f64;
        for (j, c) in candidates.iter().enumerate() {
            let sum: f64 = object.positions().iter().map(|p| p.euclidean(c)).sum();
            scores[j] += sum / n;
        }
    }
    let r = objects.len() as f64;
    for s in &mut scores {
        *s /= r;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_ascending;

    #[test]
    fn central_candidate_wins() {
        let objects = vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
            MovingObject::new(1, vec![Point::new(10.0, 0.0)]),
        ];
        let candidates = vec![
            Point::new(5.0, 0.0),  // centre: avg dist 5
            Point::new(0.0, 0.0),  // edge: avg dist 5 — tie!
            Point::new(20.0, 0.0), // far: avg dist 15
        ];
        let scores = min_dist(&objects, &candidates);
        assert!((scores[0] - 5.0).abs() < 1e-12);
        assert!((scores[1] - 5.0).abs() < 1e-12);
        assert!((scores[2] - 15.0).abs() < 1e-12);
        assert_eq!(rank_ascending(&scores), vec![0, 1, 2]);
    }

    #[test]
    fn per_object_averaging_prevents_heavy_user_dominance() {
        // Object 0 has 100 positions at x=0; object 1 has 1 position at
        // x=10. A candidate at x=10 should not be dragged to x=0 by the
        // position count alone.
        let objects = vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0); 100]),
            MovingObject::new(1, vec![Point::new(10.0, 0.0)]),
        ];
        let candidates = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let scores = min_dist(&objects, &candidates);
        assert!((scores[0] - 5.0).abs() < 1e-12);
        assert!((scores[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs objects")]
    fn empty_objects_rejected() {
        let _ = min_dist(&[], &[Point::ORIGIN]);
    }
}
