//! The TCP server: accept loop, per-connection reader/writer threads,
//! the single state-writer thread, and the query worker pool.
//!
//! ## Thread topology
//!
//! ```text
//! accept ──spawns──► connection reader ──try_submit──► AdmissionQueue ──► workers (N)
//!                        │        ▲                                          │
//!                        │        └────────── reply mpsc ◄───────────────────┘
//!                        │ try_send
//!                        ▼
//!                    ingest sync_channel ──► writer (1) ──publish──► epoch chain
//! ```
//!
//! * **Readers never block on admission**: a full queue sheds the
//!   request with a typed `overloaded` response.
//! * **Workers batch**: each drained batch is answered against one
//!   epoch snapshot; from-scratch solves are shared across the batch.
//! * **The writer is unique**: updates apply in arrival order to a
//!   clone of the current world, published as the next epoch.
//! * **Shutdown drains**: the `shutdown` wire command (or
//!   [`ServerHandle::shutdown`]) stops admission; every already-admitted
//!   request is still answered before [`ServerHandle::join`] returns.
//!   Worker panics propagate to `join` via `resume_unwind`, mirroring
//!   the discipline of `pinocchio_core::parallel`.

use crate::ingest::{SolveOutcome, World};
use crate::scheduler::{AdmissionQueue, BatchWait, Job, SubmitError};
use crate::shard::ShardedWorld;
use crate::stats::ServeStats;
use crate::store::{Publisher, Reader, Snapshot};
use crate::wire::{self, ErrorCode, QueryOp, Request, UpdateOp, WireError};
use pinocchio_core::Algorithm;
use serde_json::{json, Map};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to poll the shutdown flag.
const POLL_QUANTUM: Duration = Duration::from_millis(25);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_QUANTUM: Duration = Duration::from_millis(10);

/// How long an idle worker waits for jobs before waking to advance its
/// epoch cursor (and re-check for queue closure).
const WORKER_IDLE_QUANTUM: Duration = Duration::from_millis(100);

/// Hard cap on one request line's byte length. A connection that exceeds
/// it without sending a newline gets a `malformed` rejection and is
/// closed (framing past the cap is unrecoverable), so a client streaming
/// newline-free bytes cannot grow a buffer without bound.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Server tunables. `Default` gives sensible test/CI values; the CLI
/// exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Bounded admission-queue capacity (also the ingest channel bound).
    pub queue_capacity: usize,
    /// Maximum jobs a worker drains per batch.
    pub batch_max: usize,
    /// Query worker threads.
    pub workers: usize,
    /// Threads handed to the parallel solvers for `solve` requests.
    pub solve_threads: usize,
    /// In-process shard count. `1` (the default) serves the world
    /// unsharded; larger values partition objects across shard worlds
    /// by a stable hash of the wire object id. Shard-transparent on the
    /// wire — answers are bit-identical for every value.
    pub shards: usize,
    /// A connection with no complete request line for this long is
    /// closed.
    pub idle_timeout: Duration,
    /// Write timeout on response sockets.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 256,
            batch_max: 16,
            workers: 2,
            solve_threads: 2,
            shards: 1,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// State shared by every server thread.
struct Shared {
    queue: AdmissionQueue,
    stats: Mutex<ServeStats>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn bump(&self, f: impl FnOnce(&mut ServeStats)) {
        let mut guard = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard);
    }

    fn draining(&self) -> bool {
        // ordering: pairs with the Release store in `begin_shutdown`; the
        // flag only gates admission — consistency of served state comes
        // from the epoch chain, not from this flag.
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        // ordering: Release so that threads observing the flag (Acquire
        // loads in `draining`) also observe everything done before the
        // shutdown request; see `draining` for why nothing else rides on
        // this flag.
        self.shutdown.store(true, Ordering::Release);
    }
}

/// One admitted update travelling to the writer thread.
struct UpdateMsg {
    id: Option<u64>,
    op: UpdateOp,
    reply: Sender<String>,
}

/// A running server. Obtain with [`serve`]; stop with
/// [`ServerHandle::shutdown`] + [`ServerHandle::join`] (or a client's
/// `shutdown` wire command followed by `join`).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ingest: Option<SyncSender<UpdateMsg>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts draining: no new requests are admitted. Idempotent;
    /// equivalent to a client sending the `shutdown` wire command.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits until a drain is triggered — by a client's `shutdown` wire
    /// command or a prior [`Self::shutdown`] call — then waits for it to
    /// finish and returns the final merged counters. Joins, in order:
    /// the accept thread (which joins every connection), the worker pool
    /// (after closing the admission queue), and the writer. A panic on
    /// any server thread resumes here.
    pub fn join(mut self) -> ServeStats {
        if let Some(accept) = self.accept.take() {
            join_thread(accept);
        }
        // Connections are gone, so no submission can race the close; the
        // workers drain what was admitted and then see `None`.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            join_thread(worker);
        }
        // Dropping the last ingest sender disconnects the writer's
        // channel once it has drained every queued update.
        drop(self.ingest.take());
        if let Some(writer) = self.writer.take() {
            join_thread(writer);
        }
        let mut stats = *self.shared.stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.queue_high_water = stats.queue_high_water.max(self.shared.queue.high_water());
        stats
    }
}

fn join_thread<T>(handle: JoinHandle<T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Binds and spawns the full server over `world`, partitioned across
/// [`ServerConfig::shards`] in-process shard worlds. Returns once the
/// listener is live; all serving happens on background threads.
pub fn serve(world: World, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let sharded = ShardedWorld::from_world(world, config.shards)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
    let (publisher, reader) = Publisher::new(sharded);
    let shared = Arc::new(Shared {
        queue: AdmissionQueue::new(config.queue_capacity),
        stats: Mutex::new(ServeStats::default()),
        shutdown: AtomicBool::new(false),
        config: config.clone(),
    });

    let (ingest_tx, ingest_rx) = std::sync::mpsc::sync_channel(config.queue_capacity);
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || writer_loop(publisher, ingest_rx, &shared))
    };
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let reader = reader.clone();
            std::thread::spawn(move || worker_loop(&shared, reader))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        let ingest = ingest_tx.clone();
        let reader = reader.clone();
        std::thread::spawn(move || accept_loop(&listener, &shared, &ingest, reader))
    };

    Ok(ServerHandle {
        addr,
        shared,
        ingest: Some(ingest_tx),
        accept: Some(accept),
        workers,
        writer: Some(writer),
    })
}

// ---- accept + connections ---------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    ingest: &SyncSender<UpdateMsg>,
    mut reader: Reader<ShardedWorld>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.draining() {
        // Keep this long-lived cursor at the chain head: the store
        // reclaims snapshots only behind the oldest cursor, so a parked
        // cursor would pin every epoch published for the server's
        // lifetime. Advancing here also hands new connections a reader
        // that starts at the newest epoch instead of epoch 0.
        let _ = reader.latest();
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are single short lines; without nodelay a
                // serial request/response client stalls ~40 ms per
                // round-trip on Nagle + delayed ACK.
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let ingest = ingest.clone();
                let reader = reader.clone();
                connections.push(std::thread::spawn(move || {
                    connection_loop(stream, &shared, &ingest, reader);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_QUANTUM),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for connection in connections {
        join_thread(connection);
    }
}

fn connection_loop(
    stream: TcpStream,
    shared: &Arc<Shared>,
    ingest: &SyncSender<UpdateMsg>,
    mut epoch_reader: Reader<ShardedWorld>,
) {
    if stream.set_read_timeout(Some(POLL_QUANTUM)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(Some(shared.config.write_timeout));

    // All responses for this connection funnel through one writer
    // thread, so pipelined requests cannot interleave partial lines.
    let (reply_tx, reply_rx) = channel::<String>();
    let response_writer = std::thread::spawn(move || write_loop(write_half, &reply_rx));

    let mut buf_reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    while !shared.draining() {
        // `line` persists across timeouts: a poll wake-up mid-line keeps
        // the partial bytes — raw, so a timeout landing inside a
        // multi-byte UTF-8 character cannot discard them — and keeps
        // appending.
        match read_bounded_line(&mut buf_reader, &mut line) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line) => {
                match std::str::from_utf8(&line) {
                    Ok(text) => {
                        let trimmed = text.trim();
                        if !trimmed.is_empty() {
                            handle_line(trimmed, shared, ingest, &mut epoch_reader, &reply_tx);
                        }
                    }
                    Err(_) => {
                        shared.bump(|s| {
                            s.lines_received += 1;
                            s.malformed += 1;
                        });
                        let e = WireError::new(
                            ErrorCode::Malformed,
                            "request line is not valid UTF-8".to_string(),
                        );
                        let _ = reply_tx.send(wire::response_err(None, &e));
                    }
                }
                line.clear();
                last_activity = Instant::now();
            }
            Ok(LineRead::TooLong) => {
                shared.bump(|s| {
                    s.lines_received += 1;
                    s.malformed += 1;
                });
                let e = WireError::new(
                    ErrorCode::Malformed,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let _ = reply_tx.send(wire::response_err(None, &e));
                break;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Advance this connection's cursor while idle so it never
                // pins old epochs (reclamation trails the oldest cursor).
                let _ = epoch_reader.latest();
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // In-flight jobs still hold reply senders; the response writer exits
    // only after the last of them is answered, so draining never drops
    // an admitted request's response.
    drop(reply_tx);
    join_thread(response_writer);
}

/// Outcome of one [`read_bounded_line`] call.
enum LineRead {
    /// A complete `\n`-terminated line (or the final unterminated line
    /// before EOF) is in the buffer.
    Line,
    /// Clean EOF with no buffered bytes.
    Eof,
    /// The buffer exceeded [`MAX_LINE_BYTES`] before a newline arrived.
    TooLong,
}

/// Reads one newline-terminated line into `line` as raw bytes.
///
/// Unlike `BufRead::read_line`, a read timeout leaves every byte read so
/// far in `line` for the next poll — even mid UTF-8 character — and the
/// buffer is capped: growth past [`MAX_LINE_BYTES`] reports `TooLong`
/// instead of continuing unbounded.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    loop {
        let (used, complete) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    line.extend_from_slice(&available[..=newline]);
                    (newline + 1, true)
                }
                None => {
                    line.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(used);
        if complete {
            return Ok(LineRead::Line);
        }
        if line.len() > MAX_LINE_BYTES {
            return Ok(LineRead::TooLong);
        }
    }
}

fn write_loop(mut stream: TcpStream, replies: &Receiver<String>) {
    while let Ok(response) = replies.recv() {
        if stream
            .write_all(response.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    ingest: &SyncSender<UpdateMsg>,
    epoch_reader: &mut Reader<ShardedWorld>,
    reply: &Sender<String>,
) {
    shared.bump(|s| s.lines_received += 1);
    let request = match wire::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            shared.bump(|s| s.malformed += 1);
            let _ = reply.send(wire::response_err(None, &e));
            return;
        }
    };
    match request {
        Request::Shutdown { id } => {
            shared.bump(|s| s.control += 1);
            shared.begin_shutdown();
            let mut body = Map::new();
            body.insert("draining".to_string(), json!(true));
            let _ = reply.send(wire::response_ok(id, epoch_reader.latest().epoch, body));
        }
        Request::Update { id, op } => {
            if shared.draining() {
                reject_draining(shared, reply, id);
                return;
            }
            let msg = UpdateMsg {
                id,
                op,
                reply: reply.clone(),
            };
            match ingest.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(msg)) => {
                    shared.bump(|s| s.shed += 1);
                    let e = WireError::new(
                        ErrorCode::Overloaded,
                        format!(
                            "ingest queue full ({} pending updates); retry later",
                            shared.config.queue_capacity
                        ),
                    );
                    let _ = reply.send(wire::response_err(msg.id, &e));
                }
                Err(TrySendError::Disconnected(msg)) => {
                    let _ = msg; // writer is gone: the server is draining
                    reject_draining(shared, reply, id);
                }
            }
        }
        Request::Query { id, op } => {
            if shared.draining() {
                reject_draining(shared, reply, id);
                return;
            }
            let job = Job {
                id,
                op,
                enqueued: Instant::now(),
                reply: reply.clone(),
            };
            match shared.queue.try_submit(job) {
                Ok(()) => {}
                Err(e @ SubmitError::Overloaded { .. }) => {
                    shared.bump(|s| s.shed += 1);
                    let _ = reply.send(wire::response_err(id, &WireError::from(e)));
                }
                Err(SubmitError::Closed) => reject_draining(shared, reply, id),
            }
        }
    }
}

fn reject_draining(shared: &Arc<Shared>, reply: &Sender<String>, id: Option<u64>) {
    shared.bump(|s| s.rejected_shutdown += 1);
    let e = WireError::new(ErrorCode::ShuttingDown, "server is draining".to_string());
    let _ = reply.send(wire::response_err(id, &e));
}

// ---- the writer thread -------------------------------------------------

fn writer_loop(
    mut publisher: Publisher<ShardedWorld>,
    updates: Receiver<UpdateMsg>,
    shared: &Shared,
) {
    while let Ok(first) = updates.recv() {
        // Batch whatever else is already queued (bounded by batch_max)
        // so one world clone and one epoch publication cover them all.
        let mut batch = vec![first];
        while batch.len() < shared.config.batch_max.max(1) {
            match updates.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        let mut world = publisher.current().state.clone();
        let mut applied = 0u64;
        let mut errors = 0u64;
        let outcomes: Vec<Result<(), WireError>> = batch
            .iter()
            .map(|msg| {
                let outcome = world.apply(&msg.op);
                match outcome {
                    Ok(()) => applied += 1,
                    Err(_) => errors += 1,
                }
                outcome
            })
            .collect();
        // Publish once per batch; a batch of pure failures changes
        // nothing and publishes nothing.
        let epoch = if applied > 0 {
            publisher.publish(world)
        } else {
            publisher.epoch()
        };
        for (msg, outcome) in batch.into_iter().zip(outcomes) {
            let response = match outcome {
                Ok(()) => {
                    let mut body = Map::new();
                    body.insert("applied".to_string(), json!(true));
                    wire::response_ok(msg.id, epoch, body)
                }
                Err(e) => wire::response_err(msg.id, &e),
            };
            let _ = msg.reply.send(response);
        }
        shared.bump(|s| {
            s.updates_applied += applied;
            s.update_errors += errors;
            if applied > 0 {
                s.epochs_published += 1;
            }
        });
    }
}

// ---- the worker pool ---------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, mut reader: Reader<ShardedWorld>) {
    loop {
        let batch = match shared
            .queue
            .next_batch_timeout(shared.config.batch_max, WORKER_IDLE_QUANTUM)
        {
            BatchWait::Batch(batch) => batch,
            BatchWait::TimedOut => {
                // A worker parked between batches would otherwise pin
                // every epoch published since its last one; keep its
                // cursor at the head while the queue is quiet.
                let _ = reader.latest();
                continue;
            }
            BatchWait::Closed => break,
        };
        // One snapshot per batch: every job in it is answered on the
        // same epoch, and `solve` results are shared across the batch.
        let snapshot = reader.latest();
        let mut local = ServeStats {
            batches: 1,
            batched_jobs: batch.len() as u64,
            ..ServeStats::default()
        };
        let mut solve_memo: Vec<(Algorithm, Result<SolveOutcome, WireError>)> = Vec::new();
        for job in batch {
            let response = answer(&job, &snapshot, &mut solve_memo, &mut local, shared);
            let micros = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
            local.record_latency(micros);
            let _ = job.reply.send(response);
        }
        shared.bump(|s| *s += local);
    }
}

fn answer(
    job: &Job,
    snapshot: &Snapshot<ShardedWorld>,
    solve_memo: &mut Vec<(Algorithm, Result<SolveOutcome, WireError>)>,
    local: &mut ServeStats,
    shared: &Arc<Shared>,
) -> String {
    let world = &snapshot.state;
    let outcome: Result<Map, WireError> = match job.op {
        QueryOp::Best => {
            local.queries_best += 1;
            world.best().and_then(|best| match best {
                Some((candidate, location, influence)) => {
                    let mut body = Map::new();
                    body.insert("candidate".to_string(), json!(candidate));
                    body.insert("x".to_string(), json!(location.x));
                    body.insert("y".to_string(), json!(location.y));
                    body.insert("influence".to_string(), json!(influence));
                    Ok(body)
                }
                None => Err(WireError::new(
                    ErrorCode::Empty,
                    "no live candidates".to_string(),
                )),
            })
        }
        QueryOp::TopK { k } => {
            local.queries_top_k += 1;
            world.top_k(k).map(|entries| {
                let rendered: Vec<serde_json::Value> = entries
                    .into_iter()
                    .map(|(candidate, location, influence)| {
                        json!({
                            "candidate": candidate,
                            "x": location.x,
                            "y": location.y,
                            "influence": influence,
                        })
                    })
                    .collect();
                let mut body = Map::new();
                body.insert("entries".to_string(), serde_json::Value::Array(rendered));
                body
            })
        }
        QueryOp::InfluenceOf { candidate } => {
            local.queries_influence_of += 1;
            world.influence_of(candidate).map(|influence| {
                let mut body = Map::new();
                body.insert("candidate".to_string(), json!(candidate));
                body.insert("influence".to_string(), json!(influence));
                body
            })
        }
        QueryOp::Solve { algorithm } => {
            local.queries_solve += 1;
            let memoised = solve_memo.iter().find(|(a, _)| *a == algorithm);
            let (result, from_batch_mate) = match memoised {
                Some((_, result)) => (result.clone(), true),
                None => {
                    let result = world.solve(algorithm, shared.config.solve_threads);
                    local.solve_runs += 1;
                    solve_memo.push((algorithm, result.clone()));
                    (result, false)
                }
            };
            result.map(|o| {
                let mut body = Map::new();
                body.insert("algorithm".to_string(), json!(format!("{:?}", o.algorithm)));
                body.insert("candidate".to_string(), json!(o.candidate));
                body.insert("x".to_string(), json!(o.location.x));
                body.insert("y".to_string(), json!(o.location.y));
                body.insert("influence".to_string(), json!(o.influence));
                body.insert("shared".to_string(), json!(from_batch_mate));
                body
            })
        }
        QueryOp::Heatmap { resolution } => {
            local.queries_heatmap += 1;
            world.heatmap(resolution).map(|h| {
                // Stream the grid as bounded batch lines through the
                // connection's writer thread. The reply channel is
                // unbounded and the writer breaks on the first failed
                // write, so a slow or mid-stream-disconnected client
                // never blocks this worker — the remaining sends just
                // land in a channel whose receiver drains and drops
                // them (see `write_loop`).
                let mut batches = 0u64;
                for (i, chunk) in h.tiles.chunks(wire::TILES_PER_BATCH).enumerate() {
                    let tiles: Vec<serde_json::Value> = chunk
                        .iter()
                        .map(|t| json!([t.lo, t.hi, t.sample]))
                        .collect();
                    let mut body = Map::new();
                    body.insert("op".to_string(), json!("heatmap"));
                    body.insert("offset".to_string(), json!(i * wire::TILES_PER_BATCH));
                    body.insert("tiles".to_string(), serde_json::Value::Array(tiles));
                    let _ = job
                        .reply
                        .send(wire::response_ok(job.id, snapshot.epoch, body));
                    batches += 1;
                }
                // The terminal line is the worker's normal return value;
                // `done` appears on it and nowhere else.
                let mut body = Map::new();
                body.insert("op".to_string(), json!("heatmap"));
                body.insert("done".to_string(), json!(true));
                body.insert("resolution".to_string(), json!(h.resolution));
                body.insert(
                    "frame".to_string(),
                    json!([
                        h.frame.lo().x,
                        h.frame.lo().y,
                        h.frame.hi().x,
                        h.frame.hi().y
                    ]),
                );
                body.insert("tiles_total".to_string(), json!(h.tiles.len()));
                body.insert("batches".to_string(), json!(batches));
                body.insert(
                    "cells_resolved_ia".to_string(),
                    json!(h.stats.cells_resolved_ia),
                );
                body.insert(
                    "cells_resolved_nib".to_string(),
                    json!(h.stats.cells_resolved_nib),
                );
                body.insert("cells_refined".to_string(), json!(h.stats.cells_refined));
                body
            })
        }
        QueryOp::TopRegion { k, resolution } => {
            local.queries_top_region += 1;
            world.top_region(k, resolution).map(|r| {
                let cells: Vec<serde_json::Value> = r
                    .cells
                    .iter()
                    .map(|c| {
                        json!({
                            "tile": c.tile,
                            "x": c.center.x,
                            "y": c.center.y,
                            "influence": c.influence,
                        })
                    })
                    .collect();
                let mut body = Map::new();
                body.insert("op".to_string(), json!("top_region"));
                body.insert("resolution".to_string(), json!(r.resolution));
                body.insert("cells".to_string(), serde_json::Value::Array(cells));
                body
            })
        }
        QueryOp::Stats => {
            local.queries_stats += 1;
            // Flush this worker's partial first so the report includes
            // the current batch up to this job.
            let view = {
                let mut guard = shared.stats.lock().unwrap_or_else(|p| p.into_inner());
                *guard += std::mem::take(local);
                *guard
            };
            let mut view = view;
            view.queue_high_water = view.queue_high_water.max(shared.queue.high_water());
            let mut body = Map::new();
            body.insert("stats".to_string(), view.to_json());
            body.insert("queue_depth".to_string(), json!(shared.queue.depth()));
            // Per-shard counters of the answering epoch: topology is
            // wire-transparent everywhere else, but operators need to
            // see the partition balance and routing volume.
            let shards: Vec<serde_json::Value> = world
                .shard_summaries()
                .iter()
                .map(|s| {
                    json!({
                        "shard": s.shard,
                        "objects": s.objects,
                        "candidates": s.candidates,
                        "updates_routed": s.updates_routed,
                    })
                })
                .collect();
            body.insert("shards".to_string(), serde_json::Value::Array(shards));
            Ok(body)
        }
        QueryOp::Ping => {
            local.queries_ping += 1;
            Ok(Map::new())
        }
    };
    match outcome {
        Ok(body) => wire::response_ok(job.id, snapshot.epoch, body),
        Err(e) => wire::response_err(job.id, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_geo::Point;
    use serde_json::Value;
    use std::io::BufRead;

    /// Lockstep NDJSON client: one request out, one response in.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone");
            Client {
                reader: BufReader::new(stream),
                writer,
            }
        }

        fn roundtrip(&mut self, request: &str) -> Value {
            self.writer
                .write_all(request.as_bytes())
                .and_then(|()| self.writer.write_all(b"\n"))
                .expect("write request");
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            serde_json::from_str(line.trim()).expect("valid response JSON")
        }

        /// Sends one request and reads response lines until a terminal
        /// line arrives (one with `"done":true`, or any error / plain
        /// single-line response). Lockstep, so every line read belongs
        /// to the one in-flight request.
        fn stream(&mut self, request: &str) -> Vec<Value> {
            self.writer
                .write_all(request.as_bytes())
                .and_then(|()| self.writer.write_all(b"\n"))
                .expect("write request");
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).expect("read response");
                let v: Value = serde_json::from_str(line.trim()).expect("valid response JSON");
                let terminal = v.get("ok").and_then(Value::as_bool) != Some(true)
                    || v.get("done").and_then(Value::as_bool) == Some(true)
                    || v.get("tiles").is_none();
                lines.push(v);
                if terminal {
                    return lines;
                }
            }
        }
    }

    fn test_world() -> World {
        let mut world = World::new(0.7);
        for (id, (x, y)) in [(0.0, 0.0), (10.0, 0.0), (0.2, 0.1)].iter().enumerate() {
            world
                .apply(&UpdateOp::InsertCandidate {
                    candidate: id as u64,
                    location: Point::new(*x, *y),
                })
                .expect("insert candidate");
        }
        for id in 0..4u64 {
            world
                .apply(&UpdateOp::InsertObject {
                    object: id,
                    positions: vec![Point::new(0.05 * id as f64, 0.0)],
                })
                .expect("insert object");
        }
        world
    }

    fn get_u64(v: &Value, key: &str) -> u64 {
        v.get(key).and_then(Value::as_u64).unwrap_or_else(|| {
            panic!("missing u64 field {key} in {v}");
        })
    }

    #[test]
    fn end_to_end_queries_updates_and_shutdown() {
        let handle = serve(test_world(), ServerConfig::default()).expect("bind");
        let mut client = Client::connect(handle.addr());

        let pong = client.roundtrip(r#"{"v":1,"id":1,"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(get_u64(&pong, "epoch"), 0);

        let best = client.roundtrip(r#"{"v":1,"id":2,"op":"best"}"#);
        let initial_best = get_u64(&best, "candidate");
        let initial_influence = get_u64(&best, "influence");
        assert!(initial_influence >= 1);

        // Every algorithm agrees with `best`, bit for bit.
        for algo in ["na", "pin", "pin-vo", "pin-vo*", "pin-join"] {
            let solved = client.roundtrip(&format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#));
            assert_eq!(get_u64(&solved, "candidate"), initial_best, "{algo}");
            assert_eq!(get_u64(&solved, "influence"), initial_influence, "{algo}");
        }

        // A burst of objects near candidate 1 flips the optimum.
        for id in 10..16u64 {
            let ack = client.roundtrip(&format!(
                r#"{{"v":1,"id":{id},"op":"insert_object","object":{id},"positions":[[10.0,0.05]]}}"#
            ));
            assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true), "{ack}");
            assert!(get_u64(&ack, "epoch") >= 1);
        }
        let best = client.roundtrip(r#"{"v":1,"op":"best"}"#);
        assert_eq!(get_u64(&best, "candidate"), 1);
        assert_eq!(get_u64(&best, "influence"), 6);

        // top_k sees all three candidates, ranked.
        let ranking = client.roundtrip(r#"{"v":1,"op":"top_k","k":10}"#);
        let entries = ranking
            .get("entries")
            .and_then(Value::as_array)
            .expect("entries");
        assert_eq!(entries.len(), 3);
        assert_eq!(get_u64(&entries[0], "candidate"), 1);

        // Typed errors reach the client.
        let unknown = client.roundtrip(r#"{"v":1,"op":"influence_of","candidate":99}"#);
        assert_eq!(unknown.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            unknown
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("unknown_candidate")
        );
        let dup =
            client.roundtrip(r#"{"v":1,"op":"insert_object","object":10,"positions":[[0.0,0.0]]}"#);
        assert_eq!(
            dup.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("duplicate_object")
        );
        let garbage = client.roundtrip("not json at all");
        assert_eq!(
            garbage
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("malformed")
        );

        // In-band stats reflect the traffic so far.
        let stats = client.roundtrip(r#"{"v":1,"op":"stats"}"#);
        let block = stats.get("stats").expect("stats body");
        assert!(get_u64(block, "lines_received") >= 15);
        assert_eq!(get_u64(block, "updates_applied"), 6);
        assert_eq!(get_u64(block, "update_errors"), 1);
        assert_eq!(get_u64(block, "malformed"), 1);
        assert!(get_u64(block, "epochs_published") >= 1);

        // Graceful shutdown: the command acks, then the server drains.
        let ack = client.roundtrip(r#"{"v":1,"id":99,"op":"shutdown"}"#);
        assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
        let final_stats = handle.join();
        assert_eq!(final_stats.accounted_lines(), final_stats.lines_received);
        assert_eq!(final_stats.queries_completed(), final_stats.latency_total());
        assert_eq!(final_stats.control, 1);
    }

    #[test]
    fn sharded_server_matches_unsharded_and_reports_partition_stats() {
        // The same world behind a 1-shard and a 4-shard server, fed the
        // same update stream: every answer must agree field for field
        // (the wire protocol is shard-transparent), and only the stats
        // body reveals the partition.
        let handle1 = serve(test_world(), ServerConfig::default()).expect("bind");
        let handle4 = serve(
            test_world(),
            ServerConfig {
                shards: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut c1 = Client::connect(handle1.addr());
        let mut c4 = Client::connect(handle4.addr());

        let inserted = 20u64;
        for id in 20..20 + inserted {
            let req = format!(
                r#"{{"v":1,"op":"insert_object","object":{id},"positions":[[{}.0,0.5]]}}"#,
                id % 12
            );
            for (label, client) in [("unsharded", &mut c1), ("sharded", &mut c4)] {
                let ack = client.roundtrip(&req);
                assert_eq!(
                    ack.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "{label}: {ack}"
                );
            }
        }

        for req in [
            r#"{"v":1,"op":"best"}"#,
            r#"{"v":1,"op":"top_k","k":3}"#,
            r#"{"v":1,"op":"influence_of","candidate":2}"#,
        ] {
            let a = c1.roundtrip(req);
            let b = c4.roundtrip(req);
            assert_eq!(a, b, "answers diverged for {req}");
        }
        for algo in ["na", "pin", "pin-vo", "pin-vo*", "pin-join"] {
            let req = format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#);
            let a = c1.roundtrip(&req);
            let b = c4.roundtrip(&req);
            // The `shared` flag is batch-timing-dependent; every
            // answer-bearing field must agree bit for bit.
            for field in ["candidate", "influence", "epoch"] {
                assert_eq!(get_u64(&a, field), get_u64(&b, field), "{algo} {field}");
            }
            for field in ["x", "y"] {
                let fa = a.get(field).and_then(Value::as_f64).expect("f64 field");
                let fb = b.get(field).and_then(Value::as_f64).expect("f64 field");
                assert_eq!(fa.to_bits(), fb.to_bits(), "{algo} {field}");
            }
            assert_eq!(
                a.get("algorithm").and_then(Value::as_str),
                b.get("algorithm").and_then(Value::as_str)
            );
        }

        let stats = c4.roundtrip(r#"{"v":1,"op":"stats"}"#);
        let shards = stats
            .get("shards")
            .and_then(Value::as_array)
            .expect("stats body lists shards");
        assert_eq!(shards.len(), 4);
        let objects: u64 = shards.iter().map(|s| get_u64(s, "objects")).sum();
        assert_eq!(objects, 4 + inserted, "partition covers every object");
        let routed: u64 = shards.iter().map(|s| get_u64(s, "updates_routed")).sum();
        assert_eq!(routed, inserted, "every object update was routed once");
        for s in shards {
            assert_eq!(get_u64(s, "candidates"), 3, "broadcast candidate set");
        }
        // The unsharded server reports the trivial 1-shard topology.
        let stats = c1.roundtrip(r#"{"v":1,"op":"stats"}"#);
        let shards = stats
            .get("shards")
            .and_then(Value::as_array)
            .expect("stats body lists shards");
        assert_eq!(shards.len(), 1);
        assert_eq!(get_u64(&shards[0], "objects"), 4 + inserted);

        for handle in [handle1, handle4] {
            handle.shutdown();
            let stats = handle.join();
            assert_eq!(stats.updates_applied, inserted);
            assert_eq!(stats.accounted_lines(), stats.lines_received);
        }
    }

    #[test]
    fn heatmap_streams_batches_with_id_echo_and_a_terminal_done_line() {
        let handle = serve(test_world(), ServerConfig::default()).expect("bind");
        let mut client = Client::connect(handle.addr());

        let lines = client.stream(r#"{"v":1,"id":42,"op":"heatmap","resolution":64}"#);
        let (terminal, batches) = lines.split_last().expect("at least the terminal line");
        // 64×64 = 4096 tiles in ceil(4096/512) = 8 batches.
        assert_eq!(batches.len(), 8);
        let mut tiles_seen = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            assert_eq!(batch.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(get_u64(batch, "id"), 42, "id echoed on every batch");
            assert_eq!(get_u64(batch, "epoch"), 0, "epoch echoed on every batch");
            assert_eq!(batch.get("op").and_then(Value::as_str), Some("heatmap"));
            assert_eq!(get_u64(batch, "offset") as usize, i * 512);
            assert!(
                batch.get("done").is_none(),
                "done only on the terminal line"
            );
            let tiles = batch
                .get("tiles")
                .and_then(Value::as_array)
                .expect("tiles array");
            assert!(tiles.len() <= 512);
            tiles_seen += tiles.len();
            for tile in tiles {
                let t = tile.as_array().expect("[lo,hi,sample] triple");
                assert_eq!(t.len(), 3);
                let (lo, hi, sample) = (
                    t[0].as_u64().unwrap(),
                    t[1].as_u64().unwrap(),
                    t[2].as_u64().unwrap(),
                );
                assert!(lo <= sample && sample <= hi, "band must contain the sample");
            }
        }
        assert_eq!(terminal.get("done").and_then(Value::as_bool), Some(true));
        assert_eq!(get_u64(terminal, "id"), 42);
        assert_eq!(get_u64(terminal, "resolution"), 64);
        assert_eq!(get_u64(terminal, "tiles_total") as usize, tiles_seen);
        assert_eq!(get_u64(terminal, "batches"), 8);
        assert_eq!(tiles_seen, 64 * 64);
        let frame = terminal
            .get("frame")
            .and_then(Value::as_array)
            .expect("frame [x0,y0,x1,y1]");
        assert_eq!(frame.len(), 4);

        // top_region is a plain single-line response.
        let region = client.roundtrip(r#"{"v":1,"id":43,"op":"top_region","k":3,"resolution":64}"#);
        assert_eq!(region.get("ok").and_then(Value::as_bool), Some(true));
        let cells = region
            .get("cells")
            .and_then(Value::as_array)
            .expect("cells");
        assert_eq!(cells.len(), 3);
        for pair in cells.windows(2) {
            assert!(
                get_u64(&pair[0], "influence") >= get_u64(&pair[1], "influence"),
                "cells ranked influence-descending"
            );
        }

        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.queries_heatmap, 1, "one query, however many batches");
        assert_eq!(stats.queries_top_region, 1);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
        assert_eq!(stats.queries_completed(), stats.latency_total());
    }

    #[test]
    fn sharded_heatmap_answers_match_the_unsharded_server() {
        let handle1 = serve(test_world(), ServerConfig::default()).expect("bind");
        let handle4 = serve(
            test_world(),
            ServerConfig {
                shards: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut c1 = Client::connect(handle1.addr());
        let mut c4 = Client::connect(handle4.addr());

        let collect_tiles = |lines: &[Value]| -> Vec<(u64, u64, u64)> {
            lines[..lines.len() - 1]
                .iter()
                .flat_map(|batch| {
                    batch
                        .get("tiles")
                        .and_then(Value::as_array)
                        .expect("tiles")
                        .iter()
                        .map(|t| {
                            let t = t.as_array().expect("triple");
                            (
                                t[0].as_u64().unwrap(),
                                t[1].as_u64().unwrap(),
                                t[2].as_u64().unwrap(),
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let req = r#"{"v":1,"id":1,"op":"heatmap","resolution":32}"#;
        let a = c1.stream(req);
        let b = c4.stream(req);
        assert_eq!(
            a.last().unwrap().get("frame"),
            b.last().unwrap().get("frame"),
            "global frame is shard-transparent"
        );
        let ta = collect_tiles(&a);
        let tb = collect_tiles(&b);
        assert_eq!(ta.len(), 32 * 32);
        assert_eq!(ta.len(), tb.len());
        for (i, (x, y)) in ta.iter().zip(&tb).enumerate() {
            assert_eq!(x.2, y.2, "tile {i}: samples are exact on both");
            assert!(x.0 <= x.2 && x.2 <= x.1, "tile {i}: unsharded band sound");
            assert!(y.0 <= y.2 && y.2 <= y.1, "tile {i}: sharded band sound");
        }

        // top_region is exact, so the whole response body must agree.
        let req = r#"{"v":1,"op":"top_region","k":5,"resolution":32}"#;
        let a = c1.roundtrip(req);
        let b = c4.roundtrip(req);
        assert_eq!(a.get("cells"), b.get("cells"));
        assert_eq!(a.get("resolution"), b.get("resolution"));

        for handle in [handle1, handle4] {
            handle.shutdown();
            handle.join();
        }
    }

    #[test]
    fn mid_stream_client_disconnect_leaves_the_server_healthy() {
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let handle = serve(test_world(), config).expect("bind");
        {
            // Request a large stream (256×256 = 128 batches), read one
            // batch line, then drop the socket mid-stream. The worker
            // must finish the job without blocking — the dead
            // connection's writer drains and drops the rest.
            let stream = TcpStream::connect(handle.addr()).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            writeln!(
                writer,
                r#"{{"v":1,"id":9,"op":"heatmap","resolution":256}}"#
            )
            .expect("write request");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("first batch");
            let v: Value = serde_json::from_str(line.trim()).expect("json");
            assert_eq!(get_u64(&v, "id"), 9);
            assert!(v.get("tiles").is_some());
        } // both socket halves dropped here — mid-stream disconnect
          // With one worker, a healthy follow-up proves the pool was not
          // wedged by the abandoned stream.
        let mut client = Client::connect(handle.addr());
        let pong = client.roundtrip(r#"{"v":1,"id":10,"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
        let best = client.roundtrip(r#"{"v":1,"op":"best"}"#);
        assert_eq!(best.get("ok").and_then(Value::as_bool), Some(true));
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.queries_heatmap, 1, "the abandoned stream completed");
        assert_eq!(stats.queries_ping, 1);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
        assert_eq!(stats.queries_completed(), stats.latency_total());
    }

    #[test]
    fn overload_sheds_with_typed_rejections() {
        // One worker, tiny queue: a pipelined burst must shed some
        // requests, and shed + completed must account for the burst.
        let config = ServerConfig {
            queue_capacity: 2,
            workers: 1,
            batch_max: 1,
            ..ServerConfig::default()
        };
        let handle = serve(test_world(), config).expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let burst = 64;
        for i in 0..burst {
            // `solve` is the slowest op, keeping the worker busy.
            writeln!(writer, r#"{{"v":1,"id":{i},"op":"solve","algo":"na"}}"#).expect("write");
        }
        let mut reader = BufReader::new(stream);
        let mut completed = 0u64;
        let mut shed = 0u64;
        for _ in 0..burst {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            let v: Value = serde_json::from_str(line.trim()).expect("json");
            if v.get("ok").and_then(Value::as_bool) == Some(true) {
                completed += 1;
            } else {
                assert_eq!(
                    v.get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str),
                    Some("overloaded")
                );
                shed += 1;
            }
        }
        assert_eq!(completed + shed, burst);
        assert!(shed > 0, "a 64-deep burst into a 2-slot queue must shed");
        assert!(completed >= 2, "admitted work still completes");
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.queries_solve, completed);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
    }

    #[test]
    fn oversized_request_line_is_rejected_and_connection_closed() {
        let handle = serve(test_world(), ServerConfig::default()).expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        // A newline-free flood past the cap: the server must answer with
        // a bounded `malformed` rejection and close, not buffer forever.
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent <= MAX_LINE_BYTES {
            if writer.write_all(&chunk).is_err() {
                break; // server already closed the socket on us
            }
            sent += chunk.len();
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("rejection line");
        let v: Value = serde_json::from_str(line.trim()).expect("json");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("malformed")
        );
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "must close");
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
    }

    #[test]
    fn read_timeout_mid_utf8_character_preserves_the_partial_line() {
        let handle = serve(test_world(), ServerConfig::default()).expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        // Split a request inside the two-byte "é": several 25ms poll
        // timeouts fire on the server before the rest arrives. The old
        // `read_line` path dropped the partial bytes (they fail the
        // UTF-8 check alone), corrupting framing; byte-wise reads keep
        // them.
        let request = r#"{"v":1,"id":7,"op":"ping","note":"héllo"}"#.as_bytes();
        let split = request.iter().position(|&b| b == 0xc3).expect("é") + 1;
        writer.write_all(&request[..split]).expect("first half");
        writer.flush().expect("flush");
        std::thread::sleep(POLL_QUANTUM * 4);
        writer.write_all(&request[split..]).expect("second half");
        writer.write_all(b"\n").expect("newline");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        let v: Value = serde_json::from_str(line.trim()).expect("json");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.queries_ping, 1);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
    }

    #[test]
    fn draining_rejects_new_requests_but_join_accounts_everything() {
        let handle = serve(test_world(), ServerConfig::default()).expect("bind");
        let mut client = Client::connect(handle.addr());
        let ack = client.roundtrip(r#"{"v":1,"op":"shutdown"}"#);
        assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true));
        let stats = handle.join();
        assert_eq!(stats.control, 1);
        assert_eq!(stats.lines_received, 1);
        assert_eq!(stats.accounted_lines(), stats.lines_received);
    }
}
