//! Tables 3 and 4 — Precision@K and AveragePrecision@K of PRIME-LS vs
//! the RANGE and BRNN* semantics (§6.2, "Comparison between Different
//! Semantics").
//!
//! Protocol (paper): 200-candidate groups sampled uniformly from
//! check-in coordinates; ground truth = actual check-in counts at the
//! candidates; K = 10..50; RANGE averaged over its nine parameter
//! combinations; results averaged over 50 random candidate groups;
//! Foursquare dataset (Gowalla reported as "qualitatively similar").

use pinocchio_baselines::{brnn_star, range_nine_combo_rankings, rank_descending};
use pinocchio_bench::{dataset, is_small_scale, problem, write_record, DatasetKind};
use pinocchio_core::Algorithm;
use pinocchio_data::{sample_candidate_group, DatasetStats};
use pinocchio_eval::{average_precision_at_k, precision_at_k, relevant_ranking, Table};
use pinocchio_prob::PowerLawPf;

const KS: [usize; 5] = [10, 20, 30, 40, 50];

fn main() {
    let d = dataset(DatasetKind::Foursquare);
    let stats = DatasetStats::of(&d);
    let scale = stats.frame_width_km.max(stats.frame_height_km);
    let groups: u64 = if is_small_scale() { 10 } else { 50 };
    let group_size = 200.min(d.venues().len());

    // [method][k] accumulators.
    let mut p = [[0.0f64; 5]; 3];
    let mut ap = [[0.0f64; 5]; 3];

    for g in 0..groups {
        let (venue_indices, candidates) = sample_candidate_group(&d, group_size, 0xCAFE + g);
        let relevant = relevant_ranking(&d, &venue_indices);

        let prime_rank = problem(&d, candidates.clone(), PowerLawPf::paper_default(), 0.7)
            .solve(Algorithm::Pinocchio)
            .ranking()
            .expect("PIN reports exact influences");
        let nine = range_nine_combo_rankings(d.objects(), &candidates, scale);
        let brnn_rank = rank_descending(&brnn_star(d.objects(), &candidates));

        for (ki, &k) in KS.iter().enumerate() {
            p[0][ki] += precision_at_k(&prime_rank, &relevant, k);
            ap[0][ki] += average_precision_at_k(&prime_rank, &relevant, k);
            p[1][ki] += nine
                .iter()
                .map(|r| precision_at_k(r, &relevant, k))
                .sum::<f64>()
                / nine.len() as f64;
            ap[1][ki] += nine
                .iter()
                .map(|r| average_precision_at_k(r, &relevant, k))
                .sum::<f64>()
                / nine.len() as f64;
            p[2][ki] += precision_at_k(&brnn_rank, &relevant, k);
            ap[2][ki] += average_precision_at_k(&brnn_rank, &relevant, k);
        }
    }
    let n = groups as f64;
    for row in p.iter_mut().chain(ap.iter_mut()) {
        for cell in row.iter_mut() {
            *cell /= n;
        }
    }

    let labels = ["Prime-ls", "Avg. range", "brnn*"];
    let header = ["method", "@10", "@20", "@30", "@40", "@50"];
    let mut t3 = Table::new(
        format!(
            "Table 3: Precision@K ({} groups of {group_size} candidates)",
            groups
        ),
        &header,
    );
    let mut t4 = Table::new("Table 4: Average Precision@K", &header);
    for (i, label) in labels.iter().enumerate() {
        t3.push_row(
            std::iter::once(label.to_string())
                .chain(p[i].iter().map(|v| format!("{v:.3}")))
                .collect(),
        );
        t4.push_row(
            std::iter::once(label.to_string())
                .chain(ap[i].iter().map(|v| format!("{v:.3}")))
                .collect(),
        );
    }
    let mut random_row = vec!["random".to_string()];
    random_row.extend(
        KS.iter()
            .map(|&k| format!("{:.3}", k as f64 / group_size as f64)),
    );
    t3.push_row(random_row);
    println!("{t3}");
    println!("{t4}");

    write_record(
        "table34_precision",
        &serde_json::json!({
            "groups": groups,
            "group_size": group_size,
            "ks": KS,
            "precision": { "prime_ls": p[0], "avg_range": p[1], "brnn_star": p[2] },
            "avg_precision": { "prime_ls": ap[0], "avg_range": ap[1], "brnn_star": ap[2] },
        }),
    );
}
