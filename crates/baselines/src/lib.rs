//! The baseline location-selection semantics the paper compares against
//! (§6.2, "Comparison between Different Semantics").
//!
//! * [`brnn`] — **BRNN\*** : the paper's mobility-aware extension of
//!   MaxBRNN/MaxOverlap (Wong et al., VLDB 2009). For each object the
//!   candidate that is the nearest neighbour of the most of its
//!   positions is "selected"; the candidate selected by the most
//!   objects wins.
//! * [`range`] — **RANGE** : an object is influenced when at least a
//!   given proportion of its positions lie within a fixed range of the
//!   candidate; the paper averages nine `(proportion, range)` combos.
//! * [`mindist`] — a MIN-DIST reference (Qi et al., ICDE 2012 flavour):
//!   the candidate minimising the mean object-to-candidate distance.
//!   Orthogonal to PRIME-LS (§2.1) but useful as a sanity baseline.
//!
//! All baselines produce a per-candidate score vector and a ranking with
//! the same tie-breaking convention as the core solvers (descending
//! score, then ascending index), so the effectiveness experiments can
//! compare Top-K lists uniformly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod brnn;
pub mod mindist;
pub mod range;

pub use brnn::{brknn_star, brnn_star};
pub use mindist::min_dist;
pub use range::{range_baseline, range_nine_combo_rankings, RangeConfig};

/// Ranks candidate indices by descending score, ties towards the
/// smaller index — identical to `SolveResult::ranking`.
pub fn rank_descending<S: PartialOrd>(scores: &[S]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            // pinocchio-lint: allow(float-soundness) -- generic over PartialOrd so total_cmp is unavailable; the documented NaN-free contract is pinned by a should_panic test
            .partial_cmp(&scores[a])
            .expect("scores must not be NaN")
            .then(a.cmp(&b))
    });
    idx
}

/// Ranks candidate indices by *ascending* score (for cost-like scores
/// such as MIN-DIST), ties towards the smaller index.
pub fn rank_ascending<S: PartialOrd>(scores: &[S]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            // pinocchio-lint: allow(float-soundness) -- generic over PartialOrd so total_cmp is unavailable; the documented NaN-free contract is pinned by a should_panic test
            .partial_cmp(&scores[b])
            .expect("scores must not be NaN")
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_descending_breaks_ties_by_index() {
        assert_eq!(rank_descending(&[3.0, 9.0, 9.0, 1.0]), vec![1, 2, 0, 3]);
    }

    #[test]
    fn rank_ascending_is_reverse_semantics() {
        assert_eq!(rank_ascending(&[3.0, 9.0, 9.0, 1.0]), vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        let _ = rank_descending(&[1.0, f64::NAN]);
    }
}
