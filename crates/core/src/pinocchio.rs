//! PINOCCHIO — Algorithm 2 (pruning + plain validation).
//!
//! For each object row of `A_2D`:
//!
//! 1. an influence-arcs range query against the candidate R-tree finds
//!    the candidates that *certainly* influence the object (Lemma 2) —
//!    their counters increase without any probability computation;
//! 2. candidates outside the non-influence boundary *certainly* do not
//!    influence it (Lemma 3) and are skipped;
//! 3. the undecided candidates (inside NIB, outside IA) are validated by
//!    evaluating the cumulative probability over all positions
//!    (Definition 2).
//!
//! The R-tree queries use the generic two-predicate traversal: node
//! admission via conservative `minDist` tests against the region
//! geometry, exact point membership via [`InfluenceRegions`].

use crate::problem::PrimeLs;
use crate::result::{argmax_smallest_index, Algorithm, SolveResult, SolveStats};
use pinocchio_geo::{InfluenceRegions, Mbr, Point, RegionVerdict};
use pinocchio_prob::ProbabilityFunction;
use std::time::Instant;

/// Runs the PINOCCHIO algorithm (Algorithm 2).
pub fn solve<P: ProbabilityFunction + Clone>(problem: &PrimeLs<P>) -> SolveResult {
    let start = Instant::now();
    let mut pair = problem.pair_eval();
    let mut stats = SolveStats::default();

    // Candidate R-tree (cached on the problem instance); payload is the
    // dense candidate index.
    let tree = problem.candidate_tree();

    let a2d = problem.a2d();
    let mut influences = vec![0u32; problem.candidates().len()];
    let mut undecided: Vec<usize> = Vec::new();

    for entry in a2d.entries() {
        let Some(regions) = entry.regions else {
            stats.uninfluenceable_objects += 1;
            continue;
        };

        // One traversal classifies every candidate inside the NIB's
        // rectangular over-approximation; everything the traversal never
        // reaches is outside the NIB MBR, hence outside the NIB.
        undecided.clear();
        let mut ia_hits = 0u64;
        let mut nib_members = 0u64;
        tree.query_region(
            |node| node.intersects(&regions.nib_mbr()),
            |p| regions.in_non_influence_boundary(p),
            &mut |p, &j| {
                nib_members += 1;
                if regions.in_influence_arcs(p) {
                    ia_hits += 1;
                    influences[j] += 1;
                } else {
                    undecided.push(j);
                }
            },
        );
        stats.decided_by_ia += ia_hits;
        stats.decided_by_nib += problem.candidates().len() as u64 - nib_members;

        // Validation phase: plain full-scan cumulative probability.
        for &j in &undecided {
            if pair.influences(&problem.candidates()[j], entry.index, false, &mut stats) {
                influences[j] += 1;
            }
        }
    }

    let (best_candidate, max_influence) = argmax_smallest_index(&influences)
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets (BuildError::NoCandidates), so the influence vector is non-empty
        .expect("at least one candidate by construction");

    SolveResult {
        algorithm: Algorithm::Pinocchio,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: Some(influences),
        stats,
        elapsed: start.elapsed(),
    }
}

/// Classifies one candidate against one object's regions — exposed for
/// the pruning-effect experiment (Fig. 10), which reports how many
/// candidates each rule decides as `τ` varies.
pub fn classify_candidate(regions: &InfluenceRegions, candidate: &Point) -> RegionVerdict {
    regions.classify(candidate)
}

/// Convenience for experiments: per-object counts of candidates decided
/// by IA, decided by NIB, and left undecided.
pub fn pruning_breakdown(
    regions: &InfluenceRegions,
    candidates: &[Point],
) -> (usize, usize, usize) {
    let (mut ia, mut nib, mut undecided) = (0, 0, 0);
    for c in candidates {
        match regions.classify(c) {
            RegionVerdict::Influences => ia += 1,
            RegionVerdict::CannotInfluence => nib += 1,
            RegionVerdict::Undecided => undecided += 1,
        }
    }
    (ia, nib, undecided)
}

/// The rectangular frame of a candidate set — used by experiments to
/// report the paper's `δ` (candidate frame much larger than object MBRs).
pub fn candidate_frame(candidates: &[Point]) -> Option<Mbr> {
    Mbr::from_points(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::state::A2d;
    use pinocchio_data::{GeneratorConfig, MovingObject, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn synthetic_problem(tau: f64, seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(60, seed)).generate();
        let (_, candidates) = pinocchio_data::sample_candidate_group(&d, 40, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_naive_on_synthetic_worlds() {
        for tau in [0.1, 0.5, 0.7, 0.9] {
            for seed in [1, 2] {
                let p = synthetic_problem(tau, seed);
                let na = naive::solve(&p);
                let pin = solve(&p);
                assert_eq!(
                    pin.influences, na.influences,
                    "influence vectors differ at tau={tau} seed={seed}"
                );
                assert_eq!(pin.best_candidate, na.best_candidate);
                assert_eq!(pin.max_influence, na.max_influence);
            }
        }
    }

    #[test]
    fn pruning_reduces_validation_work() {
        let p = synthetic_problem(0.7, 3);
        let na = naive::solve(&p);
        let pin = solve(&p);
        assert!(
            pin.stats.validated_pairs < na.stats.validated_pairs,
            "pruning should cut validated pairs: {} vs {}",
            pin.stats.validated_pairs,
            na.stats.validated_pairs
        );
        assert!(pin.stats.pruned_pairs() > 0);
    }

    #[test]
    fn accounting_is_complete() {
        // Every (influenceable object, candidate) pair is either decided
        // by a rule or validated.
        let p = synthetic_problem(0.7, 4);
        let r = solve(&p);
        let a2d = A2d::build(p.objects(), p.pf(), p.tau());
        let expected_pairs = (a2d.influenceable() * p.candidates().len()) as u64;
        assert_eq!(
            r.stats.decided_by_ia + r.stats.decided_by_nib + r.stats.validated_pairs,
            expected_pairs
        );
    }

    #[test]
    fn handles_uninfluenceable_objects() {
        // One object with a single far position and τ above PF(0).
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
                MovingObject::new(1, vec![Point::new(0.1, 0.0), Point::new(0.0, 0.1)]),
            ])
            .candidates(vec![Point::new(0.0, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.95)
            .build()
            .unwrap();
        let r = solve(&p);
        assert_eq!(r.stats.uninfluenceable_objects, 1);
        // Object 1 (two positions at distance ~0.1) reaches 0.95? Each
        // position has PF(~0.1) ≈ 0.9/1.1 ≈ 0.818; cumulative ≈ 0.967.
        assert_eq!(r.max_influence, 1);
        let na = naive::solve(&p);
        assert_eq!(na.max_influence, 1);
    }

    #[test]
    fn pruning_breakdown_partitions_candidates() {
        let p = synthetic_problem(0.7, 5);
        let a2d = A2d::build(p.objects(), p.pf(), p.tau());
        let regions = a2d.entries()[0].regions.unwrap();
        let (ia, nib, und) = pruning_breakdown(&regions, p.candidates());
        assert_eq!(ia + nib + und, p.candidates().len());
    }
}
