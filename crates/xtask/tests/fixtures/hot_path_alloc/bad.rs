//! Hot-path-alloc fixture: a marked kernel that allocates directly,
//! and a marked kernel whose direct callee allocates.

// pinocchio-hot: fixture kernel
pub fn hot_sum(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    doubled.iter().sum()
}

// pinocchio-hot: fixture kernel delegating to an allocating helper
pub fn hot_wrapper(xs: &[f64]) -> f64 {
    helper_alloc(xs)
}

fn helper_alloc(xs: &[f64]) -> f64 {
    let mut scratch = Vec::with_capacity(xs.len());
    for x in xs {
        scratch.push(x * 2.0);
    }
    scratch.iter().sum()
}
