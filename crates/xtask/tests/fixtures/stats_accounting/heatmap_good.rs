//! Fixture: heat-map entry points wired into `SolveStats`.
//!
//! Mirrors the real crate's discipline: the descent threads one counter
//! block through every cell verdict and refinement, and the entry point
//! returns it alongside the grid so `validated_pairs` keeps covering
//! the refinement work.

use pinocchio_core::SolveStats;

/// Rasterises an influence heat map and returns the descent counters.
pub fn try_heatmap() -> SolveStats {
    let mut stats = SolveStats::default();
    stats.cells_refined += 1;
    stats
}

/// Finds top tiles, accounting the branch-and-bound refinements.
pub fn try_top_region() -> SolveStats {
    SolveStats::default()
}
