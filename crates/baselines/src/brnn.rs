//! BRNN\* — the nearest-neighbour semantics extended to moving objects.
//!
//! Classical MaxBRNN assumes static objects: a candidate influences an
//! object iff it is the object's nearest candidate. The paper extends it
//! to mobility (§6.2): "we run MaxOverlap to select for each object O
//! the best location c, which influences the most positions in O.
//! Afterwards, we choose the location that has been selected by the most
//! objects."
//!
//! Concretely, per object each position votes for its nearest candidate
//! (R-tree NN query); the candidate with the most position-votes is the
//! object's selection (ties to the smaller index); the final score of a
//! candidate is the number of objects that selected it.
//!
//! This inherits the limitations PRIME-LS removes — binary influence and
//! a single influencing facility per object — which is exactly what the
//! Table 3/4 comparison quantifies.

use pinocchio_data::MovingObject;
use pinocchio_geo::Point;
use pinocchio_index::RTree;

/// Runs BRNN\*. Returns the per-candidate object-vote counts.
///
/// # Panics
/// Panics when `candidates` is empty.
pub fn brnn_star(objects: &[MovingObject], candidates: &[Point]) -> Vec<u32> {
    assert!(!candidates.is_empty(), "BRNN* needs at least one candidate");
    let tree: RTree<usize> = candidates
        .iter()
        .enumerate()
        .map(|(j, &c)| (c, j))
        .collect();

    let mut votes = vec![0u32; candidates.len()];
    let mut per_object: Vec<u32> = vec![0; candidates.len()];
    let mut touched: Vec<usize> = Vec::new();

    for object in objects {
        touched.clear();
        for p in object.positions() {
            let (_, &j, _) = tree
                .nearest_neighbor(p)
                .expect("non-empty candidate set has an NN");
            if per_object[j] == 0 {
                touched.push(j);
            }
            per_object[j] += 1;
        }
        // The object's selection: most position votes, ties to smaller id.
        if let Some(&best) = touched
            .iter()
            .max_by(|&&a, &&b| per_object[a].cmp(&per_object[b]).then(b.cmp(&a)))
        {
            votes[best] += 1;
        }
        for &j in &touched {
            per_object[j] = 0;
        }
    }
    votes
}

/// BRkNN\* — the MaxBRkNN semantics (Wong et al., VLDB 2009) extended
/// to moving objects the same way the paper extends MaxBRNN: each
/// object ranks candidates by how many of its positions they are the
/// nearest neighbour of, then *selects its top `k`* (ties towards the
/// smaller index); a candidate's score is the number of objects that
/// selected it. `k = 1` coincides with [`brnn_star`].
///
/// Objects whose positions touch fewer than `k` distinct candidates
/// select only the candidates they touched.
///
/// # Panics
/// Panics when `candidates` is empty or `k == 0`.
pub fn brknn_star(objects: &[MovingObject], candidates: &[Point], k: usize) -> Vec<u32> {
    assert!(
        !candidates.is_empty(),
        "BRkNN* needs at least one candidate"
    );
    assert!(k >= 1, "k must be at least 1");
    let tree: RTree<usize> = candidates
        .iter()
        .enumerate()
        .map(|(j, &c)| (c, j))
        .collect();

    let mut votes = vec![0u32; candidates.len()];
    let mut per_object: Vec<u32> = vec![0; candidates.len()];
    let mut touched: Vec<usize> = Vec::new();

    for object in objects {
        touched.clear();
        for p in object.positions() {
            let (_, &j, _) = tree
                .nearest_neighbor(p)
                .expect("non-empty candidate set has an NN");
            if per_object[j] == 0 {
                touched.push(j);
            }
            per_object[j] += 1;
        }
        // Top-k by (position votes desc, index asc).
        touched.sort_by(|&a, &b| per_object[b].cmp(&per_object[a]).then(a.cmp(&b)));
        for &j in touched.iter().take(k) {
            votes[j] += 1;
        }
        for &j in &touched {
            per_object[j] = 0;
        }
    }
    votes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_vote_for_their_nn() {
        // Object with 4 positions near candidate 1, one near candidate 0.
        let objects = vec![MovingObject::new(
            0,
            vec![
                Point::new(0.0, 0.0), // NN = candidate 0
                Point::new(10.0, 0.0),
                Point::new(10.1, 0.0),
                Point::new(9.9, 0.0),
                Point::new(10.0, 0.2),
            ],
        )];
        let candidates = vec![Point::new(0.1, 0.0), Point::new(10.0, 0.1)];
        assert_eq!(brnn_star(&objects, &candidates), vec![0, 1]);
    }

    #[test]
    fn each_object_contributes_exactly_one_vote() {
        let objects = vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
            MovingObject::new(1, vec![Point::new(0.2, 0.0)]),
            MovingObject::new(2, vec![Point::new(10.0, 0.0)]),
        ];
        let candidates = vec![Point::new(0.0, 0.1), Point::new(10.0, 0.1)];
        let votes = brnn_star(&objects, &candidates);
        assert_eq!(votes.iter().sum::<u32>(), objects.len() as u32);
        assert_eq!(votes, vec![2, 1]);
    }

    #[test]
    fn vote_ties_break_to_smaller_candidate_index() {
        // Two positions, one nearest to each candidate: tie → candidate 0.
        let objects = vec![MovingObject::new(
            0,
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )];
        let candidates = vec![Point::new(10.0, 0.1), Point::new(0.0, 0.1)];
        // position 1 votes c0 (dist 0.1), position 0 votes c1 (dist 0.1):
        // 1 vote each → object selects candidate 0.
        assert_eq!(brnn_star(&objects, &candidates), vec![1, 0]);
    }

    #[test]
    fn ignores_probability_entirely() {
        // BRNN* is blind to how far the NN actually is — the limitation
        // the paper's Fig. 1 illustrates.
        let objects = vec![MovingObject::new(0, vec![Point::new(500.0, 500.0)])];
        let candidates = vec![Point::new(0.0, 0.0), Point::new(100.0, 100.0)];
        let votes = brnn_star(&objects, &candidates);
        assert_eq!(votes, vec![0, 1], "distant NN still gets the vote");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let _ = brnn_star(&[MovingObject::new(0, vec![Point::ORIGIN])], &[]);
    }

    #[test]
    fn brknn_with_k1_equals_brnn() {
        let objects = vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]),
            MovingObject::new(1, vec![Point::new(10.0, 0.0)]),
            MovingObject::new(2, vec![Point::new(4.9, 0.1), Point::new(5.1, 0.0)]),
        ];
        let candidates = vec![
            Point::new(0.1, 0.0),
            Point::new(5.0, 0.1),
            Point::new(10.1, 0.0),
        ];
        assert_eq!(
            brknn_star(&objects, &candidates, 1),
            brnn_star(&objects, &candidates)
        );
    }

    #[test]
    fn brknn_votes_grow_with_k() {
        let objects = vec![MovingObject::new(
            0,
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        )];
        let candidates = vec![
            Point::new(0.1, 0.0),
            Point::new(5.1, 0.0),
            Point::new(10.1, 0.0),
        ];
        // k = 2: the object selects its two most-visited candidates.
        let v2 = brknn_star(&objects, &candidates, 2);
        assert_eq!(v2.iter().sum::<u32>(), 2);
        // k beyond the touched set: selects everything it touched.
        let v9 = brknn_star(&objects, &candidates, 9);
        assert_eq!(v9, vec![1, 1, 1]);
    }

    #[test]
    fn brknn_tie_break_prefers_smaller_index() {
        // One position voting for candidate 1 only; k = 2 must pick the
        // touched candidate first and nothing else (untouched candidates
        // never get selected).
        let objects = vec![MovingObject::new(0, vec![Point::new(5.0, 0.0)])];
        let candidates = vec![Point::new(0.0, 0.0), Point::new(5.1, 0.0)];
        assert_eq!(brknn_star(&objects, &candidates, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn brknn_zero_k_rejected() {
        let _ = brknn_star(
            &[MovingObject::new(0, vec![Point::ORIGIN])],
            &[Point::ORIGIN],
            0,
        );
    }
}
