//! Per-pair evaluation dispatch — one place where every solver turns an
//! (object, candidate) pair into an influence verdict.
//!
//! Historically each solver called
//! [`CumulativeProbability::influences`] /
//! [`influences_early_stop`](CumulativeProbability::influences_early_stop)
//! directly and maintained its own `validated_pairs` /
//! `positions_evaluated` bookkeeping. [`PairEval`] centralises both, so
//! all solvers:
//!
//! * account for work identically (the stats-parity tests compare
//!   [`SolveStats`] across solvers and thread counts), and
//! * can be switched between the scalar evaluation path and the
//!   block-bounded structure-of-arrays kernel
//!   ([`CumulativeProbability::influences_blocked`]) with one
//!   [`EvalKernel`] knob on the problem instance — the verdicts are
//!   identical by construction, so every solver stays bit-identical
//!   under either kernel.

use crate::result::SolveStats;
use pinocchio_data::{MovingObject, PositionArena, BLOCK_SIZE};
use pinocchio_geo::{Euclidean, Point};
use pinocchio_prob::{
    BlockScratch, CumulativeProbability, EarlyStopOutcome, LogPfTable, LogScratch,
    ProbabilityFunction, SoaBlocks, TileCutoffs,
};

/// Candidate-tile width under [`EvalKernel::LogBlocked`]: solvers that
/// support tiled validation batch this many candidates against each
/// object so the object MBR, thresholds and arena block views are set
/// up once per tile instead of once per candidate. 32 is the verdict
/// bitmask's capacity and won the tile-size sweep in DESIGN.md §15
/// (T ∈ {8, 16, 24, 32}; per-tile dispatch overhead keeps falling all
/// the way to the mask limit while the pre-check loop stays branch-free
/// at any width).
pub(crate) const LOG_TILE_WIDTH: usize = 32;

/// Which evaluation path [`PairEval::influences`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalKernel {
    /// The scalar per-position scan over `MovingObject::positions()`
    /// (with the Lemma 4 early exit where the solver requests it).
    /// This is the default and reproduces the historical behaviour —
    /// and stats — exactly.
    #[default]
    Scalar,
    /// The block-bounded structure-of-arrays kernel: per-block
    /// `minDist`/`maxDist` bounds decide most objects from a handful of
    /// distances; only straddling blocks are refined. Verdicts are
    /// identical to [`EvalKernel::Scalar`]; `positions_evaluated`
    /// shrinks and the `blocks_pruned` / `positions_skipped_by_blocks`
    /// counters light up. The kernel subsumes the scalar early-stop
    /// flag (its bounding pass exits early in both directions), so the
    /// solver's `early_stop` request is ignored under this kernel.
    Blocked,
    /// The log-domain kernel: `Σ ln(1 − PF(d))` accumulated against
    /// `ln(1 − τ)` through a branch-free squared-distance coefficient
    /// table ([`LogPfTable`]), with block bounds hoisted into the same
    /// accumulator and a guard band whose in-band pairs fall back to
    /// the exact product-space refinement. Verdicts are identical to
    /// [`EvalKernel::Scalar`] (table error is covered by the band; the
    /// band is resolved exactly); `log_band_fallbacks` counts how often
    /// the fallback fired. Solvers that support candidate tiling batch
    /// [`LOG_TILE_WIDTH`] candidates per object under this kernel.
    ///
    /// Requires a PF whose log table converged
    /// ([`LogPfTable::try_new`]); problems whose PF defeats the table
    /// (e.g. `PF(0) = 1`) transparently run [`EvalKernel::Blocked`]
    /// instead.
    LogBlocked,
}

/// A borrowed evaluation context: the probability evaluator plus both
/// position representations (per-object `Vec<Point>` and the flat
/// [`PositionArena`]) and the problem's `τ`.
///
/// Built by [`PrimeLs::pair_eval`](crate::PrimeLs::pair_eval); the
/// arena is constructed together with the problem, so object index `k`
/// here always refers to the same object in both layouts.
#[derive(Debug)]
pub struct PairEval<'a, P> {
    eval: CumulativeProbability<P, Euclidean>,
    objects: &'a [MovingObject],
    arena: &'a PositionArena,
    kernel: EvalKernel,
    tau: f64,
    // Reused across every pair this evaluator validates (the blocked
    // kernel's per-block bound factors); owning it here is why
    // `influences` takes `&mut self`.
    scratch: BlockScratch,
    log_scratch: LogScratch,
    /// The problem's precomputed log-PF table — present exactly when
    /// the resolved kernel is [`EvalKernel::LogBlocked`].
    log_table: Option<&'a LogPfTable>,
    /// Memoised arena view of the last object evaluated, together with
    /// the object's tile cutoffs (zeroed when no log table is active):
    /// object-major loops (every solver's validation loop, and the
    /// candidate tiles) pay the arena slice lookup and the cutoff
    /// inversion once per object, not once per pair.
    view: Option<(usize, SoaBlocks<'a>, TileCutoffs)>,
}

impl<'a, P: ProbabilityFunction + Clone> PairEval<'a, P> {
    pub(crate) fn new(
        eval: CumulativeProbability<P, Euclidean>,
        objects: &'a [MovingObject],
        arena: &'a PositionArena,
        kernel: EvalKernel,
        tau: f64,
        log_table: Option<&'a LogPfTable>,
    ) -> Self {
        debug_assert_eq!(arena.object_count(), objects.len());
        // LogBlocked needs the table; when the PF defeated table
        // construction, downgrade to the (always available) blocked
        // kernel rather than carrying a panic path into the hot loop.
        let (kernel, log_table) = match (kernel, log_table) {
            (EvalKernel::LogBlocked, Some(table)) => (EvalKernel::LogBlocked, Some(table)),
            (EvalKernel::LogBlocked, None) => (EvalKernel::Blocked, None),
            (other, _) => (other, None),
        };
        PairEval {
            eval,
            objects,
            arena,
            kernel,
            tau,
            scratch: BlockScratch::default(),
            log_scratch: LogScratch::default(),
            log_table,
            view: None,
        }
    }

    /// The underlying cumulative-probability evaluator.
    pub fn evaluator(&self) -> &CumulativeProbability<P, Euclidean> {
        &self.eval
    }

    /// The active evaluation kernel (after the LogBlocked → Blocked
    /// downgrade for PFs without a usable log table).
    pub fn kernel(&self) -> EvalKernel {
        self.kernel
    }

    /// How many candidates the solver should batch per object under the
    /// active kernel: [`LOG_TILE_WIDTH`] for [`EvalKernel::LogBlocked`],
    /// 1 otherwise (a 1-wide tile reproduces untiled behaviour exactly).
    pub fn tile_width(&self) -> usize {
        match self.kernel {
            EvalKernel::LogBlocked => LOG_TILE_WIDTH,
            _ => 1,
        }
    }

    /// The arena block view of `object_index` plus its precomputed
    /// [`TileCutoffs`], memoised across calls so object-major loops
    /// resolve the arena slices and the cutoff inversion once per
    /// object. The cutoffs are zeroed when no log table is active (the
    /// scalar/blocked kernels never read them).
    // pinocchio-hot: per-pair view lookup of every blocked validation
    fn blocks(&mut self, object_index: usize) -> (SoaBlocks<'a>, TileCutoffs) {
        match self.view {
            Some((cached, view, cutoffs)) if cached == object_index => (view, cutoffs),
            _ => {
                let view = SoaBlocks::with_object_mbr(
                    self.arena.object_xs(object_index),
                    self.arena.object_ys(object_index),
                    self.arena.object_block_mbrs(object_index),
                    BLOCK_SIZE,
                    *self.arena.object_mbr(object_index),
                );
                let cutoffs = match self.log_table {
                    Some(table) => table.tile_cutoffs(view.len(), self.tau),
                    None => TileCutoffs {
                        influenced_below: 0.0,
                        not_influenced_at: 0.0,
                        thr_inf: 0.0,
                        thr_not: 0.0,
                    },
                };
                self.view = Some((object_index, view, cutoffs));
                (view, cutoffs)
            }
        }
    }

    /// Whether `candidate` influences object `object_index`
    /// (`Pr_c(O) ≥ τ`), recording the pair's cost into `stats`.
    ///
    /// `early_stop` selects the Lemma 4 early exit on the scalar path
    /// (Strategy 2); the blocked kernel always bounds in both
    /// directions and ignores the flag. Every call adds exactly one
    /// `validated_pairs`, and the pair's positions are fully accounted:
    /// on the scalar path the early exit's unevaluated tail is implicit
    /// in `positions_evaluated < n`, on the blocked path the identity
    /// `positions_evaluated + positions_skipped_by_blocks = n` holds
    /// per pair.
    // pinocchio-hot: the per-pair dispatch every solver validates through
    pub fn influences(
        &mut self,
        candidate: &Point,
        object_index: usize,
        early_stop: bool,
        stats: &mut SolveStats,
    ) -> bool {
        stats.validated_pairs += 1;
        match self.kernel {
            EvalKernel::Scalar => {
                let object = &self.objects[object_index];
                let outcome = if early_stop {
                    self.eval
                        .influences_early_stop(candidate, object.positions(), self.tau)
                } else {
                    EarlyStopOutcome::from_verdict(
                        self.eval
                            .influences(candidate, object.positions(), self.tau),
                        object.position_count(),
                    )
                };
                stats.positions_evaluated += outcome.positions_evaluated as u64;
                outcome.influenced
            }
            EvalKernel::Blocked => {
                let (view, _) = self.blocks(object_index);
                let outcome =
                    self.eval
                        .influences_blocked(candidate, &view, self.tau, &mut self.scratch);
                stats.positions_evaluated += outcome.positions_evaluated as u64;
                stats.positions_skipped_by_blocks += outcome.positions_skipped as u64;
                stats.blocks_pruned += outcome.blocks_pruned as u64;
                outcome.influenced
            }
            EvalKernel::LogBlocked => {
                let (view, _) = self.blocks(object_index);
                let table = self
                    .log_table
                    .expect("LogBlocked resolved in new() only with a table"); // pinocchio-lint: allow(panic-path) -- unreachable by construction: new() downgrades LogBlocked to Blocked when the table is absent
                let outcome = self.eval.influences_log_blocked(
                    candidate,
                    &view,
                    self.tau,
                    table,
                    &mut self.log_scratch,
                );
                stats.positions_evaluated += outcome.positions_evaluated as u64;
                stats.positions_skipped_by_blocks += outcome.positions_skipped as u64;
                stats.blocks_pruned += outcome.blocks_pruned as u64;
                stats.log_band_fallbacks += u64::from(outcome.fell_back_to_exact);
                outcome.influenced
            }
        }
    }

    /// Validates a whole candidate tile against one object in a single
    /// dispatch; verdict bit `j` of the returned mask corresponds to
    /// `candidates[j]`.
    ///
    /// Verdicts and stats are exactly those of calling
    /// [`Self::influences`] once per candidate — the batch exists so the
    /// log-blocked kernel can run its O(1) object-level pre-check across
    /// the tile with the object MBR and thresholds set up once (see
    /// [`CumulativeProbability::influences_log_blocked_tile`]). On the
    /// scalar and blocked kernels the tile degenerates to the per-pair
    /// loop, bit-identical to the historical behaviour.
    // pinocchio-hot: the tiled dispatch of the validation-dominated solvers
    pub fn influences_tile(
        &mut self,
        candidates: &[Point],
        object_index: usize,
        early_stop: bool,
        stats: &mut SolveStats,
    ) -> u32 {
        debug_assert!(candidates.len() <= LOG_TILE_WIDTH.max(1));
        if self.kernel == EvalKernel::LogBlocked && candidates.len() > 1 {
            stats.validated_pairs += candidates.len() as u64;
            let (view, cutoffs) = self.blocks(object_index);
            let table = self
                .log_table
                .expect("LogBlocked resolved in new() only with a table"); // pinocchio-lint: allow(panic-path) -- unreachable by construction: new() downgrades LogBlocked to Blocked when the table is absent
            let out = self.eval.influences_log_blocked_tile(
                candidates,
                &view,
                self.tau,
                table,
                cutoffs,
                &mut self.log_scratch,
            );
            stats.positions_evaluated += out.positions_evaluated as u64;
            stats.positions_skipped_by_blocks += out.positions_skipped as u64;
            stats.blocks_pruned += out.blocks_pruned as u64;
            stats.log_band_fallbacks += u64::from(out.band_fallbacks);
            out.influenced_mask
        } else {
            let mut mask = 0u32;
            for (j, c) in candidates.iter().enumerate() {
                mask |= u32::from(self.influences(c, object_index, early_stop, stats)) << j;
            }
            mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PrimeLs;
    use pinocchio_prob::PowerLawPf;

    fn problem(kernel: EvalKernel) -> PrimeLs<PowerLawPf> {
        PrimeLs::builder()
            .objects(vec![
                MovingObject::new(
                    0,
                    (0..40).map(|i| Point::new(i as f64 * 0.3, 0.0)).collect(),
                ),
                MovingObject::new(1, vec![Point::new(50.0, 50.0)]),
            ])
            .candidates(vec![Point::new(0.0, 0.1), Point::new(200.0, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .evaluation_kernel(kernel)
            .build()
            .unwrap()
    }

    #[test]
    fn kernels_agree_on_verdicts() {
        let scalar = problem(EvalKernel::Scalar);
        let blocked = problem(EvalKernel::Blocked);
        let log = problem(EvalKernel::LogBlocked);
        let mut ps = scalar.pair_eval();
        let mut pb = blocked.pair_eval();
        let mut pl = log.pair_eval();
        assert_eq!(pl.kernel(), EvalKernel::LogBlocked);
        let mut s_stats = SolveStats::default();
        let mut b_stats = SolveStats::default();
        let mut l_stats = SolveStats::default();
        for k in 0..2 {
            for c in scalar.candidates() {
                for early in [false, true] {
                    let expect = ps.influences(c, k, early, &mut s_stats);
                    assert_eq!(
                        expect,
                        pb.influences(c, k, early, &mut b_stats),
                        "blocked: object {k} candidate {c:?} early={early}"
                    );
                    assert_eq!(
                        expect,
                        pl.influences(c, k, early, &mut l_stats),
                        "log-blocked: object {k} candidate {c:?} early={early}"
                    );
                }
            }
        }
        assert_eq!(s_stats.validated_pairs, b_stats.validated_pairs);
        assert_eq!(s_stats.validated_pairs, l_stats.validated_pairs);
        assert_eq!(s_stats.positions_skipped_by_blocks, 0);
        assert_eq!(s_stats.blocks_pruned, 0);
        assert_eq!(s_stats.log_band_fallbacks, 0);
        assert_eq!(b_stats.log_band_fallbacks, 0);
    }

    #[test]
    fn tile_width_is_one_except_log_blocked() {
        assert_eq!(problem(EvalKernel::Scalar).pair_eval().tile_width(), 1);
        assert_eq!(problem(EvalKernel::Blocked).pair_eval().tile_width(), 1);
        assert_eq!(
            problem(EvalKernel::LogBlocked).pair_eval().tile_width(),
            LOG_TILE_WIDTH
        );
    }

    #[test]
    fn log_blocked_downgrades_without_a_table() {
        // A PF with PF(0) = 1 defeats the log table (ln(1 − 1) = −∞);
        // the kernel must transparently resolve to Blocked and still
        // produce scalar-identical verdicts.
        #[derive(Clone, Debug)]
        struct Saturated;
        impl ProbabilityFunction for Saturated {
            fn prob(&self, d: f64) -> f64 {
                1.0 / (1.0 + d * d)
            }
            fn inverse(&self, p: f64) -> Option<f64> {
                (p > 0.0 && p <= 1.0).then(|| (1.0 / p - 1.0).sqrt())
            }
            fn name(&self) -> &'static str {
                "saturated"
            }
        }
        let build = |kernel| {
            PrimeLs::builder()
                .objects(vec![MovingObject::new(
                    0,
                    (0..40).map(|i| Point::new(i as f64 * 0.3, 0.0)).collect(),
                )])
                .candidates(vec![Point::new(0.0, 0.1), Point::new(200.0, 0.0)])
                .probability_function(Saturated)
                .tau(0.7)
                .evaluation_kernel(kernel)
                .build()
                .unwrap()
        };
        let log = build(EvalKernel::LogBlocked);
        let scalar = build(EvalKernel::Scalar);
        let mut pl = log.pair_eval();
        assert_eq!(pl.kernel(), EvalKernel::Blocked, "downgraded");
        assert_eq!(pl.tile_width(), 1);
        let mut ps = scalar.pair_eval();
        let mut stats = SolveStats::default();
        for c in log.candidates() {
            assert_eq!(
                pl.influences(c, 0, true, &mut stats),
                ps.influences(c, 0, true, &mut stats)
            );
        }
    }

    #[test]
    fn blocked_accounting_is_total_per_pair() {
        let p = problem(EvalKernel::Blocked);
        let mut pair = p.pair_eval();
        let total_positions: u64 = p.objects().iter().map(|o| o.position_count() as u64).sum();
        let mut stats = SolveStats::default();
        for k in 0..p.objects().len() {
            for c in p.candidates() {
                let _ = pair.influences(c, k, true, &mut stats);
            }
        }
        // Every pair scans its object once: 2 candidates × all objects.
        assert_eq!(
            stats.positions_evaluated + stats.positions_skipped_by_blocks,
            2 * total_positions
        );
    }

    #[test]
    fn scalar_full_scan_counts_every_position() {
        let p = problem(EvalKernel::Scalar);
        let mut pair = p.pair_eval();
        let mut stats = SolveStats::default();
        let _ = pair.influences(&p.candidates()[0], 0, false, &mut stats);
        assert_eq!(stats.validated_pairs, 1);
        assert_eq!(
            stats.positions_evaluated,
            p.objects()[0].position_count() as u64
        );
    }
}
