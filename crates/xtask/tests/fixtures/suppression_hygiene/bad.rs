//! Fixture: suppressions that fail the audit trail.

/// Unjustified allow: reported AND does not silence the finding.
pub fn unjustified(x: Option<u32>) -> u32 {
    x.unwrap() // pinocchio-lint: allow(panic-path)
}

/// Unknown rule id in the allow.
pub fn unknown(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // pinocchio-lint: allow(made-up-rule) -- a reason is given but the rule does not exist
}
