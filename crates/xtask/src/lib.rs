//! In-repo static-analysis engine for the PINOCCHIO workspace.
//!
//! `cargo run -p xtask -- lint` runs a token/span-level audit over
//! every `.rs` file under `crates/` and `src/` (vendored shims and test
//! fixtures excluded) and fails on any *deny* diagnostic. The rules
//! encode the domain invariants the workspace made load-bearing —
//! invariants clippy cannot check:
//!
//! | rule id              | guards against |
//! |----------------------|----------------|
//! | `panic-path`         | `unwrap`/`expect`/`panic!`-family and arithmetic indexing in non-test library code of `core`, `prob`, `geo`, `index` |
//! | `float-soundness`    | `==`/`!=` against float literals, `f64::NAN` literals, bare `partial_cmp(..).unwrap()` |
//! | `atomic-ordering`    | undocumented `Ordering::*` uses; `Relaxed` is deny-by-default |
//! | `crate-hygiene`      | crate roots missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` |
//! | `stats-accounting`   | solver entry points that stop referencing `SolveStats` |
//! | `lock-ordering`      | cyclic/inconsistent nested `Mutex`/`RwLock` acquisition orders within a crate (incl. one-level call edges) |
//! | `condvar-discipline` | `Condvar` waits outside a predicate-rechecking loop, or with a discarded guard |
//! | `bounded-io`         | `read_to_end`/`read_line`/uncapped buffer growth on network-fed readers outside `read_bounded_*` helpers |
//! | `hot-path-alloc`     | heap allocation in `// pinocchio-hot` functions (and their direct callees) |
//! | `cast-truncation`    | lossy `as` casts in non-test code |
//!
//! The first five are line rules over the [`source`] model; the last
//! five run on the function-span substrate built by [`span`] and live in
//! [`conc`]. `lock-ordering` and `hot-path-alloc` are workspace-level:
//! their graphs cross files, so they always parse everything even under
//! `lint --changed`.
//!
//! Every rule can be silenced per line with
//! `// pinocchio-lint: allow(<rule>) -- <justification>`; the
//! justification is mandatory — an allow without one is itself a deny
//! diagnostic (`suppression-hygiene`) and suppresses nothing. The rule
//! registry ([`diag::RULES`]) is table-driven; `lint --list-rules`
//! prints it.
//!
//! The engine is deliberately token-level, not AST-level: the workspace
//! builds offline, so the linter cannot depend on `syn` or a rustc
//! plugin. Stripping comments and string literals before matching keeps
//! the token scan honest; the per-rule corner cases are documented in
//! [`rules`], [`conc`] and DESIGN.md §14.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conc;
pub mod diag;
pub mod engine;
pub mod rules;
pub mod source;
pub mod span;

pub use diag::{default_rule_ids, is_known_rule, Diagnostic, RuleSpec, Severity, RULES};
pub use engine::{changed_files, collect_files, lint, LintConfig, LintReport};
pub use source::SourceFile;
pub use span::FileAnalysis;
