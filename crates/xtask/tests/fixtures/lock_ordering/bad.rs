//! Lock-ordering fixture: two paths acquire the same pair of mutexes
//! in opposite orders, and one path re-acquires a lock it holds.

use std::sync::Mutex;

pub struct Pair {
    stats: Mutex<u64>,
    queue: Mutex<u64>,
}

impl Pair {
    pub fn record_then_drain(&self) -> u64 {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        *stats + *queue
    }

    pub fn drain_then_record(&self) -> u64 {
        let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        *queue + *stats
    }

    pub fn double_acquire(&self) -> u64 {
        let first = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let second = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        *first + *second
    }
}
