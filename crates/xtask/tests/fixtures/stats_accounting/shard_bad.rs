//! Fixture: a fallible shard coordinator that ignores the counter block.
//!
//! Deliberately uses the `try_solve` prefix only — it must trip even
//! though it never matches the older `pub fn solve` contract, proving
//! the linter applies every accounting contract for the crate.

/// Coordinates shard partials without merging any `SolveStats`.
pub fn try_solve_sharded() -> u32 {
    0
}
