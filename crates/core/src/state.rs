//! The moving-object 2-D array `A_2D` (Algorithm 1).
//!
//! §4.3 argues that the *object* side of the problem should **not** be
//! indexed hierarchically: activity MBRs overlap so heavily (objects
//! cover ~55 % of each axis) that R-tree node MBRs degenerate and every
//! leaf gets explored anyway. Instead, Algorithm 1 builds a flat
//! two-dimensional array: one row per object holding its positions
//! (`A_1D`) plus the precomputed pruning data — `minMaxRadius` (memoised
//! per position count in the HashMap `HM`), the influence arcs and the
//! non-influence boundary with its rectangular over-approximation.
//!
//! Objects whose `minMaxRadius` is undefined (the required per-position
//! probability exceeds `PF(0)`) can never be influenced by any candidate
//! and are marked so every solver can skip them.

use pinocchio_data::MovingObject;
use pinocchio_geo::InfluenceRegions;
use pinocchio_prob::{MinMaxRadiusCache, ProbabilityFunction};

/// Pruning state for one moving object — one row of `A_2D`.
#[derive(Debug, Clone)]
pub struct ObjectEntry {
    /// Index of the object in the problem's object slice.
    pub index: usize,
    /// Influence-arc / non-influence-boundary geometry, or `None` when
    /// the object can never be influenced (skipped by all solvers).
    pub regions: Option<InfluenceRegions>,
}

impl ObjectEntry {
    /// The object's `minMaxRadius` μ (Def. 5), or `None` when it can
    /// never be influenced — the per-entry radius the μ-aggregate object
    /// tree indexes.
    pub fn mu(&self) -> Option<f64> {
        self.regions.map(|r| r.radius())
    }
}

/// The full `A_2D` structure of Algorithm 1.
#[derive(Debug, Clone)]
pub struct A2d {
    entries: Vec<ObjectEntry>,
    influenceable: usize,
    distinct_position_counts: usize,
}

impl A2d {
    /// Runs Algorithm 1: computes `minMaxRadius` (memoised per `n`) and
    /// the pruning regions for every object.
    pub fn build<P: ProbabilityFunction>(objects: &[MovingObject], pf: &P, tau: f64) -> Self {
        let mut cache = MinMaxRadiusCache::new(tau);
        let radii = cache.get_many(pf, objects.iter().map(|o| o.position_count()));
        let mut influenceable = 0;
        let entries = objects
            .iter()
            .zip(radii)
            .enumerate()
            .map(|(index, (o, radius))| {
                let regions = radius.map(|mu| InfluenceRegions::new(o.mbr(), mu));
                if regions.is_some() {
                    influenceable += 1;
                }
                ObjectEntry { index, regions }
            })
            .collect();
        A2d {
            entries,
            influenceable,
            distinct_position_counts: cache.distinct_counts(),
        }
    }

    /// All object entries, in object order.
    pub fn entries(&self) -> &[ObjectEntry] {
        &self.entries
    }

    /// Number of objects that can possibly be influenced.
    pub fn influenceable(&self) -> usize {
        self.influenceable
    }

    /// The paper's `N`: distinct position counts across all objects
    /// (size of the HashMap `HM`).
    pub fn distinct_position_counts(&self) -> usize {
        self.distinct_position_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_geo::Point;
    use pinocchio_prob::{min_max_radius, PowerLawPf};

    fn objects() -> Vec<MovingObject> {
        vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(2.0, 1.0)]),
            MovingObject::new(1, vec![Point::new(5.0, 5.0)]),
            MovingObject::new(2, vec![Point::new(1.0, 1.0), Point::new(1.5, 1.0)]),
        ]
    }

    #[test]
    fn builds_regions_with_correct_radii() {
        let pf = PowerLawPf::paper_default();
        let a2d = A2d::build(&objects(), &pf, 0.7);
        assert_eq!(a2d.entries().len(), 3);
        assert_eq!(a2d.influenceable(), 3);
        // Two distinct position counts: 1 and 2.
        assert_eq!(a2d.distinct_position_counts(), 2);

        let mu2 = min_max_radius(&pf, 0.7, 2).unwrap();
        let r = a2d.entries()[0].regions.unwrap();
        assert!((r.radius() - mu2).abs() < 1e-12);

        let mu1 = min_max_radius(&pf, 0.7, 1).unwrap();
        let r = a2d.entries()[1].regions.unwrap();
        assert!((r.radius() - mu1).abs() < 1e-12);
    }

    #[test]
    fn uninfluenceable_objects_are_marked() {
        // τ = 0.95 > PF(0) = 0.9: single-position objects can never be
        // influenced; two-position objects still can.
        let pf = PowerLawPf::paper_default();
        let a2d = A2d::build(&objects(), &pf, 0.95);
        assert!(a2d.entries()[0].regions.is_some());
        assert!(a2d.entries()[1].regions.is_none());
        assert!(a2d.entries()[2].regions.is_some());
        assert_eq!(a2d.influenceable(), 2);
    }

    #[test]
    fn region_mbr_matches_object_mbr() {
        let objs = objects();
        let a2d = A2d::build(&objs, &PowerLawPf::paper_default(), 0.5);
        for (o, e) in objs.iter().zip(a2d.entries()) {
            assert_eq!(e.regions.unwrap().mbr(), o.mbr());
        }
    }
}
