//! Bounded admission queue and request batching.
//!
//! Connections submit query jobs with [`AdmissionQueue::try_submit`],
//! which **never blocks**: when the queue is at capacity the request is
//! shed with a typed [`SubmitError::Overloaded`] that the wire layer
//! turns into an `overloaded` error response. Backpressure is therefore
//! always explicit — a client sees the rejection immediately instead of
//! a silently growing tail latency.
//!
//! Workers drain with [`AdmissionQueue::next_batch`], taking up to a
//! configured number of jobs in one go. All jobs of a batch are answered
//! against a single epoch snapshot, which is what makes batching more
//! than a loop: expensive from-scratch `solve` requests for the same
//! algorithm are computed once per batch and shared (the
//! `solve_runs < queries_solve` gap in [`ServeStats`](crate::ServeStats)).
//!
//! After [`AdmissionQueue::close`], submissions fail with
//! [`SubmitError::Closed`] but draining continues until the queue is
//! empty — every admitted job is answered before the workers exit, so
//! graceful shutdown never drops an accepted request.

use crate::wire::{ErrorCode, QueryOp, WireError};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One admitted query: the parsed op plus everything needed to answer
/// it — the correlation id, the reply channel back to the connection's
/// writer, and the admission timestamp for the latency histogram.
#[derive(Debug)]
pub struct Job {
    /// Client correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The query to answer.
    pub op: QueryOp,
    /// When the job was admitted (starts the latency clock).
    pub enqueued: Instant,
    /// Channel to the owning connection's writer thread. Most jobs
    /// produce exactly one response line; a `heatmap` job first streams
    /// zero or more batch lines through this channel and then its one
    /// terminal (`done`) line. The channel is unbounded, so a slow
    /// client back-pressures its own socket writer, never the worker.
    pub reply: Sender<String>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue was at capacity; the request was shed.
    Overloaded {
        /// Queue depth at rejection time (== capacity).
        depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The queue was closed (server draining).
    Closed,
}

impl From<SubmitError> for WireError {
    fn from(e: SubmitError) -> WireError {
        match e {
            SubmitError::Overloaded { depth, capacity } => WireError::new(
                ErrorCode::Overloaded,
                format!("admission queue full ({depth}/{capacity}); retry later"),
            ),
            SubmitError::Closed => {
                WireError::new(ErrorCode::ShuttingDown, "server is draining".to_string())
            }
        }
    }
}

/// Outcome of a timed batch wait ([`AdmissionQueue::next_batch_timeout`]).
#[derive(Debug)]
pub enum BatchWait {
    /// Up to `max` jobs, FIFO order.
    Batch(Vec<Job>),
    /// No job arrived within the timeout; the queue is still open. The
    /// worker loop uses this wake-up to advance its parked epoch cursor
    /// (snapshot reclamation trails the oldest cursor).
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
    high_water: u64,
}

/// The bounded, condvar-backed admission queue (see module docs).
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Recovers the state even if a holder panicked mid-section; the
    /// queue's invariants (a VecDeque plus counters) cannot be torn by
    /// any panic point inside our own critical sections.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admits a job, or rejects it without ever blocking.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Overloaded {
                depth: state.jobs.len(),
                capacity: self.capacity,
            });
        }
        state.jobs.push_back(job);
        state.high_water = state.high_water.max(state.jobs.len() as u64);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until jobs are available and drains up to `max` of them in
    /// FIFO order. Returns `None` only when the queue is closed *and*
    /// empty — admitted jobs are always handed to some worker.
    pub fn next_batch(&self, max: usize) -> Option<Vec<Job>> {
        loop {
            match self.next_batch_timeout(max, Duration::from_secs(1)) {
                BatchWait::Batch(batch) => return Some(batch),
                BatchWait::TimedOut => {}
                BatchWait::Closed => return None,
            }
        }
    }

    /// Like [`Self::next_batch`], but gives up after `timeout` so the
    /// caller can do idle housekeeping (the server's workers advance
    /// their epoch cursors) instead of parking indefinitely.
    pub fn next_batch_timeout(&self, max: usize, timeout: Duration) -> BatchWait {
        let max = max.max(1);
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max);
                let batch: Vec<Job> = state.jobs.drain(..take).collect();
                let more = !state.jobs.is_empty();
                drop(state);
                if more {
                    // Leftovers exist: hand them to another worker
                    // instead of waiting for the next submission's
                    // notify.
                    self.available.notify_one();
                }
                return BatchWait::Batch(batch);
            }
            if state.closed {
                return BatchWait::Closed;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return BatchWait::TimedOut;
            };
            state = self
                .available
                .wait_timeout(state, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Closes the queue: future submissions fail, blocked workers wake
    /// and drain the remainder.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Current queue depth (racy; for the `stats` endpoint).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Highest depth ever observed at admission time.
    pub fn high_water(&self) -> u64 {
        self.lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use std::thread;

    fn job(id: u64) -> (Job, std::sync::mpsc::Receiver<String>) {
        let (tx, rx) = channel();
        (
            Job {
                id: Some(id),
                op: QueryOp::Ping,
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn sheds_at_capacity_without_blocking() {
        let q = AdmissionQueue::new(2);
        let (j1, _r1) = job(1);
        let (j2, _r2) = job(2);
        let (j3, _r3) = job(3);
        assert!(q.try_submit(j1).is_ok());
        assert!(q.try_submit(j2).is_ok());
        assert_eq!(
            q.try_submit(j3),
            Err(SubmitError::Overloaded {
                depth: 2,
                capacity: 2
            })
        );
        assert_eq!(q.high_water(), 2);
        // Draining frees capacity again.
        let batch = q.next_batch(8).expect("jobs queued");
        assert_eq!(batch.len(), 2);
        let (j4, _r4) = job(4);
        assert!(q.try_submit(j4).is_ok());
    }

    #[test]
    fn batches_drain_fifo_and_respect_max() {
        let q = AdmissionQueue::new(16);
        let mut receivers = Vec::new();
        for i in 0..5 {
            let (j, r) = job(i);
            q.try_submit(j).unwrap();
            receivers.push(r);
        }
        let first = q.next_batch(3).expect("jobs queued");
        assert_eq!(
            first.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(2)]
        );
        let rest = q.next_batch(3).expect("leftovers");
        assert_eq!(
            rest.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![Some(3), Some(4)]
        );
    }

    #[test]
    fn close_rejects_new_work_but_drains_admitted_jobs() {
        let q = AdmissionQueue::new(4);
        let (j, _r) = job(1);
        q.try_submit(j).unwrap();
        q.close();
        let (late, _r2) = job(2);
        assert_eq!(q.try_submit(late), Err(SubmitError::Closed));
        // The admitted job is still delivered…
        assert_eq!(q.next_batch(4).expect("drain remainder").len(), 1);
        // …and only then does the queue report exhaustion.
        assert!(q.next_batch(4).is_none());
    }

    #[test]
    fn blocked_workers_wake_on_submit_and_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = 0;
                while let Some(batch) = q.next_batch(2) {
                    seen += batch.len();
                }
                seen
            })
        };
        let mut receivers = Vec::new();
        for i in 0..6 {
            loop {
                let (j, r) = job(i);
                match q.try_submit(j) {
                    Ok(()) => {
                        receivers.push(r);
                        break;
                    }
                    // The single worker may lag; capacity 4 can fill.
                    Err(SubmitError::Overloaded { .. }) => thread::yield_now(),
                    Err(SubmitError::Closed) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        assert_eq!(worker.join().expect("worker panicked"), 6);
    }

    #[test]
    fn timed_wait_times_out_then_delivers_then_reports_closure() {
        let q = AdmissionQueue::new(4);
        assert!(matches!(
            q.next_batch_timeout(4, Duration::from_millis(5)),
            BatchWait::TimedOut
        ));
        let (j, _r) = job(1);
        q.try_submit(j).unwrap();
        match q.next_batch_timeout(4, Duration::from_millis(5)) {
            BatchWait::Batch(batch) => assert_eq!(batch.len(), 1),
            other => panic!("expected a batch, got {other:?}"),
        }
        q.close();
        assert!(matches!(
            q.next_batch_timeout(4, Duration::from_millis(5)),
            BatchWait::Closed
        ));
    }

    #[test]
    fn submit_errors_map_to_wire_codes() {
        let overloaded: WireError = SubmitError::Overloaded {
            depth: 8,
            capacity: 8,
        }
        .into();
        assert_eq!(overloaded.code, ErrorCode::Overloaded);
        assert!(overloaded.message.contains("8/8"));
        let closed: WireError = SubmitError::Closed.into();
        assert_eq!(closed.code, ErrorCode::ShuttingDown);
    }
}
