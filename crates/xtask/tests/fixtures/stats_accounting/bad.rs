//! Fixture: a solver entry point that ignores the cost counters.

/// Solves without any accounting.
pub fn solve_fast() -> u32 {
    0
}
