//! The paper's §1.1 motivating scenario: placing an outdoor advertising
//! balloon so that the most *mobile* customers are likely to see it.
//!
//! Generates a Foursquare-like city, samples candidate spots from its
//! venues, and compares the location PRIME-LS picks with what the
//! classical nearest-neighbour semantics (BRNN*) would pick — including
//! how many customers each choice actually influences.
//!
//! Run with `cargo run --release --example advertising`.

use pinocchio::baselines::{brnn_star, rank_descending};
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;

fn main() {
    // A small city: 400 customers, ~1000 venues.
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(400, 2024)).generate();
    let (venue_indices, candidates) = sample_candidate_group(&dataset, 120, 7);

    println!(
        "city: {} customers, {} venues, {} check-ins",
        dataset.objects().len(),
        dataset.venues().len(),
        dataset.total_checkins()
    );
    println!("candidate balloon spots: {}\n", candidates.len());

    // A customer notices the balloon with probability decaying in
    // distance; τ = 0.6 means "rather likely to have seen it".
    let problem = PrimeLs::builder()
        .objects(dataset.objects().to_vec())
        .candidates(candidates.clone())
        .probability_function(PowerLawPf::paper_default())
        .tau(0.6)
        .build()
        .expect("valid problem");

    let prime = problem.solve(Algorithm::PinocchioVo);
    println!(
        "PRIME-LS picks spot #{} at {} — influences {} customers \
         (solved in {:?}, {:.0}% of pairs pruned)",
        prime.best_candidate,
        prime.best_location,
        prime.max_influence,
        prime.elapsed,
        prime.stats.pruned_fraction().unwrap_or(0.0) * 100.0
    );

    // What would the classical NN semantics have chosen?
    let votes = brnn_star(dataset.objects(), &candidates);
    let brnn_best = rank_descending(&votes)[0];
    println!(
        "BRNN*   picks spot #{} at {} — selected by {} customers' NN votes",
        brnn_best, candidates[brnn_best], votes[brnn_best]
    );

    // Score BRNN*'s choice under the *probabilistic* influence model.
    let influences = problem.all_influences();
    println!(
        "\nunder the cumulative-probability model:\n  PRIME-LS choice influences {}\n  BRNN*    choice influences {}",
        influences[prime.best_candidate], influences[brnn_best]
    );
    if influences[brnn_best] < influences[prime.best_candidate] {
        let lost = influences[prime.best_candidate] - influences[brnn_best];
        println!("  → ignoring mobility would cost {lost} potential customers");
    }

    // Ground truth sanity check: where do the two spots rank by actual
    // check-in popularity?
    let mut by_popularity: Vec<usize> = (0..venue_indices.len()).collect();
    by_popularity.sort_by_key(|&i| std::cmp::Reverse(dataset.venues()[venue_indices[i]].checkins));
    let rank_of = |j: usize| by_popularity.iter().position(|&i| i == j).unwrap() + 1;
    println!(
        "\nground-truth popularity rank (of {}): PRIME-LS #{}, BRNN* #{}",
        venue_indices.len(),
        rank_of(prime.best_candidate),
        rank_of(brnn_best)
    );
}
