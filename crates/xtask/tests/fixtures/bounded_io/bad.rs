//! Bounded-io fixture: unbounded reads a hostile peer can grow without
//! limit — `read_to_end`, `read_line`, and uncapped buffer growth in a
//! reader-fed loop.

use std::io::{BufRead, Read};

pub fn slurp(reader: &mut impl Read) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = reader.read_to_end(&mut buf);
    buf
}

pub fn next_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    line
}

pub fn drain(reader: &mut impl BufRead) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let taken = match reader.fill_buf() {
            Ok(chunk) if !chunk.is_empty() => {
                out.extend_from_slice(chunk);
                chunk.len()
            }
            _ => break,
        };
        reader.consume(taken);
    }
    out
}
