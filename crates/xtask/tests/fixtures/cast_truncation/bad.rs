//! Cast-truncation fixture: a silent integer narrowing and a rounded
//! float crammed into a wide integer.

pub fn narrow(n: usize) -> u32 {
    n as u32
}

pub fn rounded(x: f64) -> usize {
    x.round() as usize
}
