//! ablation_index: R-tree vs uniform grid vs linear scan for the query
//! shapes the solvers issue (circle range queries, NN), plus build cost
//! (STR bulk load vs one-by-one insertion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinocchio_geo::Point;
use pinocchio_index::{GridIndex, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn points(n: usize, seed: u64) -> Vec<(Point, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..70.0)),
                i,
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let items = points(5_000, 1);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("rtree_bulk_load", |b| {
        b.iter(|| black_box(RTree::bulk_load(items.clone())).len())
    });
    group.bench_function("rtree_insert", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for (p, i) in &items {
                t.insert(*p, *i);
            }
            black_box(t.len())
        })
    });
    group.bench_function("grid_build", |b| {
        b.iter(|| black_box(GridIndex::build(items.clone(), 8).unwrap()).len())
    });
    group.finish();
}

fn bench_circle_query(c: &mut Criterion) {
    let items = points(5_000, 2);
    let rtree = RTree::bulk_load(items.clone());
    let grid = GridIndex::build(items.clone(), 8).unwrap();
    let center = Point::new(50.0, 35.0);
    let mut group = c.benchmark_group("index_circle_query");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for radius in [2.0f64, 10.0, 30.0] {
        group.bench_function(BenchmarkId::new("rtree", radius as u32), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                rtree.query_circle(&center, radius, |_, _| hits += 1);
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::new("grid", radius as u32), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                grid.query_circle(&center, radius, |_, _| hits += 1);
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::new("linear", radius as u32), |b| {
            b.iter(|| {
                let r_sq = radius * radius;
                black_box(
                    items
                        .iter()
                        .filter(|(p, _)| p.euclidean_sq(&center) <= r_sq)
                        .count(),
                )
            })
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let items = points(5_000, 3);
    let rtree = RTree::bulk_load(items.clone());
    let queries = points(100, 4);
    let mut group = c.benchmark_group("index_nn");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("rtree_nn", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (q, _) in &queries {
                acc += *rtree.nearest_neighbor(q).unwrap().1;
            }
            black_box(acc)
        })
    });
    group.bench_function("linear_nn", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (q, _) in &queries {
                acc += items
                    .iter()
                    .min_by(|a, b| a.0.euclidean_sq(q).total_cmp(&b.0.euclidean_sq(q)))
                    .unwrap()
                    .1;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_circle_query, bench_nn);
criterion_main!(benches);
