//! Wire protocol: versioned newline-delimited JSON requests/responses.
//!
//! One request per line over a plain TCP stream. Every request carries
//! the protocol version (`"v": 1`) and an optional client correlation
//! id (`"id"`), echoed verbatim in the response. The full grammar is
//! documented in DESIGN.md §12 (heat-map streaming in §17); the shapes
//! in brief:
//!
//! ```text
//! {"v":1,"id":7,"op":"best"}
//! {"v":1,"op":"top_k","k":3}
//! {"v":1,"op":"influence_of","candidate":12}
//! {"v":1,"op":"solve","algo":"pin-vo"}
//! {"v":1,"op":"heatmap","resolution":64}
//! {"v":1,"op":"top_region","k":5,"resolution":64}
//! {"v":1,"op":"stats"}            {"v":1,"op":"ping"}
//! {"v":1,"op":"insert_object","object":5,"positions":[[1.0,2.0]]}
//! {"v":1,"op":"append_position","object":5,"x":1.5,"y":2.0}
//! {"v":1,"op":"remove_object","object":5}
//! {"v":1,"op":"insert_candidate","candidate":3,"x":0.5,"y":0.25}
//! {"v":1,"op":"remove_candidate","candidate":3}
//! {"v":1,"op":"shutdown"}
//! ```
//!
//! Success responses are `{"id":…,"ok":true,"epoch":E,…}`; failures are
//! `{"id":…,"ok":false,"error":{"code":…,"message":…}}`. Error messages
//! always render through [`std::fmt::Display`] — the typed solver and
//! builder errors convert via [`From`], so a `Debug` representation can
//! never leak onto the wire.
//!
//! ## Response framing: single-line and streamed
//!
//! Every op except `heatmap` answers with **exactly one** response
//! line. `heatmap` answers with a **stream**: zero or more batch lines
//! followed by exactly one terminal line, all computed against one
//! epoch snapshot:
//!
//! ```text
//! {"id":…,"ok":true,"epoch":E,"op":"heatmap","offset":0,"tiles":[[lo,hi,sample],…]}
//! {"id":…,"ok":true,"epoch":E,"op":"heatmap","offset":512,"tiles":[…]}
//! {"id":…,"ok":true,"epoch":E,"op":"heatmap","done":true,"resolution":R,
//!  "frame":[x0,y0,x1,y1],"tiles_total":T,"batches":B,…}
//! ```
//!
//! Batches hold at most [`TILES_PER_BATCH`] row-major tiles
//! (`offset` is the row-major index of the first one), so each line
//! stays far below the 1 MiB framing cap. The contract every client
//! must honour: **the correlation id and epoch are echoed on every
//! batch, and the stream ends with the one line carrying
//! `"done":true`** — batch lines never carry it. Responses to *other*
//! requests pipelined on the same connection may interleave between
//! the batches of a stream (workers answer concurrently); the echoed
//! id is what ties a stream together, so streaming clients should
//! always send an id. A failed `heatmap` emits a single ordinary
//! error line and no batches.
//!
//! The protocol is **shard-transparent**: a server running an
//! object-partitioned topology ([`ShardedWorld`](crate::ShardedWorld))
//! answers every query identically to an unsharded one, bit for bit —
//! with one calibrated exception: a streamed tile's `[lo, hi]` band is
//! descent-dependent, so a sharded server may report different (still
//! sound, still `lo ≤ sample ≤ hi`) bands than an unsharded one. Tile
//! `sample` values, `top_region` answers, and every other op stay
//! bit-identical. The only other shard-visible surface is the `stats`
//! response, which additionally reports per-shard counters as
//! `"shards":[{"shard":0,"objects":…,"candidates":…,"updates_routed":…},…]`
//! (one entry per shard; the unsharded server reports the trivial
//! 1-shard topology).

use pinocchio_core::{Algorithm, BuildError, SolveError};
use pinocchio_geo::Point;
use pinocchio_heatmap::HeatmapError;
use serde_json::{json, Value};

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Maximum tiles per streamed `heatmap` batch line. 512 tiles render
/// to roughly 20 KiB of JSON — comfortably under the 1 MiB line cap
/// even for clients that mirror the server's request framing limit.
pub const TILES_PER_BATCH: usize = 512;

/// Largest `resolution` accepted on the wire (tiles per axis, power of
/// two). Tighter than the solver's own cap: a 512² grid streams ~9 MiB
/// of tiles, which is already a raster export, not a dashboard query.
pub const MAX_WIRE_RESOLUTION: u32 = 512;

/// A read-only query, answered by the worker pool against one epoch
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// The current optimal candidate.
    Best,
    /// The `k` highest-influence candidates.
    TopK {
        /// Number of entries requested (`>= 1`).
        k: usize,
    },
    /// Exact influence of one candidate (wire id).
    InfluenceOf {
        /// The candidate's wire id.
        candidate: u64,
    },
    /// From-scratch solve of the snapshot with a named algorithm —
    /// dispatched to the existing solvers, shared across a batch.
    Solve {
        /// Which solver to run.
        algorithm: Algorithm,
    },
    /// The influence heat map of the frame, streamed as tile batches
    /// (the one multi-line response in the protocol; see the module
    /// docs for the framing contract).
    Heatmap {
        /// Tiles per axis (power of two, `<= MAX_WIRE_RESOLUTION`).
        resolution: u32,
    },
    /// The `k` highest-influence tiles of the (virtual) heat map at
    /// `resolution`, by exact centre count.
    TopRegion {
        /// Number of tiles requested (`>= 1`).
        k: usize,
        /// Tiles per axis (power of two, `<= MAX_WIRE_RESOLUTION`).
        resolution: u32,
    },
    /// The server's [`ServeStats`](crate::ServeStats) counter block.
    Stats,
    /// Liveness probe; returns the current epoch.
    Ping,
}

/// A state mutation, applied by the single writer thread in arrival
/// order. Object/candidate ids are client-chosen `u64`s, stable across
/// the connection and unrelated to internal slot handles.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Insert a new moving object with its initial trajectory.
    InsertObject {
        /// Client-chosen object id (must be fresh).
        object: u64,
        /// Initial positions (at least one, all finite).
        positions: Vec<Point>,
    },
    /// Append one freshly observed position to an object.
    AppendPosition {
        /// Target object id.
        object: u64,
        /// The new position (finite).
        position: Point,
    },
    /// Remove an object.
    RemoveObject {
        /// Target object id.
        object: u64,
    },
    /// Insert a candidate location.
    InsertCandidate {
        /// Client-chosen candidate id (must be fresh).
        candidate: u64,
        /// The candidate's location (finite).
        location: Point,
    },
    /// Remove a candidate.
    RemoveCandidate {
        /// Target candidate id.
        candidate: u64,
    },
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A read-only query.
    Query {
        /// Client correlation id, echoed in the response.
        id: Option<u64>,
        /// The query.
        op: QueryOp,
    },
    /// A state mutation.
    Update {
        /// Client correlation id, echoed in the response.
        id: Option<u64>,
        /// The mutation.
        op: UpdateOp,
    },
    /// Graceful-shutdown control command.
    Shutdown {
        /// Client correlation id, echoed in the response.
        id: Option<u64>,
    },
}

impl Request {
    /// The request's correlation id, whichever variant it is.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Query { id, .. } | Request::Update { id, .. } | Request::Shutdown { id } => {
                *id
            }
        }
    }
}

/// Machine-readable failure categories carried in error responses.
///
/// `#[non_exhaustive]` mirrors the core error enums: clients must treat
/// unknown codes as retriable-or-report, so the protocol can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The line was not a valid request (JSON, shape, or argument).
    Malformed,
    /// The request named a protocol version this build does not speak.
    UnsupportedVersion,
    /// The bounded admission/ingest queue was full — explicit load
    /// shedding; retry later.
    Overloaded,
    /// The server is draining; no further requests are admitted.
    ShuttingDown,
    /// An update referenced an object id that is not live.
    UnknownObject,
    /// A query/update referenced a candidate id that is not live.
    UnknownCandidate,
    /// An insert reused a live object id.
    DuplicateObject,
    /// An insert reused a live candidate id.
    DuplicateCandidate,
    /// A coordinate was NaN or infinite.
    NonFinite,
    /// The query needs live state the snapshot does not have (e.g.
    /// `best` with no candidates).
    Empty,
    /// A from-scratch solve could not be assembled ([`BuildError`]).
    Build,
    /// A dispatched solver reported a [`SolveError`].
    Solve,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UnknownObject => "unknown_object",
            ErrorCode::UnknownCandidate => "unknown_candidate",
            ErrorCode::DuplicateObject => "duplicate_object",
            ErrorCode::DuplicateCandidate => "duplicate_candidate",
            ErrorCode::NonFinite => "non_finite",
            ErrorCode::Empty => "empty",
            ErrorCode::Build => "build",
            ErrorCode::Solve => "solve",
        }
    }
}

/// A typed wire-layer failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (Display-rendered, never Debug).
    pub message: String,
}

impl WireError {
    /// Builds an error from its parts.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for a malformed-request error.
    pub fn malformed(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::Malformed, message)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

impl From<SolveError> for WireError {
    /// The shared conversion for solver failures: the wildcard arm keeps
    /// this total as `SolveError` (non-exhaustive) grows, and the
    /// message is the error's `Display` rendering.
    fn from(e: SolveError) -> Self {
        WireError::new(ErrorCode::Solve, e.to_string())
    }
}

impl From<BuildError> for WireError {
    /// Same contract as the [`SolveError`] conversion, for problem
    /// assembly failures.
    fn from(e: BuildError) -> Self {
        WireError::new(ErrorCode::Build, e.to_string())
    }
}

impl From<HeatmapError> for WireError {
    /// Heat-map rejections: argument problems are `malformed` (the
    /// parse-time validation normally catches them first, so hitting
    /// this arm means a serve-internal caller passed bad arguments);
    /// an underivable frame is the same `empty` a `best` on a
    /// candidate-less world reports. The wildcard keeps this total as
    /// the non-exhaustive `HeatmapError` grows.
    fn from(e: HeatmapError) -> Self {
        let code = match e {
            HeatmapError::Resolution(_) | HeatmapError::ZeroK => ErrorCode::Malformed,
            HeatmapError::EmptyFrame => ErrorCode::Empty,
            _ => ErrorCode::Malformed,
        };
        WireError::new(code, e.to_string())
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = serde_json::from_str(line).map_err(|_| WireError::malformed("invalid JSON"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| WireError::malformed("request must be a JSON object"))?;
    match obj.get("v").and_then(Value::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!(
                    "protocol version {v} not supported (this build speaks {PROTOCOL_VERSION})"
                ),
            ))
        }
        None => return Err(WireError::malformed("missing protocol version field \"v\"")),
    }
    let id = obj.get("id").and_then(Value::as_u64);
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::malformed("missing \"op\" field"))?;
    let query = |op: QueryOp| Ok(Request::Query { id, op });
    match op {
        "best" => query(QueryOp::Best),
        "stats" => query(QueryOp::Stats),
        "ping" => query(QueryOp::Ping),
        "top_k" => {
            let k = require_u64(obj.get("k"), "k")? as usize;
            if k == 0 {
                return Err(WireError::malformed("\"k\" must be at least 1"));
            }
            query(QueryOp::TopK { k })
        }
        "influence_of" => query(QueryOp::InfluenceOf {
            candidate: require_u64(obj.get("candidate"), "candidate")?,
        }),
        "heatmap" => query(QueryOp::Heatmap {
            resolution: require_resolution(obj)?,
        }),
        "top_region" => {
            let k = require_u64(obj.get("k"), "k")? as usize;
            if k == 0 {
                return Err(WireError::malformed("\"k\" must be at least 1"));
            }
            query(QueryOp::TopRegion {
                k,
                resolution: require_resolution(obj)?,
            })
        }
        "solve" => {
            let algo = obj.get("algo").and_then(Value::as_str).unwrap_or("pin-vo");
            let algorithm = parse_algorithm(algo)?;
            query(QueryOp::Solve { algorithm })
        }
        "insert_object" => {
            let object = require_u64(obj.get("object"), "object")?;
            let raw = obj
                .get("positions")
                .and_then(Value::as_array)
                .ok_or_else(|| WireError::malformed("missing \"positions\" array"))?;
            if raw.is_empty() {
                return Err(WireError::malformed("\"positions\" must be non-empty"));
            }
            let positions = raw
                .iter()
                .map(parse_point_pair)
                .collect::<Result<Vec<Point>, WireError>>()?;
            Ok(Request::Update {
                id,
                op: UpdateOp::InsertObject { object, positions },
            })
        }
        "append_position" => Ok(Request::Update {
            id,
            op: UpdateOp::AppendPosition {
                object: require_u64(obj.get("object"), "object")?,
                position: parse_point_fields(obj)?,
            },
        }),
        "remove_object" => Ok(Request::Update {
            id,
            op: UpdateOp::RemoveObject {
                object: require_u64(obj.get("object"), "object")?,
            },
        }),
        "insert_candidate" => Ok(Request::Update {
            id,
            op: UpdateOp::InsertCandidate {
                candidate: require_u64(obj.get("candidate"), "candidate")?,
                location: parse_point_fields(obj)?,
            },
        }),
        "remove_candidate" => Ok(Request::Update {
            id,
            op: UpdateOp::RemoveCandidate {
                candidate: require_u64(obj.get("candidate"), "candidate")?,
            },
        }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(WireError::malformed(format!("unknown op \"{other}\""))),
    }
}

fn require_u64(value: Option<&Value>, field: &str) -> Result<u64, WireError> {
    value
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::malformed(format!("missing or invalid \"{field}\"")))
}

/// Parses and validates the `resolution` field of a heat-map query.
fn require_resolution(obj: &serde_json::Map) -> Result<u32, WireError> {
    let raw = require_u64(obj.get("resolution"), "resolution")?;
    let resolution = u32::try_from(raw).unwrap_or(u32::MAX);
    if resolution == 0 || !resolution.is_power_of_two() || resolution > MAX_WIRE_RESOLUTION {
        return Err(WireError::malformed(format!(
            "\"resolution\" must be a power of two in 1..={MAX_WIRE_RESOLUTION}, got {raw}"
        )));
    }
    Ok(resolution)
}

fn require_f64(value: Option<&Value>, field: &str) -> Result<f64, WireError> {
    let v = value
        .and_then(Value::as_f64)
        .ok_or_else(|| WireError::malformed(format!("missing or invalid \"{field}\"")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(WireError::new(
            ErrorCode::NonFinite,
            format!("\"{field}\" must be finite"),
        ))
    }
}

/// Parses `{"x":…,"y":…}` coordinate fields off a request object.
fn parse_point_fields(obj: &serde_json::Map) -> Result<Point, WireError> {
    Ok(Point::new(
        require_f64(obj.get("x"), "x")?,
        require_f64(obj.get("y"), "y")?,
    ))
}

/// Parses one `[x, y]` pair of a `positions` array.
fn parse_point_pair(value: &Value) -> Result<Point, WireError> {
    let pair = value
        .as_array()
        .ok_or_else(|| WireError::malformed("positions entries must be [x, y] pairs"))?;
    match pair {
        [x, y] => {
            let (x, y) = (
                require_f64(Some(x), "positions[].x")?,
                require_f64(Some(y), "positions[].y")?,
            );
            Ok(Point::new(x, y))
        }
        _ => Err(WireError::malformed(
            "positions entries must be [x, y] pairs",
        )),
    }
}

/// Parses the CLI's algorithm spelling (shared with `--algo`).
pub fn parse_algorithm(name: &str) -> Result<Algorithm, WireError> {
    match name {
        "na" => Ok(Algorithm::Naive),
        "pin" => Ok(Algorithm::Pinocchio),
        "pin-vo" => Ok(Algorithm::PinocchioVo),
        "pin-vo*" => Ok(Algorithm::PinocchioVoStar),
        "pin-join" => Ok(Algorithm::PinocchioJoin),
        other => Err(WireError::malformed(format!(
            "unknown algorithm \"{other}\""
        ))),
    }
}

/// Renders a success response line (no trailing newline).
pub fn response_ok(id: Option<u64>, epoch: u64, body: serde_json::Map) -> String {
    let mut map = serde_json::Map::new();
    if let Some(id) = id {
        map.insert("id".to_string(), json!(id));
    }
    map.insert("ok".to_string(), json!(true));
    map.insert("epoch".to_string(), json!(epoch));
    for (k, v) in body.iter() {
        map.insert(k.clone(), v.clone());
    }
    render(Value::Object(map))
}

/// Renders a failure response line (no trailing newline).
pub fn response_err(id: Option<u64>, error: &WireError) -> String {
    let mut map = serde_json::Map::new();
    if let Some(id) = id {
        map.insert("id".to_string(), json!(id));
    }
    map.insert("ok".to_string(), json!(false));
    map.insert(
        "error".to_string(),
        json!({
            "code": error.code.as_str(),
            "message": error.message.clone(),
        }),
    );
    render(Value::Object(map))
}

fn render(value: Value) -> String {
    // The stand-in serialiser is infallible; the Result exists for
    // signature compatibility with real serde_json.
    serde_json::to_string(&value).unwrap_or_else(|_| "{\"ok\":false}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_shape() {
        assert_eq!(
            parse_request(r#"{"v":1,"id":7,"op":"best"}"#),
            Ok(Request::Query {
                id: Some(7),
                op: QueryOp::Best
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"top_k","k":3}"#),
            Ok(Request::Query {
                id: None,
                op: QueryOp::TopK { k: 3 }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"influence_of","candidate":12}"#),
            Ok(Request::Query {
                id: None,
                op: QueryOp::InfluenceOf { candidate: 12 }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"solve","algo":"na"}"#),
            Ok(Request::Query {
                id: None,
                op: QueryOp::Solve {
                    algorithm: Algorithm::Naive
                }
            })
        );
        // "solve" defaults to PIN-VO.
        assert_eq!(
            parse_request(r#"{"v":1,"op":"solve"}"#),
            Ok(Request::Query {
                id: None,
                op: QueryOp::Solve {
                    algorithm: Algorithm::PinocchioVo
                }
            })
        );
        assert!(matches!(
            parse_request(r#"{"v":1,"op":"stats"}"#),
            Ok(Request::Query {
                op: QueryOp::Stats,
                ..
            })
        ));
        assert_eq!(
            parse_request(r#"{"v":1,"id":9,"op":"heatmap","resolution":64}"#),
            Ok(Request::Query {
                id: Some(9),
                op: QueryOp::Heatmap { resolution: 64 }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"top_region","k":5,"resolution":128}"#),
            Ok(Request::Query {
                id: None,
                op: QueryOp::TopRegion {
                    k: 5,
                    resolution: 128
                }
            })
        );
    }

    #[test]
    fn heatmap_resolution_is_validated_at_parse_time() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        // Not a power of two, zero, over the wire cap, missing.
        assert_eq!(
            code(r#"{"v":1,"op":"heatmap","resolution":48}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"heatmap","resolution":0}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"heatmap","resolution":1024}"#),
            ErrorCode::Malformed
        );
        assert_eq!(code(r#"{"v":1,"op":"heatmap"}"#), ErrorCode::Malformed);
        // A resolution past u32 must not wrap into a valid one.
        assert_eq!(
            code(r#"{"v":1,"op":"heatmap","resolution":4294967297}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"top_region","k":0,"resolution":64}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"top_region","resolution":64}"#),
            ErrorCode::Malformed
        );
        // The wire cap is accepted exactly.
        assert!(parse_request(&format!(
            r#"{{"v":1,"op":"heatmap","resolution":{MAX_WIRE_RESOLUTION}}}"#
        ))
        .is_ok());
    }

    #[test]
    fn heatmap_errors_convert_with_typed_codes() {
        let w: WireError = HeatmapError::Resolution(48).into();
        assert_eq!(w.code, ErrorCode::Malformed);
        assert_eq!(w.message, HeatmapError::Resolution(48).to_string());
        let w: WireError = HeatmapError::EmptyFrame.into();
        assert_eq!(w.code, ErrorCode::Empty);
        let w: WireError = HeatmapError::ZeroK.into();
        assert_eq!(w.code, ErrorCode::Malformed);
    }

    #[test]
    fn parses_every_update_shape() {
        assert_eq!(
            parse_request(
                r#"{"v":1,"op":"insert_object","object":5,"positions":[[1.0,2.0],[3,4]]}"#
            ),
            Ok(Request::Update {
                id: None,
                op: UpdateOp::InsertObject {
                    object: 5,
                    positions: vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)],
                }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"id":1,"op":"append_position","object":5,"x":1.5,"y":-2.0}"#),
            Ok(Request::Update {
                id: Some(1),
                op: UpdateOp::AppendPosition {
                    object: 5,
                    position: Point::new(1.5, -2.0),
                }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"insert_candidate","candidate":3,"x":0.5,"y":0.25}"#),
            Ok(Request::Update {
                id: None,
                op: UpdateOp::InsertCandidate {
                    candidate: 3,
                    location: Point::new(0.5, 0.25),
                }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"remove_object","object":9}"#),
            Ok(Request::Update {
                id: None,
                op: UpdateOp::RemoveObject { object: 9 }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"op":"remove_candidate","candidate":9}"#),
            Ok(Request::Update {
                id: None,
                op: UpdateOp::RemoveCandidate { candidate: 9 }
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"id":2,"op":"shutdown"}"#),
            Ok(Request::Shutdown { id: Some(2) })
        );
    }

    #[test]
    fn rejects_bad_requests_with_typed_codes() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("not json"), ErrorCode::Malformed);
        assert_eq!(code(r#"[1,2]"#), ErrorCode::Malformed);
        assert_eq!(code(r#"{"op":"best"}"#), ErrorCode::Malformed);
        assert_eq!(
            code(r#"{"v":2,"op":"best"}"#),
            ErrorCode::UnsupportedVersion
        );
        assert_eq!(code(r#"{"v":1,"op":"warp"}"#), ErrorCode::Malformed);
        assert_eq!(code(r#"{"v":1,"op":"top_k","k":0}"#), ErrorCode::Malformed);
        assert_eq!(code(r#"{"v":1,"op":"top_k"}"#), ErrorCode::Malformed);
        assert_eq!(
            code(r#"{"v":1,"op":"solve","algo":"magic"}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"insert_object","object":1,"positions":[]}"#),
            ErrorCode::Malformed
        );
        assert_eq!(
            code(r#"{"v":1,"op":"insert_object","object":1,"positions":[[1,2,3]]}"#),
            ErrorCode::Malformed
        );
    }

    #[test]
    fn non_finite_coordinates_get_their_own_code() {
        // JSON has no literal NaN/Infinity, but exponent overflow
        // produces one at parse time.
        let err = parse_request(r#"{"v":1,"op":"append_position","object":1,"x":1e999,"y":0}"#)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::NonFinite);
    }

    #[test]
    fn core_errors_convert_through_display_not_debug() {
        let w: WireError = SolveError::ZeroThreads.into();
        assert_eq!(w.code, ErrorCode::Solve);
        assert_eq!(w.message, SolveError::ZeroThreads.to_string());
        // Not the Debug spelling:
        assert_ne!(w.message, format!("{:?}", SolveError::ZeroThreads));

        let w: WireError = BuildError::NoCandidates.into();
        assert_eq!(w.code, ErrorCode::Build);
        assert_eq!(w.message, BuildError::NoCandidates.to_string());
        assert_ne!(w.message, format!("{:?}", BuildError::NoCandidates));
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let mut body = serde_json::Map::new();
        body.insert("influence".to_string(), json!(9));
        let line = response_ok(Some(4), 17, body);
        let v = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(17));
        assert_eq!(v.get("influence").and_then(Value::as_u64), Some(9));
        assert!(!line.contains('\n'), "one response per line");

        let err = WireError::new(ErrorCode::Overloaded, "queue full (64/64)");
        let line = response_err(None, &err);
        let v = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("overloaded")
        );
    }
}
