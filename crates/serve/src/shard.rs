//! Object-partitioned serving: N in-process shard worlds behind one
//! shard-transparent coordinator.
//!
//! [`ShardedWorld`] holds one full [`World`] per shard. Objects are
//! routed to the shard [`shard_of`] names for their wire id — stable
//! across epochs and restarts — while candidate updates are broadcast so
//! every shard holds the identical candidate set in identical slot
//! order. Each shard world maintains its own incremental state (the
//! PR 6 delta-validated maintenance path runs per shard, touching only
//! the shard that owns the moved object), and the writer thread's
//! clone-apply-publish cycle clones all N shard worlds — cheap, because
//! a [`World`] clone is structural sharing over `Arc`ed position logs.
//!
//! Queries merge per-shard partials:
//!
//! * `influence_of` / `best` / `top_k` — influence is a sum over
//!   objects, so the merged per-candidate influence is the elementwise
//!   sum of the shard worlds' counts; ranking the merged counts by
//!   (influence desc, slot) reproduces the unsharded ranking bit for
//!   bit.
//! * `solve` — each shard freezes its partition into a static
//!   [`PrimeLs`](pinocchio_core::PrimeLs) and the core sharded solver
//!   ([`pinocchio_core::try_solve_sharded`]) merges filter partials and
//!   fans residual verification back out to the owning shards.
//!
//! The wire protocol stays shard-transparent: clients see one world,
//! and only the `stats` response gains a per-shard counter block. The
//! [`ShardTransport`] trait is the seam for future multi-process
//! shards: the coordinator only needs the trait surface for updates,
//! and the serve crate's replay path doubles as shard catch-up.

use crate::ingest::{SolveOutcome, World};
use crate::wire::{UpdateOp, WireError};
use pinocchio_core::{
    shard_of, try_solve_sharded, Algorithm, BuildError, MaintenanceMode, ShardedPrimeLs,
};
use pinocchio_geo::{Mbr, Point};
use pinocchio_heatmap::{Heatmap, HeatmapError, TopRegion};
use std::cmp::Reverse;

/// The transport seam between the coordinator and one shard.
///
/// Today's only implementation is [`InProcessShard`]; a multi-process
/// shard would implement the same surface by shipping ops over its own
/// connection and replaying the update stream as catch-up.
pub trait ShardTransport {
    /// Applies one routed (or broadcast) update to the shard.
    fn apply(&mut self, op: &UpdateOp) -> Result<(), WireError>;
    /// Live objects owned by the shard.
    fn object_count(&self) -> usize;
    /// Live candidates broadcast to the shard.
    fn candidate_count(&self) -> usize;
}

/// An in-process shard: one [`World`] owning one object partition.
#[derive(Debug, Clone)]
pub struct InProcessShard {
    world: World,
}

impl InProcessShard {
    fn new(world: World) -> InProcessShard {
        InProcessShard { world }
    }

    /// Read access for the coordinator's query merges (an in-process
    /// privilege: a remote transport would answer these over its wire).
    pub fn world(&self) -> &World {
        &self.world
    }
}

impl ShardTransport for InProcessShard {
    fn apply(&mut self, op: &UpdateOp) -> Result<(), WireError> {
        self.world.apply(op)
    }

    fn object_count(&self) -> usize {
        self.world.object_count()
    }

    fn candidate_count(&self) -> usize {
        self.world.candidate_count()
    }
}

/// Per-shard counters surfaced in the wire `stats` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard slot index.
    pub shard: usize,
    /// Live objects owned by the shard.
    pub objects: usize,
    /// Live candidates (broadcast; identical on every shard).
    pub candidates: usize,
    /// Object updates routed to this shard since construction
    /// (candidate broadcasts are not counted — they hit every shard).
    pub updates_routed: u64,
}

/// N shard worlds behind one [`World`]-shaped query surface.
///
/// With `shard_count <= 1` this is a zero-cost wrapper over the single
/// world — every call delegates — so the unsharded server topology is
/// the 1-shard special case, bit for bit.
#[derive(Debug, Clone)]
pub struct ShardedWorld {
    shards: Vec<InProcessShard>,
    routed_updates: Vec<u64>,
}

impl ShardedWorld {
    /// Re-partitions a seed world across `shard_count` shards: the
    /// candidate set is broadcast in slot order (so every shard assigns
    /// the same slots), then each object is routed by [`shard_of`] on
    /// its wire id. `shard_count <= 1` keeps the seed world as-is.
    pub fn from_world(world: World, shard_count: usize) -> Result<ShardedWorld, WireError> {
        let n = shard_count.max(1);
        if n == 1 {
            return Ok(ShardedWorld {
                shards: vec![InProcessShard::new(world)],
                routed_updates: vec![0],
            });
        }
        let tau = world.tau();
        let mode = world.maintenance_mode();
        let candidates = world.live_influences()?;
        let mut shards: Vec<InProcessShard> = (0..n)
            .map(|_| {
                let mut w = World::new(tau);
                w.set_maintenance_mode(mode);
                InProcessShard::new(w)
            })
            .collect();
        for &(id, location, _) in &candidates {
            let op = UpdateOp::InsertCandidate {
                candidate: id,
                location,
            };
            for shard in &mut shards {
                shard.apply(&op)?;
            }
        }
        for object in world.snapshot_objects() {
            let op = UpdateOp::InsertObject {
                object: object.id(),
                positions: object.positions().to_vec(),
            };
            shards[shard_of(object.id(), n)].apply(&op)?;
        }
        Ok(ShardedWorld {
            shards,
            routed_updates: vec![0; n],
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard counters for the `stats` response.
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardSummary {
                shard,
                objects: s.object_count(),
                candidates: s.candidate_count(),
                updates_routed: self.routed_updates[shard],
            })
            .collect()
    }

    /// Total live objects across all shards.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(ShardTransport::object_count).sum()
    }

    /// Live candidates (identical on every shard).
    pub fn candidate_count(&self) -> usize {
        self.shards[0].candidate_count()
    }

    /// The live candidate ids, ascending.
    pub fn candidate_ids(&self) -> Vec<u64> {
        self.shards[0].world.candidate_ids()
    }

    /// The live object ids, ascending, across all shards.
    pub fn object_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.world.object_ids())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The active maintenance mode (identical on every shard).
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.shards[0].world.maintenance_mode()
    }

    /// Switches the maintenance mode on every shard.
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        for shard in &mut self.shards {
            shard.world.set_maintenance_mode(mode);
        }
    }

    /// Rebuilds every shard's influence counts from scratch and asserts
    /// they match the incremental state. Test/benchmark gate.
    pub fn verify_against_static(&self) {
        for shard in &self.shards {
            shard.world.verify_against_static();
        }
    }

    /// Applies one update: object ops are routed to the owning shard,
    /// candidate ops are broadcast to all shards. On error nothing
    /// changed — shard 0 validates broadcasts first, and because every
    /// shard holds the identical candidate state, its verdict is every
    /// shard's verdict.
    pub fn apply(&mut self, op: &UpdateOp) -> Result<(), WireError> {
        match op {
            UpdateOp::InsertObject { object, .. }
            | UpdateOp::AppendPosition { object, .. }
            | UpdateOp::RemoveObject { object } => {
                let s = shard_of(*object, self.shards.len());
                self.shards[s].apply(op)?;
                self.routed_updates[s] += 1;
                Ok(())
            }
            UpdateOp::InsertCandidate { .. } | UpdateOp::RemoveCandidate { .. } => {
                let (first, rest) = self
                    .shards
                    .split_first_mut()
                    .expect("a sharded world always has at least one shard");
                first.apply(op)?;
                for shard in rest {
                    shard
                        .apply(op)
                        .expect("candidate broadcast diverged across shards");
                }
                Ok(())
            }
        }
    }

    /// Every live candidate as `(wire id, location, merged influence)`,
    /// slot order — the elementwise sum of the shard partials.
    fn merged_live(&self) -> Result<Vec<(u64, Point, u32)>, WireError> {
        let mut shards = self.shards.iter();
        let first = shards
            .next()
            .expect("a sharded world always has at least one shard");
        let mut merged = first.world.live_influences()?;
        for shard in shards {
            let partial = shard.world.live_influences()?;
            assert_eq!(
                partial.len(),
                merged.len(),
                "candidate broadcast diverged across shards"
            );
            for (acc, (id, _, influence)) in merged.iter_mut().zip(partial) {
                debug_assert_eq!(acc.0, id, "candidate slot order diverged across shards");
                acc.2 += influence;
            }
        }
        Ok(merged)
    }

    /// The current optimum as `(wire id, location, influence)`; ties
    /// break towards the earlier slot — the same rule as the unsharded
    /// [`World::best`].
    pub fn best(&self) -> Result<Option<(u64, Point, u32)>, WireError> {
        let live = self.merged_live()?;
        Ok(live
            .into_iter()
            .enumerate()
            .max_by_key(|&(slot, (_, _, influence))| (influence, Reverse(slot)))
            .map(|(_, entry)| entry))
    }

    /// The `k` highest-influence candidates, influence descending, ties
    /// by slot order — identical ranking to the unsharded
    /// [`World::top_k`] because the merged influences are exact.
    pub fn top_k(&self, k: usize) -> Result<Vec<(u64, Point, u32)>, WireError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let mut live: Vec<(usize, (u64, Point, u32))> =
            self.merged_live()?.into_iter().enumerate().collect();
        let rank = |a: &(usize, (u64, Point, u32)), b: &(usize, (u64, Point, u32))| {
            (Reverse(a.1 .2), a.0).cmp(&(Reverse(b.1 .2), b.0))
        };
        if k < live.len() {
            live.select_nth_unstable_by(k - 1, rank);
            live.truncate(k);
        }
        live.sort_unstable_by(rank);
        Ok(live.into_iter().map(|(_, entry)| entry).collect())
    }

    /// Exact influence of one candidate: the sum of the shard worlds'
    /// counts (each shard counts its own objects, partitions are
    /// disjoint).
    pub fn influence_of(&self, candidate: u64) -> Result<u32, WireError> {
        let mut total = 0u32;
        for shard in &self.shards {
            total += shard.world.influence_of(candidate)?;
        }
        Ok(total)
    }

    /// The influence heat map of the full object set: per-shard
    /// descents over the **global** frame (the union of every shard's
    /// influenceable-object bounds — bit-identical to the unsharded
    /// frame, because `f64` min/max is exact and associative), merged
    /// elementwise. Influence is a sum over disjoint object
    /// partitions, so merged `sample` values are exact and equal the
    /// unsharded ones bit for bit; merged `[lo, hi]` bands are sums of
    /// sound per-shard bands — sound, but descent-dependent, so they
    /// may be wider or narrower than the unsharded descent's.
    pub fn heatmap(&self, resolution: u32) -> Result<Heatmap, WireError> {
        if self.shards.len() == 1 {
            return self.shards[0].world.heatmap(resolution, None);
        }
        let mut problems = Vec::new();
        for shard in &self.shards {
            if shard.object_count() == 0 {
                continue;
            }
            problems.push(shard.world.to_problem()?.0);
        }
        if problems.is_empty() {
            // No shard owns an object — the same error the unsharded
            // freeze raises on an object-less world.
            return Err(WireError::from(BuildError::NoObjects));
        }
        let mut frame: Option<Mbr> = None;
        for problem in &problems {
            if let Some(bounds) = problem.object_tree().bounds() {
                frame = Some(match frame {
                    Some(f) => f.union(&bounds),
                    None => bounds,
                });
            }
        }
        let Some(frame) = frame else {
            return Err(WireError::from(HeatmapError::EmptyFrame));
        };
        let mut merged: Option<Heatmap> = None;
        for problem in &problems {
            let partial = pinocchio_heatmap::try_heatmap(problem, resolution, Some(frame))?;
            match &mut merged {
                None => merged = Some(partial),
                Some(acc) => {
                    debug_assert_eq!(acc.tiles.len(), partial.tiles.len());
                    for (a, t) in acc.tiles.iter_mut().zip(&partial.tiles) {
                        a.lo += t.lo;
                        a.hi += t.hi;
                        a.sample += t.sample;
                    }
                    acc.stats += partial.stats;
                }
            }
        }
        Ok(merged.expect("at least one shard problem was frozen"))
    }

    /// The `k` highest-influence tiles, `(influence desc, tile index
    /// asc)`. Implemented as an argmax scan over the merged heat map —
    /// merged samples are exact, so this bit-matches the unsharded
    /// branch-and-bound answer (both equal the argmax over exact
    /// per-tile counts).
    pub fn top_region(&self, k: usize, resolution: u32) -> Result<TopRegion, WireError> {
        if self.shards.len() == 1 {
            return self.shards[0].world.top_region(k, resolution, None);
        }
        if k == 0 {
            return Err(WireError::from(HeatmapError::ZeroK));
        }
        let heatmap = self.heatmap(resolution)?;
        let mut ranked: Vec<(usize, u32)> = heatmap
            .tiles
            .iter()
            .enumerate()
            .map(|(tile, t)| (tile, t.sample))
            .collect();
        let rank =
            |a: &(usize, u32), b: &(usize, u32)| (Reverse(a.1), a.0).cmp(&(Reverse(b.1), b.0));
        if k < ranked.len() {
            ranked.select_nth_unstable_by(k - 1, rank);
            ranked.truncate(k);
        }
        ranked.sort_unstable_by(rank);
        let cells = ranked
            .into_iter()
            .map(|(tile, influence)| pinocchio_heatmap::RegionCell {
                tile,
                center: heatmap.tile_center(tile),
                influence,
            })
            .collect();
        Ok(TopRegion {
            frame: heatmap.frame,
            resolution,
            cells,
            stats: heatmap.stats,
        })
    }

    /// Freezes every shard and solves through the core sharded
    /// coordinator ([`try_solve_sharded`]): per-shard filter partials,
    /// merged bounds, residual verify fan-out. One shard delegates to
    /// the unsharded drivers. Same winner as [`Self::best`], ties
    /// included — the exactness property the soak suite gates on.
    pub fn solve(&self, algorithm: Algorithm, threads: usize) -> Result<SolveOutcome, WireError> {
        if self.shards.len() == 1 {
            return self.shards[0].world.solve(algorithm, threads);
        }
        let threads = threads.max(1);
        let mut problems = Vec::with_capacity(self.shards.len());
        let mut ids: Option<Vec<u64>> = None;
        for shard in &self.shards {
            if shard.object_count() == 0 {
                problems.push(None);
                continue;
            }
            let (problem, shard_ids) = shard.world.to_problem()?;
            match &ids {
                Some(existing) => {
                    debug_assert_eq!(
                        existing, &shard_ids,
                        "candidate slots diverged across shards"
                    );
                }
                None => ids = Some(shard_ids),
            }
            problems.push(Some(problem));
        }
        let Some(ids) = ids else {
            // No shard owns an object — the same error the unsharded
            // freeze raises on an object-less world.
            return Err(WireError::from(BuildError::NoObjects));
        };
        let sharded = ShardedPrimeLs::from_problems(problems).map_err(WireError::from)?;
        let result = try_solve_sharded(&sharded, algorithm, threads)?;
        Ok(SolveOutcome {
            algorithm: result.algorithm,
            candidate: ids[result.best_candidate],
            location: result.best_location,
            influence: result.max_influence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_world(seed: u64, objects: usize, candidates: usize) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = World::new(0.7);
        for j in 0..candidates {
            w.apply(&UpdateOp::InsertCandidate {
                candidate: j as u64,
                location: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            })
            .unwrap();
        }
        for i in 0..objects {
            let n = rng.gen_range(1..10);
            let positions = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)))
                .collect();
            w.apply(&UpdateOp::InsertObject {
                object: i as u64,
                positions,
            })
            .unwrap();
        }
        w
    }

    fn random_op(rng: &mut StdRng, live: &mut Vec<u64>, next_id: &mut u64) -> UpdateOp {
        let roll = rng.gen_range(0u32..10);
        if roll < 6 && !live.is_empty() {
            UpdateOp::AppendPosition {
                object: live[rng.gen_range(0..live.len())],
                position: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            }
        } else if roll < 9 || live.len() <= 5 {
            let object = *next_id;
            *next_id += 1;
            live.push(object);
            UpdateOp::InsertObject {
                object,
                positions: vec![Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                )],
            }
        } else {
            let object = live.swap_remove(rng.gen_range(0..live.len()));
            UpdateOp::RemoveObject { object }
        }
    }

    fn assert_same_answers(sharded: &ShardedWorld, mirror: &World) {
        assert_eq!(sharded.best().unwrap(), mirror.best().unwrap());
        for k in [1, 3, 100] {
            assert_eq!(sharded.top_k(k).unwrap(), mirror.top_k(k).unwrap());
        }
        for id in mirror.candidate_ids() {
            assert_eq!(
                sharded.influence_of(id).unwrap(),
                mirror.influence_of(id).unwrap()
            );
        }
    }

    #[test]
    fn one_shard_wraps_the_world_unchanged() {
        let world = random_world(3, 30, 8);
        let sharded = ShardedWorld::from_world(world.clone(), 1).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_same_answers(&sharded, &world);
        let outcome = sharded.solve(Algorithm::PinocchioVo, 2).unwrap();
        assert_eq!(outcome, world.solve(Algorithm::PinocchioVo, 2).unwrap());
    }

    #[test]
    fn partitioned_queries_and_solves_bit_match_the_unsharded_world() {
        let world = random_world(5, 40, 9);
        for n in [2, 4, 8] {
            let sharded = ShardedWorld::from_world(world.clone(), n).unwrap();
            assert_eq!(sharded.shard_count(), n);
            assert_eq!(sharded.object_count(), world.object_count());
            assert_eq!(sharded.candidate_count(), world.candidate_count());
            assert_eq!(sharded.object_ids(), world.object_ids());
            sharded.verify_against_static();
            assert_same_answers(&sharded, &world);
            for algorithm in Algorithm::WITH_EXTENSIONS {
                for threads in [1, 3] {
                    let got = sharded.solve(algorithm, threads).unwrap();
                    let want = world.solve(algorithm, 1).unwrap();
                    assert_eq!(got.candidate, want.candidate, "{algorithm:?} n={n}");
                    assert_eq!(got.influence, want.influence, "{algorithm:?} n={n}");
                    assert_eq!(
                        (got.location.x.to_bits(), got.location.y.to_bits()),
                        (want.location.x.to_bits(), want.location.y.to_bits())
                    );
                }
            }
        }
    }

    #[test]
    fn routed_updates_stay_in_lockstep_with_an_unsharded_mirror() {
        let mut mirror = random_world(7, 25, 7);
        let mut sharded = ShardedWorld::from_world(mirror.clone(), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0x5AD7);
        let mut live = mirror.object_ids();
        let mut next_id = 1000u64;
        for step in 0..120 {
            let op = random_op(&mut rng, &mut live, &mut next_id);
            sharded.apply(&op).unwrap();
            mirror.apply(&op).unwrap();
            if step % 20 == 19 {
                sharded.verify_against_static();
                assert_same_answers(&sharded, &mirror);
                let outcome = sharded.solve(Algorithm::PinocchioJoin, 2).unwrap();
                assert_eq!(outcome, mirror.solve(Algorithm::PinocchioJoin, 1).unwrap());
            }
        }
        // Routing counters account exactly the object updates applied.
        let routed: u64 = sharded
            .shard_summaries()
            .iter()
            .map(|s| s.updates_routed)
            .sum();
        assert_eq!(routed, 120);
        // Candidate churn broadcasts; both sides keep agreeing.
        sharded
            .apply(&UpdateOp::InsertCandidate {
                candidate: 99,
                location: Point::new(1.0, 1.0),
            })
            .unwrap();
        mirror
            .apply(&UpdateOp::InsertCandidate {
                candidate: 99,
                location: Point::new(1.0, 1.0),
            })
            .unwrap();
        assert_same_answers(&sharded, &mirror);
        sharded
            .apply(&UpdateOp::RemoveCandidate { candidate: 99 })
            .unwrap();
        mirror
            .apply(&UpdateOp::RemoveCandidate { candidate: 99 })
            .unwrap();
        assert_same_answers(&sharded, &mirror);
        for summary in sharded.shard_summaries() {
            assert_eq!(summary.candidates, mirror.candidate_count());
        }
    }

    #[test]
    fn sharded_heatmaps_keep_exact_samples_and_sound_bands() {
        let world = random_world(11, 40, 6);
        let unsharded = ShardedWorld::from_world(world.clone(), 1).unwrap();
        let base = unsharded.heatmap(32).unwrap();
        assert_eq!(base.tiles.len(), 32 * 32);
        for n in [2, 4] {
            let sharded = ShardedWorld::from_world(world.clone(), n).unwrap();
            let merged = sharded.heatmap(32).unwrap();
            // The global frame is the union of per-shard bounds — bit-equal
            // to the unsharded frame because f64 min/max is exact.
            assert_eq!(merged.frame, base.frame, "n={n}");
            assert_eq!(merged.resolution, base.resolution);
            for (i, (m, b)) in merged.tiles.iter().zip(&base.tiles).enumerate() {
                // Samples are exact sums over disjoint partitions.
                assert_eq!(m.sample, b.sample, "tile {i} sample, n={n}");
                // Bands are descent-dependent, but both must stay sound.
                assert!(m.lo <= m.sample && m.sample <= m.hi, "tile {i}, n={n}");
            }
        }
    }

    #[test]
    fn sharded_top_region_bit_matches_the_unsharded_answer() {
        let world = random_world(13, 35, 5);
        let unsharded = ShardedWorld::from_world(world.clone(), 1).unwrap();
        for k in [1, 4, 9] {
            let base = unsharded.top_region(k, 16).unwrap();
            assert_eq!(base.cells.len(), k.min(16 * 16));
            for n in [2, 4] {
                let sharded = ShardedWorld::from_world(world.clone(), n).unwrap();
                let got = sharded.top_region(k, 16).unwrap();
                assert_eq!(got.frame, base.frame);
                assert_eq!(got.resolution, base.resolution);
                assert_eq!(got.cells, base.cells, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn heatmap_on_an_objectless_sharded_world_is_a_typed_error() {
        let mut w = World::new(0.7);
        w.apply(&UpdateOp::InsertCandidate {
            candidate: 0,
            location: Point::ORIGIN,
        })
        .unwrap();
        let sharded = ShardedWorld::from_world(w, 4).unwrap();
        let err = sharded.heatmap(16).unwrap_err();
        assert_eq!(err.code, ErrorCode::Build);
        let err = sharded.top_region(3, 16).unwrap_err();
        assert_eq!(err.code, ErrorCode::Build);
    }

    #[test]
    fn update_errors_are_typed_and_leave_every_shard_unchanged() {
        let world = random_world(9, 20, 6);
        let mut sharded = ShardedWorld::from_world(world, 4).unwrap();
        let before = sharded.shard_summaries();
        let err = sharded
            .apply(&UpdateOp::AppendPosition {
                object: 777,
                position: Point::ORIGIN,
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownObject);
        let err = sharded
            .apply(&UpdateOp::InsertCandidate {
                candidate: 0,
                location: Point::ORIGIN,
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateCandidate);
        assert_eq!(sharded.shard_summaries(), before);
        sharded.verify_against_static();
    }

    #[test]
    fn empty_worlds_error_like_the_unsharded_path() {
        let mut w = World::new(0.7);
        w.apply(&UpdateOp::InsertCandidate {
            candidate: 0,
            location: Point::ORIGIN,
        })
        .unwrap();
        let sharded = ShardedWorld::from_world(w, 4).unwrap();
        let err = sharded.solve(Algorithm::PinocchioVo, 2).unwrap_err();
        assert_eq!(err.code, ErrorCode::Build);
    }
}
