//! Criterion benches for the four PRIME-LS solvers (micro version of
//! Fig. 8) plus the parallel-validation ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinocchio_core::{parallel, solve_with_options, Algorithm, PrimeLs};
use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio_prob::PowerLawPf;
use std::hint::black_box;
use std::time::Duration;

fn fixture(users: usize, candidates: usize) -> PrimeLs<PowerLawPf> {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, 42)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, 7);
    PrimeLs::builder()
        .objects(d.objects().to_vec())
        .candidates(cands)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap()
}

/// Fig. 8 in miniature: all four algorithms on the same instance.
fn bench_algorithms(c: &mut Criterion) {
    let problem = fixture(250, 150);
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for algorithm in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(algorithm.label()), |b| {
            b.iter(|| black_box(problem.solve(algorithm)).max_influence)
        });
    }
    group.finish();
}

/// Candidate-count scaling of the headline algorithm (Fig. 8 sweep).
fn bench_vo_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pin_vo_candidates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for m in [50usize, 100, 200, 400] {
        let problem = fixture(250, m);
        group.bench_function(BenchmarkId::from_parameter(m), |b| {
            b.iter(|| black_box(problem.solve(Algorithm::PinocchioVo)).max_influence)
        });
    }
    group.finish();
}

/// ablation_parallel: sequential vs threaded NA, PIN and PIN-VO.
/// The PIN-VO rows exercise the shared-atomic-bound work-stealing
/// driver; on a multi-core machine `vo_par/4` should beat `vo_seq` on
/// this instance (on a single-core box expect parity — the rows then
/// bound the driver's queue/atomic overhead instead).
fn bench_parallel(c: &mut Criterion) {
    let problem = fixture(250, 150);
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("naive_seq", |b| {
        b.iter(|| black_box(problem.solve(Algorithm::Naive)).max_influence)
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("naive_par", threads), |b| {
            b.iter(|| black_box(parallel::solve_naive(&problem, threads)).max_influence)
        });
    }
    group.bench_function("pin_seq", |b| {
        b.iter(|| black_box(problem.solve(Algorithm::Pinocchio)).max_influence)
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("pin_par", threads), |b| {
            b.iter(|| black_box(parallel::solve_pinocchio(&problem, threads)).max_influence)
        });
    }
    // The VO rows get a bigger instance: on tiny problems the heap
    // cut-off leaves so little validation work that thread spawn +
    // queue contention swamp the gains.
    let vo_problem = fixture(1500, 400);
    group.bench_function("vo_seq", |b| {
        b.iter(|| black_box(vo_problem.solve(Algorithm::PinocchioVo)).max_influence)
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("vo_par", threads), |b| {
            b.iter(|| black_box(parallel::solve_vo(&vo_problem, threads)).max_influence)
        });
    }
    group.finish();
}

/// ablation_strategies: the two validation optimizations toggled on the
/// pruned solver:
/// * `s1_s2`   — full PIN-VO (bounds heap + early stopping),
/// * `s1_only` — bounds heap with exhaustive per-object validation,
/// * `none`    — plain PIN (Algorithm 2: no heap, no early stop).
fn bench_strategies(c: &mut Criterion) {
    let problem = fixture(250, 150);
    let mut group = c.benchmark_group("ablation_strategies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("s1_s2 (PIN-VO)", |b| {
        b.iter(|| black_box(solve_with_options(&problem, true, true)).max_influence)
    });
    group.bench_function("s1_only", |b| {
        b.iter(|| black_box(solve_with_options(&problem, true, false)).max_influence)
    });
    group.bench_function("none (PIN)", |b| {
        b.iter(|| black_box(problem.solve(Algorithm::Pinocchio)).max_influence)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_vo_scaling,
    bench_parallel,
    bench_strategies
);
criterion_main!(benches);
