//! Parallel influence counting — an extension beyond the paper.
//!
//! The paper's future work mentions scaling to dynamic scenarios; an
//! obvious first step is exploiting cores. Influence counting is
//! embarrassingly parallel over *objects*: each thread processes an
//! object stripe against all candidates and produces a partial influence
//! vector; vectors are summed at the end. The pruning rules apply
//! per-object, so PINOCCHIO parallelises the same way.
//!
//! PINOCCHIO-VO is *not* parallelised here: Strategy 1's global
//! `maxminInf` bound makes it inherently sequential — exactly the kind
//! of design trade-off the `ablation_parallel` benchmark quantifies
//! (pruned-but-parallel PIN vs sequential-but-adaptive VO).
//!
//! Scoped threads from `std` are used; the partial vectors are the only
//! shared state and are owned per thread.

use crate::problem::PrimeLs;
use crate::result::{Algorithm, SolveResult, SolveStats};
use crate::state::A2d;
use pinocchio_index::RTree;
use pinocchio_prob::ProbabilityFunction;
use std::time::Instant;

/// Parallel NA: exhaustive counting with `threads` worker threads.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_naive<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let tau = problem.tau();
    let m = problem.candidates().len();
    let objects = problem.objects();
    let chunk = objects.len().div_ceil(threads);

    let partials: Vec<(Vec<u32>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = objects
            .chunks(chunk.max(1))
            .map(|stripe| {
                let eval = problem.evaluator();
                scope.spawn(move || {
                    let mut inf = vec![0u32; m];
                    let mut positions = 0u64;
                    for o in stripe {
                        for (j, c) in problem.candidates().iter().enumerate() {
                            positions += o.position_count() as u64;
                            if eval.influences(c, o.positions(), tau) {
                                inf[j] += 1;
                            }
                        }
                    }
                    (inf, positions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    finish(problem, partials, Algorithm::Naive, start, 0)
}

/// Parallel PINOCCHIO: per-object pruning and validation distributed
/// over `threads` worker threads (the candidate R-tree is shared
/// read-only).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_pinocchio<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let tau = problem.tau();
    let m = problem.candidates().len();

    let tree: RTree<usize> = problem
        .candidates()
        .iter()
        .enumerate()
        .map(|(j, &c)| (c, j))
        .collect();
    let a2d = A2d::build(problem.objects(), problem.pf(), tau);
    let uninfluenceable = (a2d.entries().len() - a2d.influenceable()) as u64;
    let entries = a2d.entries();
    let chunk = entries.len().div_ceil(threads);

    let partials: Vec<(Vec<u32>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk.max(1))
            .map(|stripe| {
                let eval = problem.evaluator();
                let tree = &tree;
                scope.spawn(move || {
                    let mut inf = vec![0u32; m];
                    let mut positions = 0u64;
                    let mut undecided: Vec<usize> = Vec::new();
                    for entry in stripe {
                        let Some(regions) = entry.regions else { continue };
                        let object = &problem.objects()[entry.index];
                        undecided.clear();
                        tree.query_region(
                            |node| node.intersects(&regions.nib_mbr()),
                            |p| regions.in_non_influence_boundary(p),
                            &mut |p, &j| {
                                if regions.in_influence_arcs(p) {
                                    inf[j] += 1;
                                } else {
                                    undecided.push(j);
                                }
                            },
                        );
                        for &j in &undecided {
                            positions += object.position_count() as u64;
                            if eval.influences(
                                &problem.candidates()[j],
                                object.positions(),
                                tau,
                            ) {
                                inf[j] += 1;
                            }
                        }
                    }
                    (inf, positions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    finish(problem, partials, Algorithm::Pinocchio, start, uninfluenceable)
}

fn finish<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    partials: Vec<(Vec<u32>, u64)>,
    algorithm: Algorithm,
    start: Instant,
    uninfluenceable: u64,
) -> SolveResult {
    let m = problem.candidates().len();
    let mut influences = vec![0u32; m];
    let mut positions_evaluated = 0;
    for (partial, positions) in partials {
        for (acc, v) in influences.iter_mut().zip(partial) {
            *acc += v;
        }
        positions_evaluated += positions;
    }
    let (best_candidate, &max_influence) = influences
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .expect("at least one candidate");
    SolveResult {
        algorithm,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: Some(influences),
        stats: SolveStats {
            positions_evaluated,
            uninfluenceable_objects: uninfluenceable,
            ..Default::default()
        },
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, pinocchio};
    use pinocchio_data::{GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn problem(seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(60, seed)).generate();
        let (_, candidates) = pinocchio_data::sample_candidate_group(&d, 30, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_naive_matches_sequential() {
        let p = problem(31);
        let seq = naive::solve(&p);
        for threads in [1, 2, 4, 7] {
            let par = solve_naive(&p, threads);
            assert_eq!(par.influences, seq.influences, "threads={threads}");
            assert_eq!(par.best_candidate, seq.best_candidate);
            assert_eq!(par.stats.positions_evaluated, seq.stats.positions_evaluated);
        }
    }

    #[test]
    fn parallel_pinocchio_matches_sequential() {
        let p = problem(32);
        let seq = pinocchio::solve(&p);
        for threads in [1, 3, 8] {
            let par = solve_pinocchio(&p, threads);
            assert_eq!(par.influences, seq.influences, "threads={threads}");
            assert_eq!(par.best_candidate, seq.best_candidate);
        }
    }

    #[test]
    fn more_threads_than_objects_is_fine() {
        let p = problem(33);
        let par = solve_naive(&p, 500);
        let seq = naive::solve(&p);
        assert_eq!(par.influences, seq.influences);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let p = problem(34);
        let _ = solve_naive(&p, 0);
    }
}
