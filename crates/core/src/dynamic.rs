//! Incremental PRIME-LS for dynamic scenarios — the paper's stated
//! future work (§7: "we plan to study incremental solution towards
//! PRIME-LS in dynamic scenarios, where candidate locations, objects as
//! well as their positions keep on changing").
//!
//! [`DynamicPrimeLs`] maintains the *exact* per-candidate influence
//! counts under four kinds of updates:
//!
//! * object insertion / removal,
//! * appending a freshly observed position to an object,
//! * candidate insertion / removal.
//!
//! The maintained state is a per-object bitmask of the candidates that
//! influence it, so removals are O(m/64) and the optimal candidate is
//! always available exactly. Updates reuse the static machinery — the
//! per-object pruning regions classify most candidates without any
//! probability computation — plus one incremental theorem:
//!
//! > **Monotonicity under growth** (from Definition 1): appending a
//! > position never decreases `Pr_c(O)`, so a candidate that influences
//! > `O` keeps influencing it. Only the currently *non-influencing*
//! > candidates need rechecking when a position arrives.
//!
//! Every operation leaves the structure in a state identical to
//! rebuilding from scratch (asserted extensively by the tests).

use crate::result::Algorithm;
use pinocchio_data::MovingObject;
use pinocchio_geo::{InfluenceRegions, Point, RegionVerdict};
use pinocchio_prob::{min_max_radius, CumulativeProbability, ProbabilityFunction};

/// Handle to an object slot in a [`DynamicPrimeLs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectHandle(usize);

/// Handle to a candidate slot in a [`DynamicPrimeLs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateHandle(usize);

/// One live object row: the object plus its cached pruning geometry and
/// the bitmask of candidate slots it is currently influenced by.
#[derive(Debug, Clone)]
struct ObjectRow {
    object: MovingObject,
    /// `None` when the object can never be influenced at the current τ.
    regions: Option<InfluenceRegions>,
    /// Bit `j` set ⇔ candidate slot `j` influences this object.
    influenced_by: Vec<u64>,
}

/// Exact, incrementally maintained PRIME-LS state.
///
/// All coordinates are planar kilometres, matching the static solvers.
///
/// ```
/// use pinocchio_core::DynamicPrimeLs;
/// use pinocchio_data::MovingObject;
/// use pinocchio_geo::Point;
/// use pinocchio_prob::PowerLawPf;
///
/// let mut state = DynamicPrimeLs::new(PowerLawPf::paper_default(), 0.7);
/// let kiosk = state.insert_candidate(Point::new(0.0, 0.0));
/// let user = state.insert_object(MovingObject::new(0, vec![Point::new(40.0, 0.0)]));
/// assert_eq!(state.influence(kiosk), 0); // too far away
///
/// // The user checks in right next to the kiosk: PF(0.1) ≈ 0.82 ≥ 0.7.
/// state.append_position(user, Point::new(0.1, 0.0));
/// assert_eq!(state.influence(kiosk), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicPrimeLs<P> {
    pf: P,
    tau: f64,
    objects: Vec<Option<ObjectRow>>,
    candidates: Vec<Option<Point>>,
    /// Exact `inf(c)` per candidate slot (0 for freed slots).
    influences: Vec<u32>,
    live_objects: usize,
}

impl<P: ProbabilityFunction + Clone> DynamicPrimeLs<P> {
    /// Creates an empty dynamic instance.
    ///
    /// # Panics
    /// Panics unless `τ ∈ (0, 1)`.
    pub fn new(pf: P, tau: f64) -> Self {
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
        DynamicPrimeLs {
            pf,
            tau,
            objects: Vec::new(),
            candidates: Vec::new(),
            influences: Vec::new(),
            live_objects: 0,
        }
    }

    /// Bootstraps from a static problem description.
    pub fn from_parts(
        pf: P,
        tau: f64,
        objects: Vec<MovingObject>,
        candidates: Vec<Point>,
    ) -> (Self, Vec<ObjectHandle>, Vec<CandidateHandle>) {
        let mut this = Self::new(pf, tau);
        let cands: Vec<CandidateHandle> = candidates
            .into_iter()
            .map(|c| this.insert_candidate(c))
            .collect();
        let objs: Vec<ObjectHandle> = objects.into_iter().map(|o| this.insert_object(o)).collect();
        (this, objs, cands)
    }

    fn evaluator(&self) -> CumulativeProbability<P, pinocchio_geo::Euclidean> {
        CumulativeProbability::new(self.pf.clone(), pinocchio_geo::Euclidean)
    }

    /// The influence threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.live_objects
    }

    /// Number of live candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.iter().flatten().count()
    }

    /// Exact influence of a candidate.
    ///
    /// # Panics
    /// Panics on a stale (removed) handle.
    pub fn influence(&self, c: CandidateHandle) -> u32 {
        assert!(self.candidates[c.0].is_some(), "stale candidate handle");
        self.influences[c.0]
    }

    /// Every live candidate as `(handle, location, influence)`, in slot
    /// order — the snapshot hook the serving layer's `top_k` and
    /// `influence_of` queries read. Slot order matches the candidate
    /// order of [`Self::to_prime_ls`], so rankings derived from either
    /// agree on ties.
    pub fn live_candidates(&self) -> Vec<(CandidateHandle, Point, u32)> {
        self.candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|point| (CandidateHandle(j), point, self.influences[j])))
            .collect()
    }

    /// Iterates over the live moving objects (slot order).
    pub fn objects(&self) -> impl Iterator<Item = &MovingObject> {
        self.objects.iter().flatten().map(|row| &row.object)
    }

    /// Freezes the current state into a static [`PrimeLs`] problem — the
    /// from-scratch solve entry used by the serving layer's `solve`
    /// requests and exactness gates. The returned handles give, for each
    /// candidate index of the static problem, the corresponding live
    /// slot; index order equals slot order, so the static solvers'
    /// smallest-index tie-break reproduces [`Self::best`]'s
    /// smallest-slot tie-break.
    ///
    /// Fails with [`BuildError::NoObjects`] / [`BuildError::NoCandidates`]
    /// when either live set is empty (`PF` and `τ` were validated at
    /// construction and cannot fail here).
    pub fn to_prime_ls(
        &self,
    ) -> Result<(crate::problem::PrimeLs<P>, Vec<CandidateHandle>), crate::problem::BuildError>
    {
        let live = self.live_candidates();
        let problem = crate::problem::PrimeLs::builder()
            .objects(self.objects().cloned().collect())
            .candidates(live.iter().map(|&(_, p, _)| p).collect())
            .probability_function(self.pf.clone())
            .tau(self.tau)
            .build()?;
        Ok((problem, live.into_iter().map(|(h, _, _)| h).collect()))
    }

    /// The current optimum `(handle, location, influence)`, ties broken
    /// towards the older (smaller-slot) candidate; `None` when no live
    /// candidate exists.
    pub fn best(&self) -> Option<(CandidateHandle, Point, u32)> {
        self.candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|point| (j, point)))
            .max_by(|a, b| {
                self.influences[a.0]
                    .cmp(&self.influences[b.0])
                    .then(b.0.cmp(&a.0))
            })
            .map(|(j, point)| (CandidateHandle(j), point, self.influences[j]))
    }

    // ---- bitmask helpers ------------------------------------------------

    fn mask_words(&self) -> usize {
        self.candidates.len().div_ceil(64)
    }

    fn bit(mask: &[u64], j: usize) -> bool {
        mask.get(j / 64).is_some_and(|w| w >> (j % 64) & 1 == 1)
    }

    fn set_bit(mask: &mut Vec<u64>, j: usize) {
        if mask.len() <= j / 64 {
            mask.resize(j / 64 + 1, 0);
        }
        mask[j / 64] |= 1 << (j % 64);
    }

    fn clear_bit(mask: &mut [u64], j: usize) {
        if let Some(w) = mask.get_mut(j / 64) {
            *w &= !(1 << (j % 64));
        }
    }

    // ---- object updates -------------------------------------------------

    /// Inserts an object, classifying every live candidate through the
    /// pruning regions and validating only the undecided ones.
    pub fn insert_object(&mut self, object: MovingObject) -> ObjectHandle {
        let regions = min_max_radius(&self.pf, self.tau, object.position_count())
            .map(|mu| InfluenceRegions::new(object.mbr(), mu));
        let mut row = ObjectRow {
            object,
            regions,
            influenced_by: vec![0; self.mask_words()],
        };
        self.classify_candidates_into(&mut row, None);
        for w in 0..row.influenced_by.len() {
            let mut bits = row.influenced_by[w];
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                self.influences[j] += 1;
                bits &= bits - 1;
            }
        }
        self.live_objects += 1;
        let handle = ObjectHandle(self.objects.len());
        self.objects.push(Some(row));
        handle
    }

    /// Removes an object, subtracting its influence contributions.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn remove_object(&mut self, handle: ObjectHandle) -> MovingObject {
        // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
        let row = self.objects[handle.0].take().expect("stale object handle");
        for (w, &bits) in row.influenced_by.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                self.influences[j] -= 1;
                bits &= bits - 1;
            }
        }
        self.live_objects -= 1;
        row.object
    }

    /// Appends a freshly observed position to an object.
    ///
    /// By monotonicity only candidates that did *not* influence the
    /// object can change state, and they can only gain influence —
    /// the bitmask grows, never shrinks.
    ///
    /// # Panics
    /// Panics on a stale handle or a non-finite position.
    pub fn append_position(&mut self, handle: ObjectHandle, position: Point) {
        assert!(position.is_finite(), "non-finite position");
        // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
        let mut row = self.objects[handle.0].take().expect("stale object handle");
        let mut positions = row.object.positions().to_vec();
        positions.push(position);
        row.object = MovingObject::new(row.object.id(), positions);
        // n changed ⇒ minMaxRadius changed; MBR may have grown.
        row.regions = min_max_radius(&self.pf, self.tau, row.object.position_count())
            .map(|mu| InfluenceRegions::new(row.object.mbr(), mu));
        let previously = row.influenced_by.clone();
        self.classify_candidates_into(&mut row, Some(&previously));
        // Count the newly gained candidates.
        for (w, (&now, &before)) in row.influenced_by.iter().zip(&previously).enumerate() {
            debug_assert_eq!(now & before, before, "influence must be monotone");
            let mut gained = now & !before;
            while gained != 0 {
                let j = w * 64 + gained.trailing_zeros() as usize;
                self.influences[j] += 1;
                gained &= gained - 1;
            }
        }
        self.objects[handle.0] = Some(row);
    }

    /// Recomputes `row.influenced_by`. With `skip_influenced`, bits
    /// already set in the given previous mask are kept without
    /// re-validation (the monotone append path).
    fn classify_candidates_into(&self, row: &mut ObjectRow, skip_influenced: Option<&[u64]>) {
        let eval = self.evaluator();
        let words = self.mask_words();
        row.influenced_by.resize(words, 0);
        for (j, cand) in self.candidates.iter().enumerate() {
            let Some(c) = cand else { continue };
            if let Some(prev) = skip_influenced {
                if Self::bit(prev, j) {
                    Self::set_bit(&mut row.influenced_by, j);
                    continue;
                }
            }
            let influenced = match &row.regions {
                None => false,
                Some(regions) => match regions.classify(c) {
                    RegionVerdict::Influences => true,
                    RegionVerdict::CannotInfluence => false,
                    RegionVerdict::Undecided => {
                        eval.influences_early_stop(c, row.object.positions(), self.tau)
                            .influenced
                    }
                },
            };
            if influenced {
                Self::set_bit(&mut row.influenced_by, j);
            } else {
                Self::clear_bit(&mut row.influenced_by, j);
            }
        }
    }

    // ---- candidate updates ----------------------------------------------

    /// Inserts a candidate, computing its exact influence against every
    /// live object (classification first, validation only when needed).
    ///
    /// # Panics
    /// Panics on a non-finite location.
    pub fn insert_candidate(&mut self, location: Point) -> CandidateHandle {
        assert!(location.is_finite(), "non-finite candidate");
        // Reuse a freed slot when available so bitmasks stay compact.
        let j = match self.candidates.iter().position(Option::is_none) {
            Some(j) => {
                self.candidates[j] = Some(location);
                j
            }
            None => {
                self.candidates.push(Some(location));
                self.influences.push(0);
                self.candidates.len() - 1
            }
        };
        let eval = self.evaluator();
        let mut influence = 0u32;
        let tau = self.tau;
        for row in self.objects.iter_mut().flatten() {
            let influenced = match &row.regions {
                None => false,
                Some(regions) => match regions.classify(&location) {
                    RegionVerdict::Influences => true,
                    RegionVerdict::CannotInfluence => false,
                    RegionVerdict::Undecided => {
                        eval.influences_early_stop(&location, row.object.positions(), tau)
                            .influenced
                    }
                },
            };
            if influenced {
                Self::set_bit(&mut row.influenced_by, j);
                influence += 1;
            } else {
                Self::clear_bit(&mut row.influenced_by, j);
            }
        }
        self.influences[j] = influence;
        CandidateHandle(j)
    }

    /// Removes a candidate.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn remove_candidate(&mut self, handle: CandidateHandle) -> Point {
        let location = self.candidates[handle.0]
            .take()
            // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
            .expect("stale candidate handle");
        self.influences[handle.0] = 0;
        for row in self.objects.iter_mut().flatten() {
            Self::clear_bit(&mut row.influenced_by, handle.0);
        }
        location
    }

    // ---- verification -----------------------------------------------

    /// Rebuilds the influence counts from scratch with the static solver
    /// and asserts they match the incremental state. Test/debug aid;
    /// O(full solve).
    pub fn verify_against_static(&self) {
        let objects: Vec<MovingObject> = self
            .objects
            .iter()
            .flatten()
            .map(|r| r.object.clone())
            .collect();
        let live: Vec<(usize, Point)> = self
            .candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|p| (j, p)))
            .collect();
        if objects.is_empty() || live.is_empty() {
            for (j, _) in &live {
                assert_eq!(self.influences[*j], 0, "slot {j}");
            }
            return;
        }
        let problem = crate::problem::PrimeLs::builder()
            .objects(objects)
            .candidates(live.iter().map(|&(_, p)| p).collect())
            .probability_function(self.pf.clone())
            .tau(self.tau)
            .build()
            // pinocchio-lint: allow(panic-path) -- self-check helper: the live sets are non-empty (guarded above) and pf/tau were validated at construction
            .expect("well-formed");
        let reference = problem
            .solve(Algorithm::Pinocchio)
            .influences
            // pinocchio-lint: allow(panic-path) -- pinocchio::solve always populates `influences`; this whole fn is an assert-based debugging aid
            .expect("PIN reports all influences");
        for (k, (j, _)) in live.iter().enumerate() {
            assert_eq!(
                self.influences[*j], reference[k],
                "influence mismatch at slot {j}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_prob::PowerLawPf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng_object(rng: &mut StdRng, id: u64) -> MovingObject {
        let n = rng.gen_range(1..12);
        MovingObject::new(
            id,
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)))
                .collect(),
        )
    }

    fn fresh(tau: f64) -> DynamicPrimeLs<PowerLawPf> {
        DynamicPrimeLs::new(PowerLawPf::paper_default(), tau)
    }

    #[test]
    fn empty_state() {
        let d = fresh(0.7);
        assert_eq!(d.object_count(), 0);
        assert_eq!(d.candidate_count(), 0);
        assert_eq!(d.best(), None);
        d.verify_against_static();
    }

    #[test]
    fn insertions_match_static_solver() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = fresh(0.7);
        for k in 0..10 {
            d.insert_candidate(Point::new(
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..20.0),
            ));
            if k % 2 == 0 {
                d.verify_against_static();
            }
        }
        for i in 0..25 {
            d.insert_object(rng_object(&mut rng, i));
            if i % 5 == 0 {
                d.verify_against_static();
            }
        }
        d.verify_against_static();
        assert_eq!(d.object_count(), 25);
        assert_eq!(d.candidate_count(), 10);
    }

    #[test]
    fn removals_match_static_solver() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = fresh(0.5);
        let cands: Vec<_> = (0..8)
            .map(|_| {
                d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                ))
            })
            .collect();
        let objs: Vec<_> = (0..20)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        d.verify_against_static();

        for &h in objs.iter().step_by(3) {
            d.remove_object(h);
        }
        d.verify_against_static();
        d.remove_candidate(cands[2]);
        d.remove_candidate(cands[5]);
        d.verify_against_static();
        assert_eq!(d.candidate_count(), 6);
    }

    #[test]
    fn append_position_is_monotone_and_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = fresh(0.7);
        for _ in 0..6 {
            d.insert_candidate(Point::new(
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..20.0),
            ));
        }
        let handles: Vec<_> = (0..10)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        d.verify_against_static();

        for step in 0..30 {
            let h = handles[step % handles.len()];
            d.append_position(
                h,
                Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            );
            if step % 6 == 0 {
                d.verify_against_static();
            }
        }
        d.verify_against_static();
    }

    #[test]
    fn appending_near_a_candidate_gains_influence() {
        let mut d = fresh(0.7);
        let c = d.insert_candidate(Point::new(0.0, 0.0));
        let o = d.insert_object(MovingObject::new(0, vec![Point::new(50.0, 50.0)]));
        assert_eq!(d.influence(c), 0);
        // One position right on the candidate: PF(0) = 0.9 ≥ 0.7.
        d.append_position(o, Point::new(0.0, 0.0));
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn slot_reuse_after_candidate_removal() {
        let mut d = fresh(0.7);
        let a = d.insert_candidate(Point::new(0.0, 0.0));
        let _b = d.insert_candidate(Point::new(10.0, 0.0));
        d.insert_object(MovingObject::new(0, vec![Point::new(0.1, 0.0)]));
        assert_eq!(d.influence(a), 1);
        d.remove_candidate(a);
        // New candidate reuses slot 0 and must get a fresh, correct count.
        let c = d.insert_candidate(Point::new(0.2, 0.0));
        assert_eq!(c, CandidateHandle(0));
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn best_tracks_updates() {
        let mut d = fresh(0.6);
        let west = d.insert_candidate(Point::new(0.0, 0.0));
        let east = d.insert_candidate(Point::new(20.0, 0.0));
        for i in 0..3 {
            d.insert_object(MovingObject::new(i, vec![Point::new(0.1 * i as f64, 0.0)]));
        }
        let (h, _, inf) = d.best().unwrap();
        assert_eq!(h, west);
        assert_eq!(inf, 3);
        // Shift the world east.
        let handles: Vec<_> = (3..8)
            .map(|i| {
                // y ∈ {0.0 .. 0.4}: PF(0.4) = 0.9/1.4 ≈ 0.64 ≥ 0.6.
                d.insert_object(MovingObject::new(
                    i,
                    vec![Point::new(20.0, 0.1 * (i - 3) as f64)],
                ))
            })
            .collect();
        let (h, _, inf) = d.best().unwrap();
        assert_eq!(h, east);
        assert_eq!(inf, 5);
        for h in handles {
            d.remove_object(h);
        }
        assert_eq!(d.best().unwrap().0, west);
        d.verify_against_static();
    }

    #[test]
    fn uninfluenceable_objects_can_become_influenceable() {
        // τ = 0.95 > PF(0): a single-position object can never be
        // influenced, but appending a second position changes that.
        let mut d = fresh(0.95);
        let c = d.insert_candidate(Point::new(0.0, 0.0));
        let o = d.insert_object(MovingObject::new(0, vec![Point::new(0.0, 0.1)]));
        assert_eq!(d.influence(c), 0);
        d.append_position(o, Point::new(0.1, 0.0));
        // Two positions at ~0.1 km: 1 − (1 − 0.9/1.1)² ≈ 0.967 ≥ 0.95.
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn to_prime_ls_freezes_current_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = fresh(0.7);
        let cands: Vec<_> = (0..6)
            .map(|_| {
                d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                ))
            })
            .collect();
        let objs: Vec<_> = (0..15)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        // Punch holes so slot order and index order genuinely differ
        // from insertion order.
        d.remove_candidate(cands[1]);
        d.remove_object(objs[3]);

        let (problem, slots) = d.to_prime_ls().expect("non-empty live sets");
        assert_eq!(problem.candidates().len(), 5);
        assert_eq!(problem.objects().len(), 14);
        let influences = problem.all_influences();
        for (k, h) in slots.iter().enumerate() {
            assert_eq!(influences[k], d.influence(*h), "candidate index {k}");
        }
        // The static winner maps back to the incremental optimum, ties
        // included (index order == slot order).
        let r = problem.solve(Algorithm::PinocchioVo);
        let (bh, _, bi) = d.best().expect("live candidates");
        assert_eq!(slots[r.best_candidate], bh);
        assert_eq!(r.max_influence, bi);
        // live_candidates mirrors the same slot order and counts.
        let live = d.live_candidates();
        assert_eq!(live.len(), slots.len());
        for ((h, _, inf), slot) in live.iter().zip(&slots) {
            assert_eq!(h, slot);
            assert_eq!(*inf, d.influence(*h));
        }
    }

    #[test]
    fn to_prime_ls_rejects_empty_live_sets() {
        let mut d = fresh(0.7);
        assert!(d.to_prime_ls().is_err(), "empty state");
        d.insert_candidate(Point::ORIGIN);
        assert!(d.to_prime_ls().is_err(), "candidates but no objects");
        let o = d.insert_object(MovingObject::new(0, vec![Point::ORIGIN]));
        assert!(d.to_prime_ls().is_ok());
        assert_eq!(d.objects().count(), 1);
        d.remove_object(o);
        assert!(d.to_prime_ls().is_err(), "objects all removed again");
    }

    #[test]
    #[should_panic(expected = "stale object handle")]
    fn stale_object_handle_rejected() {
        let mut d = fresh(0.7);
        let o = d.insert_object(MovingObject::new(0, vec![Point::ORIGIN]));
        d.remove_object(o);
        d.remove_object(o);
    }

    #[test]
    #[should_panic(expected = "stale candidate handle")]
    fn stale_candidate_handle_rejected() {
        let mut d = fresh(0.7);
        let c = d.insert_candidate(Point::ORIGIN);
        d.remove_candidate(c);
        let _ = d.influence(c);
    }
}
