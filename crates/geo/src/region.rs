//! The paper's two pruning regions (§4.2).
//!
//! Given a moving object `O` with MBR `R` and its `minMaxRadius` `μ`
//! (computed in `pinocchio-prob` from `τ`, `n` and the probability
//! function), the paper defines:
//!
//! * the **influence-arcs region** (Definition 6, Lemma 2) — the set of
//!   points `c` with `maxDist(c, R) ≤ μ`, i.e. the intersection of the
//!   four discs of radius `μ` centred at the corners of `R`. Every
//!   candidate inside it is guaranteed to influence `O`;
//! * the **non-influence boundary** (Definition 7, Lemma 3) — the set of
//!   points `c` with `minDist(c, R) ≤ μ`, i.e. the Minkowski sum of `R`
//!   with a disc of radius `μ` (a rounded rectangle). Every candidate
//!   outside it is guaranteed *not* to influence `O`.
//!
//! Candidates between the two boundaries are *undecided* and must be
//! validated by evaluating the cumulative influence probability.
//!
//! [`InfluenceRegions`] packages both tests plus the closed-form /
//! numerically-integrated areas `S_N` and `S_I` used in the analytical
//! remark at the end of §4.3 to estimate the fraction of candidates that
//! survives pruning.

use crate::mbr::Mbr;
use crate::point::Point;

/// Classification of a candidate location against one moving object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionVerdict {
    /// Inside the influence-arcs region: definitely influences the object.
    Influences,
    /// Outside the non-influence boundary: definitely does not influence.
    CannotInfluence,
    /// Between the boundaries: must be validated exactly.
    Undecided,
}

/// Precomputed pruning geometry for one moving object.
///
/// Stores the object's MBR, its `minMaxRadius` `μ`, and the inflated
/// rectangle `MBR(NIB)` that Algorithm 1 keeps as a cheap first-stage
/// filter. All classification tests are O(1) and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfluenceRegions {
    mbr: Mbr,
    radius: f64,
    radius_sq: f64,
    /// Rectangular over-approximation of the non-influence boundary.
    nib_mbr: Mbr,
}

impl InfluenceRegions {
    /// Builds the regions for an object with bounding box `mbr` and
    /// `minMaxRadius` `radius` (must be non-negative and finite).
    pub fn new(mbr: Mbr, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "minMaxRadius must be finite and non-negative, got {radius}"
        );
        InfluenceRegions {
            mbr,
            radius,
            radius_sq: radius * radius,
            nib_mbr: mbr.inflate(radius),
        }
    }

    /// The object's MBR.
    #[inline]
    pub fn mbr(&self) -> Mbr {
        self.mbr
    }

    /// The `minMaxRadius` `μ` the regions were built with.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The rectangular over-approximation of the non-influence boundary
    /// (`MBR(O)` inflated by `μ` on each side).
    #[inline]
    pub fn nib_mbr(&self) -> Mbr {
        self.nib_mbr
    }

    /// Lemma 2 test: is `c` inside the closed influence-arcs region?
    ///
    /// Equivalent to `maxDist(c, MBR) ≤ μ`, i.e. `c` is within `μ` of all
    /// four corners, hence within `μ` of every position of the object.
    #[inline]
    pub fn in_influence_arcs(&self, c: &Point) -> bool {
        self.mbr.max_dist_sq(c) <= self.radius_sq
    }

    /// Lemma 3 test: is `c` inside the non-influence boundary region?
    ///
    /// Equivalent to `minDist(c, MBR) ≤ μ`. A candidate *outside* (test
    /// returns `false`) can be discarded outright.
    #[inline]
    pub fn in_non_influence_boundary(&self, c: &Point) -> bool {
        self.mbr.min_dist_sq(c) <= self.radius_sq
    }

    /// Full three-way classification of a candidate.
    #[inline]
    pub fn classify(&self, c: &Point) -> RegionVerdict {
        // Cheap rectangular reject first (the paper's MBR-of-NIB filter).
        if !self.nib_mbr.contains_point(c) || !self.in_non_influence_boundary(c) {
            RegionVerdict::CannotInfluence
        } else if self.in_influence_arcs(c) {
            RegionVerdict::Influences
        } else {
            RegionVerdict::Undecided
        }
    }

    /// Exact area `S_N` of the non-influence boundary region:
    /// `w·h + 2(w+h)·μ + π·μ²` (rounded rectangle, §4.3 Remark).
    pub fn nib_area(&self) -> f64 {
        let (w, h, mu) = (self.mbr.width(), self.mbr.height(), self.radius);
        w * h + 2.0 * (w + h) * mu + std::f64::consts::PI * mu * mu
    }

    /// Area `S_I` of the influence-arcs region (intersection of the four
    /// corner discs of radius `μ`).
    ///
    /// Empty unless `μ` is at least the half-diagonal of the MBR. The area
    /// is evaluated by numerically integrating the per-`x` admissible `y`
    /// interval over the four disc constraints (Simpson-free fine midpoint
    /// rule; the region boundary is smooth so midpoint converges at
    /// O(steps⁻²), and `steps = 4096` gives far more accuracy than the
    /// analytical remark needs).
    pub fn ia_area(&self) -> f64 {
        self.ia_area_with_steps(4096)
    }

    /// As [`InfluenceRegions::ia_area`] with a caller-chosen resolution.
    pub fn ia_area_with_steps(&self, steps: usize) -> f64 {
        assert!(steps > 0);
        let (w, h) = (self.mbr.width(), self.mbr.height());
        let half_diag_sq = (w * w + h * h) / 4.0;
        if self.radius_sq < half_diag_sq {
            return 0.0; // even the centre is farther than μ from a corner
        }
        // Work in the MBR-centred frame: corners at (±w/2, ±h/2).
        let (cx, cy) = (w / 2.0, h / 2.0);
        // x-extent of the region: constrained by the two corners on the
        // opposite side: (x ± cx)² + cy² ≤ μ² for the worse of the two.
        let x_max = (self.radius_sq - cy * cy).max(0.0).sqrt() - cx;
        if x_max <= 0.0 {
            return 0.0;
        }
        let dx = 2.0 * x_max / steps as f64;
        let mut area = 0.0;
        for i in 0..steps {
            let x = -x_max + (i as f64 + 0.5) * dx;
            // For corner (sx·cx, sy·cy) the constraint is
            // (x − sx·cx)² + (y − sy·cy)² ≤ μ².
            let mut y_lo = f64::NEG_INFINITY;
            let mut y_hi = f64::INFINITY;
            for (sx, sy) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
                let rem = self.radius_sq - (x - sx * cx) * (x - sx * cx);
                if rem < 0.0 {
                    y_lo = 0.0;
                    y_hi = 0.0;
                    break;
                }
                let half = rem.sqrt();
                y_lo = y_lo.max(sy * cy - half);
                y_hi = y_hi.min(sy * cy + half);
            }
            if y_hi > y_lo {
                area += (y_hi - y_lo) * dx;
            }
        }
        area
    }

    /// Expected fraction of uniformly-distributed candidates that survive
    /// pruning and must be validated: `(S_N − S_I) / S_C`, where `S_C` is
    /// the area of the candidate frame (§4.3 Remark, `m' = m·(S_N−S_I)/S_C`).
    ///
    /// The Remark assumes the candidate frame is much larger than both
    /// regions (`δ ≫ 1`); when the regions spill past the frame, prefer
    /// [`InfluenceRegions::expected_survivor_fraction_in_frame`], which
    /// clips both areas to the frame.
    pub fn expected_survivor_fraction(&self, candidate_frame_area: f64) -> f64 {
        assert!(candidate_frame_area > 0.0);
        ((self.nib_area() - self.ia_area()) / candidate_frame_area).clamp(0.0, 1.0)
    }

    /// Area of `{c ∈ frame : minDist(c, MBR) ≤ μ}` — the non-influence
    /// boundary region clipped to a candidate frame (midpoint
    /// quadrature over the frame's x-extent).
    pub fn nib_area_in_frame(&self, frame: &Mbr, steps: usize) -> f64 {
        assert!(steps > 0);
        let dx = frame.width() / steps as f64;
        if dx <= 0.0 {
            return 0.0;
        }
        let mut area = 0.0;
        for i in 0..steps {
            let x = frame.lo().x + (i as f64 + 0.5) * dx;
            // For this x, the NIB constraint minDist ≤ μ defines a y
            // interval: |y − clamp_y| bounded via the residual radius.
            let dxr = (self.mbr.lo().x - x).max(0.0).max(x - self.mbr.hi().x);
            let rem = self.radius_sq - dxr * dxr;
            if rem < 0.0 {
                continue;
            }
            let half = rem.sqrt();
            let y_lo = (self.mbr.lo().y - half).max(frame.lo().y);
            let y_hi = (self.mbr.hi().y + half).min(frame.hi().y);
            if y_hi > y_lo {
                area += (y_hi - y_lo) * dx;
            }
        }
        area
    }

    /// Area of the influence-arcs region clipped to a candidate frame.
    pub fn ia_area_in_frame(&self, frame: &Mbr, steps: usize) -> f64 {
        assert!(steps > 0);
        let (w, h) = (self.mbr.width(), self.mbr.height());
        let half_diag_sq = (w * w + h * h) / 4.0;
        if self.radius_sq < half_diag_sq {
            return 0.0;
        }
        let center = self.mbr.center();
        let (cx, cy) = (w / 2.0, h / 2.0);
        let dx = frame.width() / steps as f64;
        if dx <= 0.0 {
            return 0.0;
        }
        let mut area = 0.0;
        for i in 0..steps {
            // x in the MBR-centred frame.
            let x = frame.lo().x + (i as f64 + 0.5) * dx - center.x;
            let mut y_lo = f64::NEG_INFINITY;
            let mut y_hi = f64::INFINITY;
            for (sx, sy) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
                let rem = self.radius_sq - (x - sx * cx) * (x - sx * cx);
                if rem < 0.0 {
                    y_lo = 0.0;
                    y_hi = 0.0;
                    break;
                }
                let half = rem.sqrt();
                y_lo = y_lo.max(sy * cy - half);
                y_hi = y_hi.min(sy * cy + half);
            }
            let y_lo = (y_lo + center.y).max(frame.lo().y);
            let y_hi = (y_hi + center.y).min(frame.hi().y);
            if y_hi > y_lo {
                area += (y_hi - y_lo) * dx;
            }
        }
        area
    }

    /// The §4.3 Remark estimate with both regions clipped to the
    /// candidate frame: expected fraction of uniformly-distributed
    /// candidates *inside the frame* that survive pruning.
    pub fn expected_survivor_fraction_in_frame(&self, frame: &Mbr, steps: usize) -> f64 {
        let frame_area = frame.area();
        assert!(frame_area > 0.0, "frame must have positive area");
        ((self.nib_area_in_frame(frame, steps) - self.ia_area_in_frame(frame, steps)) / frame_area)
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn regions(w: f64, h: f64, mu: f64) -> InfluenceRegions {
        InfluenceRegions::new(Mbr::new(Point::new(0.0, 0.0), Point::new(w, h)), mu)
    }

    #[test]
    fn classify_three_zones() {
        // 2×2 box, μ = 3: centre is within 3 of all corners (half-diag ≈ 1.41).
        let r = regions(2.0, 2.0, 3.0);
        assert_eq!(r.classify(&Point::new(1.0, 1.0)), RegionVerdict::Influences);
        // Far away: minDist > 3.
        assert_eq!(
            r.classify(&Point::new(10.0, 1.0)),
            RegionVerdict::CannotInfluence
        );
        // Just outside the box: minDist small but maxDist > 3.
        assert_eq!(r.classify(&Point::new(4.5, 1.0)), RegionVerdict::Undecided);
    }

    #[test]
    fn ia_empty_when_radius_below_half_diagonal() {
        let r = regions(6.0, 8.0, 4.9); // half-diag = 5
        assert!(!r.in_influence_arcs(&r.mbr().center()));
        assert_eq!(r.ia_area(), 0.0);
    }

    #[test]
    fn ia_membership_matches_corner_distance_definition() {
        let r = regions(3.0, 1.0, 2.5);
        let corners = r.mbr().corners();
        for (px, py) in [(1.5, 0.5), (0.2, 0.9), (2.9, 0.1), (1.5, -0.6), (4.0, 0.5)] {
            let p = Point::new(px, py);
            let by_corners = corners.iter().all(|c| c.euclidean(&p) <= 2.5);
            assert_eq!(r.in_influence_arcs(&p), by_corners, "at {p}");
        }
    }

    #[test]
    fn nib_area_closed_form() {
        let r = regions(4.0, 2.0, 1.0);
        let want = 4.0 * 2.0 + 2.0 * 6.0 * 1.0 + PI;
        assert!((r.nib_area() - want).abs() < 1e-12);
    }

    #[test]
    fn ia_area_degenerate_mbr_is_disc() {
        // A point object: intersection of four coincident discs = one disc.
        let r = regions(0.0, 0.0, 2.0);
        let want = PI * 4.0;
        assert!(
            (r.ia_area() - want).abs() / want < 1e-4,
            "got {} want {}",
            r.ia_area(),
            want
        );
    }

    #[test]
    fn ia_area_monte_carlo_agreement() {
        // Deterministic lattice "Monte Carlo" against the integrator.
        let r = regions(2.0, 1.0, 3.0);
        let frame = r.mbr().inflate(3.0);
        let (n, mut hit) = (600, 0u64);
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    frame.lo().x + frame.width() * (i as f64 + 0.5) / n as f64,
                    frame.lo().y + frame.height() * (j as f64 + 0.5) / n as f64,
                );
                if r.in_influence_arcs(&p) {
                    hit += 1;
                }
            }
        }
        let mc = hit as f64 / (n * n) as f64 * frame.area();
        let ia = r.ia_area();
        assert!((mc - ia).abs() / ia < 0.01, "mc {mc} vs integral {ia}");
    }

    #[test]
    fn nib_area_exceeds_ia_area() {
        for mu in [1.5, 2.0, 5.0, 10.0] {
            let r = regions(2.0, 2.0, mu);
            assert!(r.nib_area() > r.ia_area(), "μ = {mu}");
        }
    }

    #[test]
    fn survivor_fraction_clamped_and_sane() {
        let r = regions(2.0, 2.0, 2.0);
        let f = r.expected_survivor_fraction(1000.0);
        assert!(f > 0.0 && f < 1.0);
        // Tiny frame: clamps to 1.
        assert_eq!(r.expected_survivor_fraction(1e-9), 1.0);
    }

    #[test]
    fn clipped_areas_match_unclipped_when_frame_is_large() {
        let r = regions(2.0, 1.0, 3.0);
        let huge = Mbr::new(Point::new(-50.0, -50.0), Point::new(52.0, 51.0));
        let nib = r.nib_area_in_frame(&huge, 8192);
        assert!((nib - r.nib_area()).abs() / r.nib_area() < 1e-3, "{nib}");
        let ia = r.ia_area_in_frame(&huge, 8192);
        assert!((ia - r.ia_area()).abs() / r.ia_area() < 1e-2, "{ia}");
    }

    #[test]
    fn clipped_areas_respect_the_frame() {
        // Regions far larger than the frame: clipped NIB covers the whole
        // frame, and the survivor fraction reflects frame-local geometry.
        let r = regions(2.0, 2.0, 100.0);
        let frame = Mbr::new(Point::new(-5.0, -5.0), Point::new(7.0, 7.0));
        let nib = r.nib_area_in_frame(&frame, 2048);
        assert!((nib - frame.area()).abs() / frame.area() < 1e-6);
        // IA (all four corners within 100) also covers the frame.
        let ia = r.ia_area_in_frame(&frame, 2048);
        assert!((ia - frame.area()).abs() / frame.area() < 1e-6);
        assert_eq!(r.expected_survivor_fraction_in_frame(&frame, 2048), 0.0);
    }

    #[test]
    fn clipped_fraction_matches_lattice_classification() {
        let r = regions(3.0, 2.0, 4.0);
        let frame = Mbr::new(Point::new(-4.0, -4.0), Point::new(8.0, 7.0));
        let predicted = r.expected_survivor_fraction_in_frame(&frame, 4096);
        // Lattice measurement of the undecided fraction.
        let n = 500;
        let mut undecided = 0u64;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    frame.lo().x + frame.width() * (i as f64 + 0.5) / n as f64,
                    frame.lo().y + frame.height() * (j as f64 + 0.5) / n as f64,
                );
                if r.classify(&p) == RegionVerdict::Undecided {
                    undecided += 1;
                }
            }
        }
        let measured = undecided as f64 / (n * n) as f64;
        assert!(
            (predicted - measured).abs() < 0.01,
            "predicted {predicted} vs lattice {measured}"
        );
    }

    #[test]
    fn zero_radius_regions() {
        let r = regions(2.0, 2.0, 0.0);
        // IA empty (except for degenerate MBRs), NIB = the MBR itself.
        assert!(!r.in_influence_arcs(&Point::new(1.0, 1.0)));
        assert!(r.in_non_influence_boundary(&Point::new(1.0, 1.0)));
        assert!(!r.in_non_influence_boundary(&Point::new(2.1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "minMaxRadius")]
    fn negative_radius_rejected() {
        let _ = regions(1.0, 1.0, -0.5);
    }
}
