//! The PRIME-LS problem instance and its builder.

use crate::eval::{EvalKernel, PairEval};
use crate::result::{Algorithm, SolveResult};
use crate::state::A2d;
use pinocchio_data::{MovingObject, PositionArena};
use pinocchio_geo::Point;
use pinocchio_index::{MbrTree, RTree};
use pinocchio_prob::{CumulativeProbability, LogPfTable, ProbabilityFunction};
use std::fmt;
use std::sync::OnceLock;

/// Errors detected when assembling a [`PrimeLs`] instance.
///
/// `#[non_exhaustive]` for the same stability contract as
/// [`SolveError`](crate::SolveError): downstream protocol layers match
/// with a wildcard arm and render through [`fmt::Display`], never
/// `Debug`, so new validation rules are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// No moving objects were supplied.
    NoObjects,
    /// No candidate locations were supplied.
    NoCandidates,
    /// `τ` outside the open interval `(0, 1)`.
    InvalidTau(f64),
    /// `τ` was never set.
    MissingTau,
    /// A candidate has a non-finite coordinate (index given).
    NonFiniteCandidate(usize),
    /// The probability function was never set.
    MissingProbabilityFunction,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoObjects => write!(f, "PRIME-LS needs at least one moving object"),
            BuildError::NoCandidates => write!(f, "PRIME-LS needs at least one candidate"),
            BuildError::InvalidTau(t) => write!(f, "tau must be in (0, 1), got {t}"),
            BuildError::MissingTau => write!(f, "tau must be set (it has no default)"),
            BuildError::NonFiniteCandidate(i) => {
                write!(f, "candidate {i} has a non-finite coordinate")
            }
            BuildError::MissingProbabilityFunction => {
                write!(f, "a probability function must be set (it has no default)")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A fully specified PRIME-LS problem instance (Definition 3).
///
/// Holds the moving objects `Ω`, candidate locations `C`, probability
/// function `PF` and threshold `τ`, and dispatches to the solvers.
/// Coordinates are planar kilometres (see the crate docs).
#[derive(Debug, Clone)]
pub struct PrimeLs<P> {
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    pf: P,
    tau: f64,
    /// Flat structure-of-arrays mirror of `objects`, built once at
    /// construction and shared read-only by every solver.
    arena: PositionArena,
    /// Candidate R-tree, built lazily on first use and then reused by
    /// every solve on this instance (vo / parallel / topk / weighted all
    /// query the same tree; rebuilding it per solve was pure waste).
    candidate_tree: OnceLock<RTree<usize>>,
    /// `A_2D` (Algorithm 1 output), built lazily on first use and shared
    /// by every solve — previously each solver call rebuilt it from
    /// scratch, double-counting the radius/region work in multi-solver
    /// benches. Objects, `PF` and `τ` are immutable on `PrimeLs`, so the
    /// cached state can never go stale.
    a2d: OnceLock<A2d>,
    /// μ-aggregate tree over the influenceable objects' MBRs, built
    /// lazily for the join solver (and cached for the same reason).
    object_tree: OnceLock<MbrTree<usize>>,
    /// Precomputed `ln(1 − PF(√s))` coefficient table for the
    /// log-domain kernel, built lazily on first use (only the
    /// LogBlocked kernel asks for it). Inner `None` records that the
    /// PF defeats table construction, so the kernel downgrade is also
    /// computed exactly once.
    log_table: OnceLock<Option<LogPfTable>>,
    /// Which evaluation path [`PairEval`] dispatches to.
    kernel: EvalKernel,
}

impl<P: ProbabilityFunction + Clone> PrimeLs<P> {
    /// Starts building a problem instance.
    pub fn builder() -> PrimeLsBuilder<P> {
        PrimeLsBuilder::new()
    }

    /// The moving objects `Ω`.
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// The candidate locations `C`.
    pub fn candidates(&self) -> &[Point] {
        &self.candidates
    }

    /// The probability function `PF`.
    pub fn pf(&self) -> &P {
        &self.pf
    }

    /// The influence threshold `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The cumulative-probability evaluator used by all solvers
    /// (Euclidean metric over the planar kilometre frame).
    pub fn evaluator(&self) -> CumulativeProbability<P, pinocchio_geo::Euclidean> {
        CumulativeProbability::new(self.pf.clone(), pinocchio_geo::Euclidean)
    }

    /// The flat structure-of-arrays position store (same objects, same
    /// order as [`Self::objects`]).
    pub fn arena(&self) -> &PositionArena {
        &self.arena
    }

    /// The candidate R-tree (payload: dense candidate index), built on
    /// first call and cached for the lifetime of the instance. Objects
    /// and candidates are immutable on `PrimeLs`, so the cached tree can
    /// never go stale.
    pub fn candidate_tree(&self) -> &RTree<usize> {
        self.candidate_tree.get_or_init(|| {
            self.candidates
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, j))
                .collect()
        })
    }

    /// `A_2D` — per-object `minMaxRadius` and pruning-region geometry
    /// (Algorithm 1), built on first call and cached for the lifetime of
    /// the instance.
    pub fn a2d(&self) -> &A2d {
        self.a2d
            .get_or_init(|| A2d::build(&self.objects, &self.pf, self.tau))
    }

    /// The μ-aggregate object tree the join solver traverses (payload:
    /// dense object index), over exactly the influenceable entries of
    /// [`Self::a2d`]; built on first call and cached.
    pub fn object_tree(&self) -> &MbrTree<usize> {
        self.object_tree.get_or_init(|| {
            MbrTree::bulk_load(
                self.a2d()
                    .entries()
                    .iter()
                    .filter_map(|e| e.regions.map(|r| (r.mbr(), r.radius(), e.index)))
                    .collect(),
            )
        })
    }

    /// The active evaluation kernel.
    pub fn evaluation_kernel(&self) -> EvalKernel {
        self.kernel
    }

    /// The log-PF coefficient table the LogBlocked kernel evaluates
    /// through, built on first call and cached; `None` when the PF
    /// defeats table construction (e.g. `PF(0) = 1` makes
    /// `ln(1 − PF)` diverge), in which case [`Self::pair_eval`]
    /// transparently downgrades LogBlocked to the blocked kernel.
    pub fn log_pf_table(&self) -> Option<&LogPfTable> {
        self.log_table
            .get_or_init(|| LogPfTable::try_new(&self.pf))
            .as_ref()
    }

    /// Returns the instance with a different evaluation kernel — the
    /// post-build counterpart of
    /// [`PrimeLsBuilder::evaluation_kernel`]. Verdicts (and therefore
    /// winners) are kernel-independent; only the cost profile changes.
    pub fn with_evaluation_kernel(mut self, kernel: EvalKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The per-pair evaluation context used by all solvers: evaluator +
    /// both position layouts + `τ` + the kernel selection.
    pub fn pair_eval(&self) -> PairEval<'_, P> {
        let table = match self.kernel {
            EvalKernel::LogBlocked => self.log_pf_table(),
            _ => None,
        };
        PairEval::new(
            self.evaluator(),
            &self.objects,
            &self.arena,
            self.kernel,
            self.tau,
            table,
        )
    }

    /// Solves the instance with the chosen algorithm.
    pub fn solve(&self, algorithm: Algorithm) -> SolveResult {
        match algorithm {
            Algorithm::Naive => crate::naive::solve(self),
            Algorithm::Pinocchio => crate::pinocchio::solve(self),
            Algorithm::PinocchioVo => crate::vo::solve(self, true),
            Algorithm::PinocchioVoStar => crate::vo::solve(self, false),
            Algorithm::PinocchioJoin => crate::join::solve(self),
        }
    }

    /// Exact per-candidate influence vector, computed with the pruned
    /// PINOCCHIO algorithm. This is what the effectiveness experiments
    /// (Tables 3–4) use to rank the top-K candidates.
    pub fn all_influences(&self) -> Vec<u32> {
        crate::pinocchio::solve(self)
            .influences
            // pinocchio-lint: allow(panic-path) -- pinocchio::solve always populates `influences` (it validates every undecided pair); a None here is a solver bug, not an input condition
            .expect("PINOCCHIO reports exact influences for all candidates")
    }
}

/// Builder for [`PrimeLs`]. All four components are mandatory.
#[derive(Debug, Clone)]
pub struct PrimeLsBuilder<P> {
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    pf: Option<P>,
    tau: Option<f64>,
    kernel: EvalKernel,
}

impl<P: ProbabilityFunction + Clone> PrimeLsBuilder<P> {
    fn new() -> Self {
        PrimeLsBuilder {
            objects: Vec::new(),
            candidates: Vec::new(),
            pf: None,
            tau: None,
            kernel: EvalKernel::default(),
        }
    }

    /// Sets the moving objects.
    pub fn objects(mut self, objects: Vec<MovingObject>) -> Self {
        self.objects = objects;
        self
    }

    /// Sets the candidate locations.
    pub fn candidates(mut self, candidates: Vec<Point>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets the probability function.
    pub fn probability_function(mut self, pf: P) -> Self {
        self.pf = Some(pf);
        self
    }

    /// Sets the influence threshold `τ ∈ (0, 1)`.
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = Some(tau);
        self
    }

    /// Selects the evaluation kernel (optional; defaults to
    /// [`EvalKernel::Scalar`], the historical behaviour).
    pub fn evaluation_kernel(mut self, kernel: EvalKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validates and assembles the problem instance.
    pub fn build(self) -> Result<PrimeLs<P>, BuildError> {
        if self.objects.is_empty() {
            return Err(BuildError::NoObjects);
        }
        if self.candidates.is_empty() {
            return Err(BuildError::NoCandidates);
        }
        let Some(tau) = self.tau else {
            return Err(BuildError::MissingTau);
        };
        if !(tau > 0.0 && tau < 1.0) {
            return Err(BuildError::InvalidTau(tau));
        }
        if let Some(i) = self.candidates.iter().position(|c| !c.is_finite()) {
            return Err(BuildError::NonFiniteCandidate(i));
        }
        let Some(pf) = self.pf else {
            return Err(BuildError::MissingProbabilityFunction);
        };
        let arena = PositionArena::from_objects(&self.objects);
        Ok(PrimeLs {
            objects: self.objects,
            candidates: self.candidates,
            pf,
            tau,
            arena,
            candidate_tree: OnceLock::new(),
            a2d: OnceLock::new(),
            object_tree: OnceLock::new(),
            log_table: OnceLock::new(),
            kernel: self.kernel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_prob::PowerLawPf;

    fn one_object() -> Vec<MovingObject> {
        vec![MovingObject::new(0, vec![Point::new(0.0, 0.0)])]
    }

    #[test]
    fn builder_round_trip() {
        let p = PrimeLs::builder()
            .objects(one_object())
            .candidates(vec![Point::new(1.0, 1.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        assert_eq!(p.objects().len(), 1);
        assert_eq!(p.candidates().len(), 1);
        assert_eq!(p.tau(), 0.7);
    }

    #[test]
    fn builder_rejects_missing_pieces() {
        let err = PrimeLs::<PowerLawPf>::builder()
            .candidates(vec![Point::new(1.0, 1.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NoObjects);

        let err = PrimeLs::builder()
            .objects(one_object())
            .probability_function(PowerLawPf::paper_default())
            .tau(0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NoCandidates);
    }

    #[test]
    fn builder_rejects_bad_tau() {
        for tau in [0.0, 1.0, -0.3, 1.7] {
            let err = PrimeLs::builder()
                .objects(one_object())
                .candidates(vec![Point::new(1.0, 1.0)])
                .probability_function(PowerLawPf::paper_default())
                .tau(tau)
                .build()
                .unwrap_err();
            assert_eq!(err, BuildError::InvalidTau(tau));
        }
    }

    #[test]
    fn builder_rejects_missing_probability_function() {
        let err = PrimeLs::<PowerLawPf>::builder()
            .objects(one_object())
            .candidates(vec![Point::new(1.0, 1.0)])
            .tau(0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::MissingProbabilityFunction);
    }

    #[test]
    fn builder_rejects_unset_tau() {
        let err = PrimeLs::builder()
            .objects(one_object())
            .candidates(vec![Point::new(1.0, 1.0)])
            .probability_function(PowerLawPf::paper_default())
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::MissingTau);
    }

    #[test]
    fn builder_rejects_non_finite_candidate() {
        let err = PrimeLs::builder()
            .objects(one_object())
            .candidates(vec![Point::new(1.0, 1.0), Point::new(f64::NAN, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NonFiniteCandidate(1));
    }
}
