//! Dynamic PRIME-LS: maintain the optimal location while the world
//! changes — the paper's future-work scenario, implemented in
//! `pinocchio::core::dynamic`.
//!
//! A coffee chain tracks the best spot for its next store while new
//! check-ins stream in, new users appear, and candidate sites open up
//! or get withdrawn. The incremental structure keeps exact influence
//! counts throughout; the example cross-checks the final state against a
//! from-scratch solve.
//!
//! Run with `cargo run --release --example dynamic_updates`.

use pinocchio::core::DynamicPrimeLs;
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(300, 99)).generate();
    let (_, candidates) = sample_candidate_group(&dataset, 80, 4);
    let mut rng = StdRng::seed_from_u64(123);

    // Bootstrap the incremental state from the initial world.
    let start = Instant::now();
    let (mut dynamic, object_handles, candidate_handles) = DynamicPrimeLs::from_parts(
        PowerLawPf::paper_default(),
        0.7,
        dataset.objects().to_vec(),
        candidates.clone(),
    );
    println!(
        "bootstrapped {} objects x {} candidates in {:.2?}",
        dynamic.object_count(),
        dynamic.candidate_count(),
        start.elapsed()
    );
    let (_, loc, inf) = dynamic.best().expect("non-empty");
    println!("initial best: {loc} influencing {inf} users\n");

    // Stream updates: 200 new check-ins, 20 new users, candidate churn.
    let frame = dataset.frame();
    let rand_point = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(frame.lo().x..frame.hi().x),
            rng.gen_range(frame.lo().y..frame.hi().y),
        )
    };

    let t = Instant::now();
    for i in 0..200 {
        let h = object_handles[i % object_handles.len()];
        let p = rand_point(&mut rng);
        dynamic.append_position(h, p);
    }
    println!("appended 200 check-ins in {:.2?}", t.elapsed());

    let t = Instant::now();
    for i in 0..20u64 {
        let positions: Vec<Point> = (0..rng.gen_range(3..30))
            .map(|_| rand_point(&mut rng))
            .collect();
        dynamic.insert_object(MovingObject::new(100_000 + i, positions));
    }
    println!("inserted 20 new users in {:.2?}", t.elapsed());

    let t = Instant::now();
    let new_site = dynamic.insert_candidate(rand_point(&mut rng));
    dynamic.remove_candidate(candidate_handles[7]);
    println!(
        "candidate churn (one in, one out) in {:.2?}; new site influence = {}",
        t.elapsed(),
        dynamic.influence(new_site)
    );

    let (_, loc, inf) = dynamic.best().expect("non-empty");
    println!("\nbest after updates: {loc} influencing {inf} users");

    // Cross-check against a full static re-solve.
    let t = Instant::now();
    dynamic.verify_against_static();
    println!(
        "verified against a from-scratch PINOCCHIO solve in {:.2?} — exact match ✓",
        t.elapsed()
    );
}
