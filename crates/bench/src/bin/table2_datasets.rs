//! Table 2 — "Description of Real-World Datasets".
//!
//! Prints the statistics of the two synthetic datasets in the paper's
//! Table 2 layout, plus the §4.3 coverage figures the pruning analysis
//! relies on. Compare against the paper's reported values:
//!
//! |                | Foursquare (F) | Gowalla (G) |
//! |----------------|----------------|-------------|
//! | user count     | 2,321          | 10,162      |
//! | venue count    | 5,594          | 24,081      |
//! | check-ins      | 167,231        | 381,165     |
//! | avg. check-ins | 72             | 37          |
//! | min check-ins  | 3              | 2           |
//! | max check-ins  | 661            | 780         |

use pinocchio_bench::{dataset, write_record, DatasetKind};
use pinocchio_data::DatasetStats;
use pinocchio_eval::Table;

fn main() {
    let f = DatasetStats::of(&dataset(DatasetKind::Foursquare));
    let g = DatasetStats::of(&dataset(DatasetKind::Gowalla));

    let mut table = Table::new(
        "Table 2: dataset description (synthetic, paper-calibrated)",
        &["", "Foursquare(F)", "Gowalla(G)"],
    );
    let row = |label: &str, a: String, b: String| vec![label.to_string(), a, b];
    table.push_row(row("user count", f.users.to_string(), g.users.to_string()));
    table.push_row(row(
        "venue count",
        f.venues.to_string(),
        g.venues.to_string(),
    ));
    table.push_row(row(
        "check-ins",
        f.checkins.to_string(),
        g.checkins.to_string(),
    ));
    table.push_row(row(
        "avg. check-ins",
        format!("{:.0}", f.avg_checkins),
        format!("{:.0}", g.avg_checkins),
    ));
    table.push_row(row(
        "min check-ins",
        f.min_checkins.to_string(),
        g.min_checkins.to_string(),
    ));
    table.push_row(row(
        "max check-ins",
        f.max_checkins.to_string(),
        g.max_checkins.to_string(),
    ));
    table.push_row(row(
        "frame (km)",
        format!("{:.2} x {:.2}", f.frame_width_km, f.frame_height_km),
        format!("{:.2} x {:.2}", g.frame_width_km, g.frame_height_km),
    ));
    table.push_row(row(
        "avg object MBR (km)",
        format!(
            "{:.2} x {:.2}",
            f.avg_object_width_km, f.avg_object_height_km
        ),
        format!(
            "{:.2} x {:.2}",
            g.avg_object_width_km, g.avg_object_height_km
        ),
    ));
    println!("{table}");

    let json = |s: &DatasetStats| {
        serde_json::json!({
            "name": s.name,
            "users": s.users,
            "venues": s.venues,
            "checkins": s.checkins,
            "avg_checkins": s.avg_checkins,
            "min_checkins": s.min_checkins,
            "max_checkins": s.max_checkins,
            "frame_km": [s.frame_width_km, s.frame_height_km],
            "avg_object_mbr_km": [s.avg_object_width_km, s.avg_object_height_km],
            "avg_coverage": s.avg_coverage(),
        })
    };
    write_record(
        "table2_datasets",
        &serde_json::json!({ "foursquare": json(&f), "gowalla": json(&g) }),
    );
}
