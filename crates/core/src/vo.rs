//! PINOCCHIO-VO — Algorithm 3 (pruning + optimized validation) and the
//! PIN-VO* ablation (optimized validation without pruning).
//!
//! The validation phase keeps, per candidate `c`:
//!
//! * `minInf(c)` — influence certified so far (IA hits + validated
//!   influenced objects),
//! * `maxInf(c)` — influence still possible (total influenceable objects
//!   − NIB exclusions − validated non-influenced objects),
//!
//! and a global `maxminInf = max_c minInf(c)` over fully validated
//! candidates.
//!
//! **Strategy 1** organises candidates in a max-heap ordered by
//! `(maxInf, minInf)`; once the top's `maxInf` falls below `maxminInf`,
//! no remaining candidate can win and validation stops. The same bound
//! kills a candidate mid-validation as soon as enough objects fail.
//!
//! **Strategy 2** evaluates each object's positions incrementally and
//! stops as soon as the partial non-influence probability certifies
//! influence (Lemma 4) — implemented in
//! `pinocchio_prob::CumulativeProbability::influences_early_stop`.
//!
//! Both strategies are *cost* optimizations only: the returned optimum
//! (smallest index among maxima) is always identical to NA's.

use crate::eval::{PairEval, LOG_TILE_WIDTH};
use crate::problem::PrimeLs;
use crate::result::{Algorithm, SolveError, SolveResult, SolveStats};
use pinocchio_geo::Point;
use pinocchio_prob::ProbabilityFunction;
use std::cell::Cell;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Output of the shared pruning phase: per-candidate influence bounds
/// and verification sets, plus the counters accumulated so far.
pub(crate) struct Prepared {
    /// Certified influence (IA hits so far).
    pub min_inf: Vec<u32>,
    /// Still-possible influence (influenceable objects − NIB exclusions).
    pub max_inf: Vec<u32>,
    /// Per-candidate verification sets (pruning mode).
    pub(crate) vs_store: Vec<Vec<u32>>,
    /// Shared verification set of all influenceable objects (no-pruning
    /// mode).
    pub(crate) vs_all: Vec<u32>,
    /// Pruning-phase counters (extended during validation).
    pub stats: SolveStats,
}

/// Runs Algorithm 3's pruning phase (lines 1–12): builds `A_2D`, plays
/// the IA/NIB rules per object against the candidate R-tree, and fills
/// the per-candidate verification sets. With `with_pruning = false`
/// (PIN-VO*), bounds stay trivial and every influenceable object lands
/// in every verification set.
pub(crate) fn prepare<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    with_pruning: bool,
) -> Prepared {
    let m = problem.candidates().len();
    let mut stats = SolveStats::default();

    let a2d = problem.a2d();
    let r_influenceable = u32::try_from(a2d.influenceable()).unwrap_or(u32::MAX);
    stats.uninfluenceable_objects = (a2d.entries().len() - a2d.influenceable()) as u64;

    let mut min_inf = vec![0u32; m];
    let mut max_inf = vec![r_influenceable; m];

    let mut vs_store: Vec<Vec<u32>> = Vec::new();
    let mut vs_all: Vec<u32> = Vec::new();

    if with_pruning {
        vs_store = vec![Vec::new(); m];
        let tree = problem.candidate_tree();
        let mut in_nib = vec![false; m];
        for entry in a2d.entries() {
            let Some(regions) = entry.regions else {
                continue;
            };
            tree.query_region(
                |node| node.intersects(&regions.nib_mbr()),
                |p| regions.in_non_influence_boundary(p),
                &mut |p, &j| {
                    in_nib[j] = true;
                    if regions.in_influence_arcs(p) {
                        stats.decided_by_ia += 1;
                        min_inf[j] += 1;
                    } else {
                        vs_store[j].push(u32::try_from(entry.index).unwrap_or(u32::MAX));
                    }
                },
            );
            for (j, flag) in in_nib.iter_mut().enumerate() {
                if *flag {
                    *flag = false; // reset for the next object
                } else {
                    stats.decided_by_nib += 1;
                    max_inf[j] -= 1; // Lemma 3: cannot influence
                }
            }
        }
    } else {
        vs_all = a2d
            .entries()
            .iter()
            .filter(|e| e.regions.is_some())
            .map(|e| u32::try_from(e.index).unwrap_or(u32::MAX))
            .collect();
    }
    Prepared {
        min_inf,
        max_inf,
        vs_store,
        vs_all,
        stats,
    }
}

/// Validates one candidate against its verification set, maintaining its
/// `(minInf, maxInf)` bounds and applying the Strategy 1 mid-validation
/// kill against the *current* `maxminInf`, re-read through
/// `current_bound` before every verdict that shrinks `maxInf`.
///
/// This is the per-candidate core shared by the sequential driver
/// ([`solve_with_options`]) and the work-stealing parallel driver
/// (`parallel::solve_vo`): sequentially `current_bound` reads a local
/// variable (which cannot change mid-candidate), in parallel it reads
/// the shared atomic bound so a candidate dies as soon as *any* worker
/// raises `maxminInf` past its remaining potential.
///
/// Returns `Some(exact_influence)` when validation ran to completion,
/// `None` when the candidate was killed. All validation counters —
/// including the pairs never evaluated because of a kill — are
/// accumulated into `stats`, keeping the pair accounting complete.
#[allow(clippy::too_many_arguments)] // one call site per driver; bundling would just rename the list
pub(crate) fn validate_candidate<P: ProbabilityFunction + Clone>(
    pair: &mut PairEval<'_, P>,
    candidate: &Point,
    vs: &[u32],
    bounds: (u32, u32),
    early_stop: bool,
    current_bound: impl FnMut() -> u32,
    stats: &mut SolveStats,
) -> Option<u32> {
    let mut result = None;
    let tile = [TileCandidate {
        index: 0,
        candidate: *candidate,
        vs,
        bounds,
    }];
    validate_tile(
        pair,
        &tile,
        early_stop,
        current_bound,
        |_, exact| result = Some(exact),
        stats,
    );
    result
}

/// One slot of a candidate tile handed to [`validate_tile`].
pub(crate) struct TileCandidate<'v> {
    /// Caller-meaningful identity, echoed to `publish` on completion.
    pub index: usize,
    /// The candidate's location.
    pub candidate: Point,
    /// Its verification set (dense object indices).
    pub vs: &'v [u32],
    /// Its insertion-time `(minInf, maxInf)` bounds.
    pub bounds: (u32, u32),
}

/// Per-slot cursor of [`validate_tile`].
#[derive(Clone, Copy, Default)]
struct TileSlot {
    pos: usize,
    min_inf: u32,
    max_inf: u32,
    alive: bool,
}

/// Validates up to [`LOG_TILE_WIDTH`] candidates together, interleaving
/// their verification sets **object-major**: at every step the live slot
/// pointing at the smallest pending object index advances, so slots that
/// share objects (ascending verification sets overlap heavily) evaluate
/// them back-to-back while the object's arena blocks are cache-resident
/// — the locality the log-blocked kernel's tile width exists for.
///
/// Per slot, the evaluation sequence, the Strategy 1 mid-validation kill
/// (`maxInf < current_bound()`, re-read before every shrink) and the
/// accounting are exactly [`validate_candidate`]'s; a 1-slot tile is
/// bit-identical to the historical per-candidate loop, stats included.
/// Completed slots call `publish(index, exact)` immediately, so a bound
/// raised by one slot can kill the tile's remaining slots.
// pinocchio-hot: the tiled validation loop every VO/join driver runs under the log kernel
pub(crate) fn validate_tile<P: ProbabilityFunction + Clone>(
    pair: &mut PairEval<'_, P>,
    tile: &[TileCandidate<'_>],
    early_stop: bool,
    mut current_bound: impl FnMut() -> u32,
    mut publish: impl FnMut(usize, u32),
    stats: &mut SolveStats,
) {
    assert!(
        tile.len() <= LOG_TILE_WIDTH,
        "tile wider than LOG_TILE_WIDTH"
    );
    let mut slots = [TileSlot::default(); LOG_TILE_WIDTH];
    let mut live = 0usize;
    for (s, tc) in tile.iter().enumerate() {
        slots[s] = TileSlot {
            pos: 0,
            min_inf: tc.bounds.0,
            max_inf: tc.bounds.1,
            alive: true,
        };
        if tc.vs.is_empty() {
            // Nothing to verify: complete immediately (in tile order,
            // matching the untiled drivers' per-candidate order).
            slots[s].alive = false;
            stats.candidates_fully_validated += 1;
            debug_assert_eq!(tc.bounds.0, tc.bounds.1, "bounds must meet");
            publish(tc.index, tc.bounds.0);
        } else {
            live += 1;
        }
    }
    while live > 0 {
        // The smallest pending object index across live slots.
        let mut next = u32::MAX;
        for (s, tc) in tile.iter().enumerate() {
            if slots[s].alive {
                next = next.min(tc.vs[slots[s].pos]);
            }
        }
        for (s, tc) in tile.iter().enumerate() {
            let slot = &mut slots[s];
            if !slot.alive || tc.vs[slot.pos] != next {
                continue;
            }
            if pair.influences(&tc.candidate, next as usize, early_stop, stats) {
                slot.min_inf += 1;
            } else {
                slot.max_inf -= 1;
                if slot.max_inf < current_bound() {
                    // Strategy 1, mid-validation variant: the rest of
                    // this slot's verification set is skipped.
                    stats.pairs_skipped_by_bounds += (tc.vs.len() - slot.pos - 1) as u64;
                    slot.alive = false;
                    live -= 1;
                    continue;
                }
            }
            slot.pos += 1;
            if slot.pos == tc.vs.len() {
                slot.alive = false;
                live -= 1;
                stats.candidates_fully_validated += 1;
                debug_assert_eq!(
                    slot.min_inf, slot.max_inf,
                    "bounds must meet after full validation"
                );
                publish(tc.index, slot.min_inf);
            }
        }
    }
}

/// Runs PINOCCHIO-VO (`with_pruning = true`, Algorithm 3) or PIN-VO*
/// (`with_pruning = false`).
pub fn solve<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    with_pruning: bool,
) -> SolveResult {
    solve_with_options(problem, with_pruning, true)
}

/// As [`solve`] with Strategy 2 individually controllable — the
/// `ablation_strategies` benchmark uses this to separate the
/// contributions of the bounds heap (Strategy 1) and per-object early
/// stopping (Strategy 2). With `early_stop = false`, validation
/// evaluates every position of every verified object, exactly like
/// Algorithm 2's plain validation, while Strategy 1 still drives
/// candidate ordering and cut-offs.
pub fn solve_with_options<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    with_pruning: bool,
    early_stop: bool,
) -> SolveResult {
    match try_solve_with_options(problem, with_pruning, early_stop) {
        Ok(result) => result,
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets, so NoValidatedCandidate cannot occur; kept panicking for signature stability
        Err(e) => panic!("PINOCCHIO-VO invariant violated: {e}"),
    }
}

/// Fallible form of [`solve_with_options`]: returns
/// [`SolveError::NoValidatedCandidate`] instead of panicking if no
/// candidate survives validation (impossible for builder-constructed
/// problems, whose candidate sets are non-empty).
pub fn try_solve_with_options<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    with_pruning: bool,
    early_stop: bool,
) -> Result<SolveResult, SolveError> {
    let start = Instant::now();
    let mut pair = problem.pair_eval();
    let m = problem.candidates().len();
    let prep = prepare(problem, with_pruning);
    let vs_store = &prep.vs_store;
    let vs_all = &prep.vs_all;
    let min_inf = &prep.min_inf;
    let max_inf = &prep.max_inf;
    let mut stats = prep.stats;
    let vs_len = |j: usize| -> u64 {
        if with_pruning {
            vs_store[j].len() as u64
        } else {
            vs_all.len() as u64
        }
    };

    // ---- validation phase (Strategy 1 driver) --------------------------
    // Max-heap over (maxInf, minInf, smaller-index-first). Bounds of a
    // candidate only change while *it* is being validated, so the
    // insertion-time keys stay exact for every candidate still in the
    // heap.
    let mut heap: BinaryHeap<(u32, u32, std::cmp::Reverse<usize>)> = (0..m)
        .map(|j| (max_inf[j], min_inf[j], std::cmp::Reverse(j)))
        .collect();

    // maxminInf starts at the best certified lower bound. The candidate
    // attaining it has maxInf ≥ maxminInf, so it is always popped and
    // fully validated before the cut-off fires — the final winner is
    // therefore always an exactly-counted candidate. Both are `Cell`s
    // because the tile's `current_bound` reader and `publish` writer
    // capture them simultaneously.
    let maxmin_inf = Cell::new(min_inf.iter().copied().max().unwrap_or(0));
    let best: Cell<Option<(u32, usize)>> = Cell::new(None); // (exact influence, index)

    // Pop tiles of `tile_width` candidates (1 outside the log-blocked
    // kernel, reproducing the historical per-candidate loop exactly) and
    // validate each tile object-major. The heap keys stay exact: bounds
    // of a candidate only change while it is being validated.
    let tile_width = pair.tile_width();
    let mut tile: Vec<TileCandidate<'_>> = Vec::with_capacity(tile_width);
    loop {
        tile.clear();
        while tile.len() < tile_width {
            let Some(&(top_max, _, _)) = heap.peek() else {
                break;
            };
            if top_max < maxmin_inf.get() {
                break; // cut-off: handled below, with the pop accounting
            }
            let Some((_, _, std::cmp::Reverse(j))) = heap.pop() else {
                break;
            };
            tile.push(TileCandidate {
                index: j,
                candidate: problem.candidates()[j],
                vs: if with_pruning { &vs_store[j] } else { vs_all },
                bounds: (min_inf[j], max_inf[j]),
            });
        }
        if tile.is_empty() {
            if let Some((_, _, std::cmp::Reverse(j))) = heap.pop() {
                // Strategy 1 cut-off: nobody left can beat the incumbent.
                stats.candidates_skipped_by_bounds += 1 + heap.len() as u64;
                stats.pairs_skipped_by_bounds += vs_len(j)
                    + heap
                        .iter()
                        .map(|&(_, _, std::cmp::Reverse(r))| vs_len(r))
                        .sum::<u64>();
            }
            break;
        }
        validate_tile(
            &mut pair,
            &tile,
            early_stop,
            || maxmin_inf.get(),
            |idx, exact| {
                match best.get() {
                    Some((inf, bidx)) if exact < inf || (exact == inf && bidx < idx) => {}
                    _ => best.set(Some((exact, idx))),
                }
                if exact > maxmin_inf.get() {
                    maxmin_inf.set(exact);
                }
            },
            &mut stats,
        );
    }

    let (max_influence, best_candidate) = best.get().ok_or(SolveError::NoValidatedCandidate)?;

    Ok(SolveResult {
        algorithm: if with_pruning {
            Algorithm::PinocchioVo
        } else {
            Algorithm::PinocchioVoStar
        },
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: None,
        stats,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::state::A2d;
    use pinocchio_data::{GeneratorConfig, MovingObject, SyntheticGenerator};
    use pinocchio_geo::Point;
    use pinocchio_prob::PowerLawPf;

    fn synthetic_problem(tau: f64, seed: u64, users: usize) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
        let (_, candidates) = pinocchio_data::sample_candidate_group(&d, 50, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap()
    }

    #[test]
    fn vo_agrees_with_naive() {
        for tau in [0.1, 0.5, 0.7, 0.9] {
            for seed in [1, 2, 3] {
                let p = synthetic_problem(tau, seed, 50);
                let na = naive::solve(&p);
                let vo = solve(&p, true);
                assert_eq!(
                    vo.best_candidate, na.best_candidate,
                    "tau={tau} seed={seed}"
                );
                assert_eq!(vo.max_influence, na.max_influence, "tau={tau} seed={seed}");
            }
        }
    }

    #[test]
    fn vo_star_agrees_with_naive() {
        for tau in [0.3, 0.7] {
            for seed in [4, 5] {
                let p = synthetic_problem(tau, seed, 50);
                let na = naive::solve(&p);
                let vo_star = solve(&p, false);
                assert_eq!(vo_star.best_candidate, na.best_candidate);
                assert_eq!(vo_star.max_influence, na.max_influence);
                assert_eq!(vo_star.stats.pruned_pairs(), 0, "VO* must not prune");
            }
        }
    }

    #[test]
    fn vo_does_less_work_than_naive() {
        let p = synthetic_problem(0.7, 7, 80);
        let na = naive::solve(&p);
        let vo = solve(&p, true);
        assert!(
            vo.stats.positions_evaluated < na.stats.positions_evaluated,
            "VO {} vs NA {}",
            vo.stats.positions_evaluated,
            na.stats.positions_evaluated
        );
        assert!(vo.stats.validated_pairs < na.stats.validated_pairs);
    }

    #[test]
    fn strategy1_skips_candidates() {
        let p = synthetic_problem(0.7, 8, 80);
        let vo = solve(&p, true);
        let total = p.candidates().len() as u64;
        assert_eq!(
            vo.stats.candidates_fully_validated
                + vo.stats.candidates_skipped_by_bounds
                + died_mid(&vo, total),
            total
        );
        assert!(
            vo.stats.candidates_fully_validated < total,
            "some candidate should be skipped or die early"
        );
    }

    fn died_mid(vo: &SolveResult, total: u64) -> u64 {
        total - vo.stats.candidates_fully_validated - vo.stats.candidates_skipped_by_bounds
    }

    #[test]
    fn accounting_is_complete() {
        // Every (influenceable object, candidate) pair is decided by a
        // pruning rule, validated, or skipped by Strategy 1 — nothing is
        // lost, for both VO and VO*.
        for (tau, seed) in [(0.5, 4), (0.7, 6), (0.9, 11)] {
            let p = synthetic_problem(tau, seed, 60);
            let a2d = A2d::build(p.objects(), p.pf(), p.tau());
            let expected_pairs = (a2d.influenceable() * p.candidates().len()) as u64;
            for with_pruning in [true, false] {
                for early_stop in [true, false] {
                    let r = solve_with_options(&p, with_pruning, early_stop);
                    assert_eq!(
                        r.stats.accounted_pairs(),
                        expected_pairs,
                        "tau={tau} seed={seed} pruning={with_pruning} s2={early_stop}"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_all_uninfluenceable() {
        // τ = 0.95 > PF(0), all objects single-position: nothing can be
        // influenced; solver must return influence 0 deterministically.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
                MovingObject::new(1, vec![Point::new(5.0, 5.0)]),
            ])
            .candidates(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.95)
            .build()
            .unwrap();
        for with_pruning in [true, false] {
            let r = solve(&p, with_pruning);
            assert_eq!(r.max_influence, 0);
            assert_eq!(r.best_candidate, 0, "ties break to the smallest index");
            assert_eq!(r.stats.uninfluenceable_objects, 2);
        }
    }

    #[test]
    fn tie_break_matches_naive_exactly() {
        // Symmetric world: two identical clusters, two symmetric candidates
        // — influence ties are guaranteed.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)]),
                MovingObject::new(1, vec![Point::new(10.0, 0.0), Point::new(10.1, 0.0)]),
            ])
            .candidates(vec![Point::new(10.05, 0.0), Point::new(0.05, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        let na = naive::solve(&p);
        let vo = solve(&p, true);
        let vo_star = solve(&p, false);
        assert_eq!(na.max_influence, 1);
        assert_eq!(na.best_candidate, 0);
        assert_eq!(vo.best_candidate, 0);
        assert_eq!(vo_star.best_candidate, 0);
    }

    #[test]
    fn strategy2_toggle_changes_cost_not_answers() {
        let p = synthetic_problem(0.5, 10, 80);
        let with_s2 = solve_with_options(&p, true, true);
        let without_s2 = solve_with_options(&p, true, false);
        assert_eq!(with_s2.best_candidate, without_s2.best_candidate);
        assert_eq!(with_s2.max_influence, without_s2.max_influence);
        assert!(
            with_s2.stats.positions_evaluated <= without_s2.stats.positions_evaluated,
            "early stopping must not evaluate more positions"
        );
    }

    #[test]
    fn early_stop_reduces_positions_not_verdicts() {
        // PIN validates undecided pairs with full scans; VO validates the
        // same pairs with early stopping — fewer positions, same answer.
        let p = synthetic_problem(0.5, 9, 80);
        let pin = crate::pinocchio::solve(&p);
        let vo = solve(&p, true);
        assert_eq!(pin.best_candidate, vo.best_candidate);
        assert_eq!(pin.max_influence, vo.max_influence);
        assert!(
            vo.stats.positions_evaluated <= pin.stats.positions_evaluated,
            "Strategy 2 must not evaluate more positions"
        );
    }
}
