//! Fixture: a justified suppression silences the finding cleanly.

/// Justified allow passes the audit and suppresses the diagnostic.
pub fn justified(x: Option<u32>) -> u32 {
    x.unwrap() // pinocchio-lint: allow(panic-path) -- fixture: the value is always Some by construction
}
