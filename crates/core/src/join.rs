//! PIN-JOIN — candidate-centric influence join over the μ-aggregate
//! object tree (an extension beyond the paper).
//!
//! Every paper solver is *object-centric*: each row of `A_2D` plays its
//! pruning rules against the candidate R-tree, so the outer loop runs
//! `r` times regardless of how many objects a single candidate could
//! have decided at once. This module inverts the join: per candidate
//! `c`, one traversal of the [`MbrTree`] (objects bulk-loaded with
//! per-node aggregate bounds `min_mu`/`max_mu` over `minMaxRadius`,
//! Definition 5) classifies whole *subtrees* of objects:
//!
//! * **Subtree IA** — `maxDist(c, node.mbr) ≤ node.min_mu` lifts
//!   Theorem 1 to the node: for every object `O` below, `maxDist(c, O's
//!   MBR) ≤ maxDist(c, node.mbr) ≤ min_mu ≤ μ(O)` (containment
//!   monotonicity, see `pinocchio_geo::Mbr::max_dist_sq`), hence all of
//!   `O`'s positions lie within `μ(O)` and `c` influences `O`. The
//!   node's `count` objects are credited in O(1).
//! * **Subtree NIB** — `minDist(c, node.mbr) > node.max_mu` (or `c`
//!   outside the node's union-of-inflated-MBRs `nib_mbr`) lifts
//!   Theorem 2: `minDist(c, O) ≥ minDist(c, node.mbr) > max_mu ≥ μ(O)`,
//!   so no object below is influenced. The subtree is discarded in O(1).
//! * **Mixed** nodes descend; surviving leaf entries are re-tested
//!   individually and only the truly undecided ones fall through to the
//!   exact [`PairEval`](crate::eval::PairEval) validation (Definition 2
//!   with Lemma 4 early stopping).
//!
//! The verdicts are identical to NA's — both subtree rules only decide
//! pairs the per-object rules would also decide, conservatively — but
//! the decision cost drops from `Θ(r)` region tests per candidate to
//! one tree descent, with `subtrees_pruned_ia` / `subtrees_pruned_nib`
//! counting the O(1) bulk decisions.
//!
//! [`solve_par`] adds a parallel filter phase: candidates are striped
//! across workers that share PIN-VO's monotone atomic `maxminInf`
//! bound, so a candidate whose post-traversal `maxInf` already trails
//! the best validated influence is skipped without validating a single
//! pair. The exactness argument is the same as `parallel::solve_vo`'s:
//! the bound only ever holds exact counts `≤ I*`, and skips/kills
//! require `maxInf` *strictly* below it, so every candidate attaining
//! `I*` is fully validated under every schedule and the smallest-index
//! tie-break is deterministic.

use crate::parallel::join_worker;
use crate::problem::PrimeLs;
use crate::result::{argmax_smallest_index, Algorithm, SolveError, SolveResult, SolveStats};
use crate::vo;
use pinocchio_geo::Point;
use pinocchio_index::{JoinEvent, MbrTree};
use pinocchio_prob::ProbabilityFunction;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Runs one candidate through the μ-aggregate tree: bulk and per-entry
/// IA/NIB decisions land in `stats` (`decided_by_ia` / `decided_by_nib`
/// count *objects*, the `subtrees_*` counters count O(1) node
/// decisions), the undecided object indices are collected into
/// `undecided`, and the certified influence (IA total) is returned.
pub(crate) fn classify(
    tree: &MbrTree<usize>,
    candidate: &Point,
    undecided: &mut Vec<u32>,
    stats: &mut SolveStats,
) -> u32 {
    undecided.clear();
    let mut influenced = 0u64;
    let mut excluded = 0u64;
    let traversal = tree.influence_join(candidate, |event| match event {
        JoinEvent::SubtreeInfluenced { count } => influenced += count,
        JoinEvent::SubtreeExcluded { count } => excluded += count,
        JoinEvent::EntryInfluenced(_) => influenced += 1,
        JoinEvent::EntryExcluded(_) => excluded += 1,
        JoinEvent::EntryUndecided(&k) => undecided.push(u32::try_from(k).unwrap_or(u32::MAX)),
    });
    stats.decided_by_ia += influenced;
    stats.decided_by_nib += excluded;
    stats.subtrees_pruned_ia += traversal.subtrees_ia;
    stats.subtrees_pruned_nib += traversal.subtrees_nib;
    stats.join_nodes_visited += traversal.nodes_visited;
    u32::try_from(influenced).unwrap_or(u32::MAX)
}

/// Runs the sequential PIN-JOIN solver.
///
/// Computes the exact influence of every candidate (like NA and
/// PINOCCHIO it returns the full vector), so its only cost advantage
/// over PINOCCHIO is the hierarchical bulk classification; the
/// bound-driven candidate skipping needs [`solve_par`].
pub fn solve<P: ProbabilityFunction + Clone>(problem: &PrimeLs<P>) -> SolveResult {
    let start = Instant::now();
    let mut pair = problem.pair_eval();
    let mut stats = SolveStats::default();

    let a2d = problem.a2d();
    stats.uninfluenceable_objects = (a2d.entries().len() - a2d.influenceable()) as u64;
    let tree = problem.object_tree();

    let m = problem.candidates().len();
    let mut influences = vec![0u32; m];
    let tile_width = pair.tile_width();
    if tile_width <= 1 {
        // Historical per-candidate loop (Scalar / Blocked kernels):
        // verdict order, stats and counters exactly as before.
        let mut undecided: Vec<u32> = Vec::new();
        for (j, c) in problem.candidates().iter().enumerate() {
            let mut inf = classify(tree, c, &mut undecided, &mut stats);
            for &k in undecided.iter() {
                if pair.influences(c, k as usize, true, &mut stats) {
                    inf += 1;
                }
            }
            influences[j] = inf;
        }
    } else {
        // Log-blocked kernel: classify a tile of candidates, then
        // validate their (sorted) undecided sets object-major through
        // the shared tile loop, so objects shared across the tile are
        // evaluated while their arena blocks are cache-resident. The
        // zero bound disables the Strategy 1 kill — like the historical
        // loop, the sequential join validates every undecided pair.
        let mut buffers: Vec<Vec<u32>> = vec![Vec::new(); tile_width];
        let mut bounds = [(0u32, 0u32); crate::eval::LOG_TILE_WIDTH];
        let mut lo = 0usize;
        while lo < m {
            let hi = (lo + tile_width).min(m);
            for (s, j) in (lo..hi).enumerate() {
                let inf = classify(tree, &problem.candidates()[j], &mut buffers[s], &mut stats);
                buffers[s].sort_unstable();
                bounds[s] = (
                    inf,
                    inf + u32::try_from(buffers[s].len()).unwrap_or(u32::MAX),
                );
            }
            let tile: Vec<vo::TileCandidate<'_>> = (lo..hi)
                .enumerate()
                .map(|(s, j)| vo::TileCandidate {
                    index: j,
                    candidate: problem.candidates()[j],
                    vs: &buffers[s],
                    bounds: bounds[s],
                })
                .collect();
            vo::validate_tile(
                &mut pair,
                &tile,
                true,
                || 0,
                |j, exact| influences[j] = exact,
                &mut stats,
            );
            lo = hi;
        }
    }

    let (best_candidate, max_influence) = argmax_smallest_index(&influences)
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets (BuildError::NoCandidates), so the influence vector is non-empty
        .expect("at least one candidate by construction");

    SolveResult {
        algorithm: Algorithm::PinocchioJoin,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: Some(influences),
        stats,
        elapsed: start.elapsed(),
    }
}

/// Parallel PIN-JOIN: candidates striped over `threads` workers sharing
/// one monotone atomic `maxminInf` bound (see the module docs for the
/// exactness argument). Like `parallel::solve_vo` it reports only the
/// optimum (`influences: None`) — candidates whose traversal bounds
/// already lose are never validated — and its cost counters depend on
/// how fast the bound tightens, while the pair accounting stays
/// complete for every schedule.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_par<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    match try_solve_par(problem, threads) {
        Ok(result) => result,
        // pinocchio-lint: allow(panic-path) -- ZeroThreads is asserted away above and NoValidatedCandidate is impossible for builder-constructed problems; kept panicking for signature stability
        Err(e) => panic!("parallel PIN-JOIN invariant violated: {e}"),
    }
}

/// Fallible form of [`solve_par`]: returns [`SolveError::ZeroThreads`]
/// for `threads == 0` and [`SolveError::NoValidatedCandidate`] if no
/// candidate survives validation (impossible for builder-constructed
/// problems: the bound starts at zero, so each worker fully validates
/// its first candidate, and the global optimum is never skipped).
pub fn try_solve_par<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> Result<SolveResult, SolveError> {
    if threads == 0 {
        return Err(SolveError::ZeroThreads);
    }
    let start = Instant::now();

    let a2d = problem.a2d();
    let uninfluenceable = (a2d.entries().len() - a2d.influenceable()) as u64;
    let tree = problem.object_tree();
    let m = problem.candidates().len();
    let chunk = m.div_ceil(threads).max(1);

    // The shared monotone bound: holds the largest exact influence
    // validated so far, by any worker. `fetch_max` keeps it monotone
    // under concurrent publishes, which is what makes sharing it safe.
    let bound = AtomicU32::new(0);

    let worker_results: Vec<(SolveStats, Option<(u32, usize)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(m);
                let bound = &bound;
                scope.spawn(move || {
                    let mut pair = problem.pair_eval();
                    // 1 outside the log-blocked kernel — a 1-wide tile
                    // reproduces the historical classify → filter →
                    // validate sequence (and its stats) exactly.
                    let tile_width = pair.tile_width();
                    let mut stats = SolveStats::default();
                    let mut buffers: Vec<Vec<u32>> = vec![Vec::new(); tile_width];
                    let mut bounds = [(0u32, 0u32); crate::eval::LOG_TILE_WIDTH];
                    let mut best: Option<(u32, usize)> = None;
                    let mut tlo = lo;
                    while tlo < hi {
                        let thi = (tlo + tile_width).min(hi);
                        for (s, j) in (tlo..thi).enumerate() {
                            let min_inf = classify(
                                tree,
                                &problem.candidates()[j],
                                &mut buffers[s],
                                &mut stats,
                            );
                            if tile_width > 1 {
                                buffers[s].sort_unstable();
                            }
                            bounds[s] = (
                                min_inf,
                                min_inf + u32::try_from(buffers[s].len()).unwrap_or(u32::MAX),
                            );
                        }
                        // ordering: Acquire pairs with the Release half of the
                        // workers' `fetch_max` publishes below, so the filter
                        // observes every influence count published before it; a
                        // stale (smaller) value only admits a doomed candidate
                        // to validation and can never skip a winner.
                        let cutoff = bound.load(Ordering::Acquire);
                        let tile: Vec<vo::TileCandidate<'_>> = (tlo..thi)
                            .enumerate()
                            .filter(|&(s, _)| {
                                if bounds[s].1 < cutoff {
                                    // Filter-phase skip: the traversal bounds
                                    // alone prove this candidate cannot win, so
                                    // its whole verification set is skipped
                                    // unevaluated.
                                    stats.candidates_skipped_by_bounds += 1;
                                    stats.pairs_skipped_by_bounds += buffers[s].len() as u64;
                                    false
                                } else {
                                    true
                                }
                            })
                            .map(|(s, j)| vo::TileCandidate {
                                index: j,
                                candidate: problem.candidates()[j],
                                vs: &buffers[s],
                                bounds: bounds[s],
                            })
                            .collect();
                        vo::validate_tile(
                            &mut pair,
                            &tile,
                            true,
                            // ordering: Acquire pairs with the `fetch_max` Release
                            // publishes — mid-validation kill tests observe fresh
                            // bounds; staleness is again only a cost, never an
                            // error.
                            || bound.load(Ordering::Acquire),
                            |j, exact| {
                                // ordering: AcqRel — the Release half publishes this
                                // exact count to the other workers' Acquire loads;
                                // the Acquire half orders the read-modify-write
                                // after earlier publishes so the bound is monotone
                                // non-decreasing.
                                bound.fetch_max(exact, Ordering::AcqRel);
                                match best {
                                    Some((inf, idx))
                                        if exact < inf || (exact == inf && idx < j) => {}
                                    _ => best = Some((exact, j)),
                                }
                            },
                            &mut stats,
                        );
                        tlo = thi;
                    }
                    (stats, best)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });

    let mut stats = SolveStats {
        uninfluenceable_objects: uninfluenceable,
        ..SolveStats::default()
    };
    let mut best: Option<(u32, usize)> = None;
    for (partial, local_best) in worker_results {
        stats += partial;
        if let Some((inf, j)) = local_best {
            match best {
                Some((binf, bidx)) if inf < binf || (inf == binf && bidx < j) => {}
                _ => best = Some((inf, j)),
            }
        }
    }
    let (max_influence, best_candidate) = best.ok_or(SolveError::NoValidatedCandidate)?;

    Ok(SolveResult {
        algorithm: Algorithm::PinocchioJoin,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: None,
        stats,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use pinocchio_data::{
        sample_candidate_group, GeneratorConfig, MovingObject, SyntheticGenerator,
    };
    use pinocchio_prob::PowerLawPf;

    fn synthetic_problem(tau: f64, seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(60, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, 40, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_naive_on_synthetic_worlds() {
        for tau in [0.3, 0.5, 0.7, 0.9] {
            for seed in [1, 2] {
                let p = synthetic_problem(tau, seed);
                let na = naive::solve(&p);
                let join = solve(&p);
                assert_eq!(
                    join.influences, na.influences,
                    "influence vectors differ at tau={tau} seed={seed}"
                );
                assert_eq!(join.best_candidate, na.best_candidate);
                assert_eq!(join.max_influence, na.max_influence);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_and_naive() {
        for (tau, seed) in [(0.3, 3), (0.7, 4), (0.7, 5)] {
            let p = synthetic_problem(tau, seed);
            let seq = solve(&p);
            let na = naive::solve(&p);
            for threads in [1, 2, 8] {
                let par = solve_par(&p, threads);
                assert_eq!(
                    par.best_candidate, seq.best_candidate,
                    "tau={tau} seed={seed} threads={threads}"
                );
                assert_eq!(par.max_influence, seq.max_influence);
                assert_eq!(par.best_candidate, na.best_candidate);
                assert_eq!(par.max_influence, na.max_influence);
            }
        }
    }

    #[test]
    fn accounting_is_complete() {
        let p = synthetic_problem(0.7, 6);
        let influenceable_pairs = (p.a2d().influenceable() * p.candidates().len()) as u64;
        let seq = solve(&p);
        assert_eq!(seq.stats.accounted_pairs(), influenceable_pairs);
        assert_eq!(
            seq.stats.pairs_skipped_by_bounds, 0,
            "sequential never skips"
        );
        for threads in [1, 2, 8] {
            let par = solve_par(&p, threads);
            assert_eq!(
                par.stats.accounted_pairs(),
                influenceable_pairs,
                "threads={threads}"
            );
            assert_eq!(
                par.stats.uninfluenceable_objects,
                seq.stats.uninfluenceable_objects
            );
        }
    }

    #[test]
    fn subtree_counters_fire() {
        // A bigger world gives the tree internal levels whose aggregate
        // bounds can decide whole subtrees.
        let d = SyntheticGenerator::new(GeneratorConfig::small(400, 7)).generate();
        let (_, candidates) = sample_candidate_group(&d, 60, 7);
        let p = PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        let r = solve(&p);
        assert!(r.stats.join_nodes_visited > 0);
        assert!(
            r.stats.subtrees_pruned_ia > 0,
            "no subtree-IA decisions: {:?}",
            r.stats
        );
        assert!(
            r.stats.subtrees_pruned_nib > 0,
            "no subtree-NIB decisions: {:?}",
            r.stats
        );
    }

    #[test]
    fn all_uninfluenceable_world_returns_zero() {
        // Single-position objects cannot reach τ = 0.95 > PF(0) = 0.9.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
                MovingObject::new(1, vec![Point::new(5.0, 5.0)]),
            ])
            .candidates(vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.95)
            .build()
            .unwrap();
        let seq = solve(&p);
        assert_eq!(seq.max_influence, 0);
        assert_eq!(seq.best_candidate, 0, "smallest index wins a 0-tie");
        assert_eq!(seq.stats.uninfluenceable_objects, 2);
        for threads in [1, 2, 8] {
            let par = solve_par(&p, threads);
            assert_eq!(par.max_influence, 0);
            assert_eq!(par.best_candidate, 0, "threads={threads}");
            assert_eq!(par.stats.uninfluenceable_objects, 2);
        }
    }

    #[test]
    fn tie_break_prefers_smallest_index() {
        // Two symmetric clusters: candidates 0 and 1 each influence
        // exactly one object, so the verdict is a tie broken by index.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)]),
                MovingObject::new(1, vec![Point::new(20.0, 0.0), Point::new(20.1, 0.0)]),
            ])
            .candidates(vec![Point::new(20.05, 0.0), Point::new(0.05, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        let na = naive::solve(&p);
        assert_eq!(na.max_influence, 1);
        let seq = solve(&p);
        assert_eq!(seq.best_candidate, 0);
        assert_eq!(seq.max_influence, 1);
        for threads in [1, 2, 8] {
            let par = solve_par(&p, threads);
            assert_eq!(par.best_candidate, 0, "threads={threads}");
            assert_eq!(par.max_influence, 1);
        }
    }

    #[test]
    fn try_solve_par_reports_zero_threads_as_error() {
        let p = synthetic_problem(0.7, 8);
        assert_eq!(try_solve_par(&p, 0).err(), Some(SolveError::ZeroThreads));
        assert!(try_solve_par(&p, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let p = synthetic_problem(0.7, 8);
        let _ = solve_par(&p, 0);
    }
}
