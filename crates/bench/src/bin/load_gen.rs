//! Load generator for the `pinocchio-serve` query service.
//!
//! Boots a real server over TCP, hammers it with pipelined concurrent
//! clients while a writer connection streams position updates, and
//! measures end-to-end throughput plus the queue-to-response latency
//! histogram — once per configured `batch_max`, so the checked-in
//! record shows what per-epoch request batching buys (shared
//! from-scratch solves, fewer snapshot loads) against the batching-off
//! baseline.
//!
//! The run doubles as an exactness gate: after the load drains, the
//! final `best` and `solve` answers over the wire must **bit-match** a
//! from-scratch computation on a locally mirrored copy of the final
//! state (same updates applied through the same [`World::apply`]
//! codepath), and the server's final counters must satisfy the
//! `ServeStats` accounting identity. Any disagreement aborts the run
//! before a record is written.
//!
//! Emits `BENCH_PR5.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per batch size. Runs at
//! `PINOCCHIO_SCALE=small` in CI (the `serve-smoke` job).

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_geo::Point;
use pinocchio_serve::{serve, ServerConfig, UpdateOp, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

/// Concurrent query connections.
const CLIENTS: usize = 4;
/// Queries sent by each client.
const QUERIES_PER_CLIENT: usize = 200;
/// Requests each client keeps in flight (pipelining keeps the admission
/// queue non-empty, which is what gives `batch_max` something to do).
const PIPELINE: usize = 32;
/// Updates streamed by the writer connection during the query load.
const UPDATES: usize = 50;
/// The benchmarked batch sizes: batching off vs. the server default ×2.
const BATCH_SIZES: [usize; 2] = [1, 32];
/// Candidate-set size (smaller than the solver benches: every `solve`
/// query is a full from-scratch run).
const CANDIDATES: usize = 60;

/// A blocking line client for the serial (writer / verification) roles.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.stream, "{request}").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        serde_json::from_str(line.trim_end()).expect("response is JSON")
    }
}

fn uint(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field} in {v}"))
}

fn float_bits(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing f64 field {field} in {v}"))
        .to_bits()
}

/// The query mix one client cycles through; solves rotate over the
/// pruning solvers so batch mates can share runs per (epoch, algo).
fn request_for(i: usize, client: usize, candidate_ids: &[u64]) -> String {
    match i % 4 {
        0 => r#"{"v":1,"op":"best"}"#.to_string(),
        1 => format!(r#"{{"v":1,"op":"top_k","k":{}}}"#, 1 + (i + client) % 5),
        2 => format!(
            r#"{{"v":1,"op":"influence_of","candidate":{}}}"#,
            candidate_ids[(i + client) % candidate_ids.len()]
        ),
        _ => {
            let algo = ["pin-vo", "pin", "pin-join"][(i / 4 + client) % 3];
            format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#)
        }
    }
}

/// Runs the full load against one server instance and returns the row.
fn run_one(initial: &World, batch_max: usize) -> serde_json::Value {
    let handle = serve(
        initial.clone(),
        ServerConfig {
            queue_capacity: 2 * CLIENTS * PIPELINE,
            batch_max,
            workers: 4,
            solve_threads: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let candidate_ids = initial.candidate_ids();
    let object_ids = initial.object_ids();

    println!("  batch_max={batch_max}: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, {UPDATES} updates");
    let started = Instant::now();

    // Writer: serial acked updates, mirrored locally for the final gate.
    let mut mirror = initial.clone();
    let writer = {
        let mut rng = StdRng::seed_from_u64(0x10AD + batch_max as u64);
        let mut client = Client::connect(addr);
        let ops: Vec<UpdateOp> = (0..UPDATES)
            .map(|_| UpdateOp::AppendPosition {
                object: object_ids[rng.gen_range(0..object_ids.len())],
                position: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            })
            .collect();
        for op in &ops {
            mirror.apply(op).expect("mirror accepts its own updates");
        }
        thread::spawn(move || {
            for op in ops {
                let UpdateOp::AppendPosition { object, position } = &op else {
                    unreachable!("writer only appends");
                };
                let ack = client.round_trip(&format!(
                    r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
                    position.x, position.y
                ));
                assert_eq!(
                    ack.get("applied").and_then(Value::as_bool),
                    Some(true),
                    "update rejected: {ack}"
                );
            }
        })
    };

    // Query clients: pipelined chunks keep PIPELINE requests in flight.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let candidate_ids = candidate_ids.clone();
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut stream = stream;
                let mut sent = 0usize;
                while sent < QUERIES_PER_CLIENT {
                    let chunk = PIPELINE.min(QUERIES_PER_CLIENT - sent);
                    let mut burst = String::new();
                    for i in sent..sent + chunk {
                        burst.push_str(&request_for(i, c, &candidate_ids));
                        burst.push('\n');
                    }
                    stream.write_all(burst.as_bytes()).expect("send burst");
                    for _ in 0..chunk {
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("recv");
                        let v: Value =
                            serde_json::from_str(line.trim_end()).expect("response is JSON");
                        assert_eq!(
                            v.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "query failed under load: {v}"
                        );
                    }
                    sent += chunk;
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for client in clients {
        client.join().expect("client thread");
    }
    let seconds = started.elapsed().as_secs_f64();

    // Exactness gate: the served final state must bit-match the mirror.
    let mut check = Client::connect(addr);
    let best = check.round_trip(r#"{"v":1,"op":"best"}"#);
    let (id, loc, inf) = mirror.best().unwrap().expect("non-empty world");
    assert_eq!(uint(&best, "epoch"), UPDATES as u64, "stale final epoch");
    assert_eq!(uint(&best, "candidate"), id, "served best diverged");
    assert_eq!(float_bits(&best, "x"), loc.x.to_bits());
    assert_eq!(float_bits(&best, "y"), loc.y.to_bits());
    assert_eq!(uint(&best, "influence"), u64::from(inf));
    let solved = check.round_trip(r#"{"v":1,"op":"solve","algo":"pin-vo"}"#);
    let outcome = mirror.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(uint(&solved, "candidate"), outcome.candidate);
    assert_eq!(uint(&solved, "influence"), u64::from(outcome.influence));
    assert_eq!(float_bits(&solved, "x"), outcome.location.x.to_bits());
    assert_eq!(float_bits(&solved, "y"), outcome.location.y.to_bits());

    let ack = check.round_trip(r#"{"v":1,"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    drop(check);
    let stats = handle.join();

    let queries = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(stats.shed, 0, "the load must fit the admission queue");
    assert_eq!(stats.updates_applied, UPDATES as u64);
    assert_eq!(stats.queries_completed(), queries + 2);
    assert_eq!(stats.queries_completed(), stats.latency_total());
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "accounting identity violated: {stats:?}"
    );

    let throughput = queries as f64 / seconds;
    let shared = stats.queries_solve - stats.solve_runs;
    println!(
        "  batch_max={batch_max}: {throughput:.0} q/s in {}, batches={} jobs/batch={:.2} \
         solves={} shared={} high_water={}",
        fmt_secs(seconds),
        stats.batches,
        stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        stats.solve_runs,
        shared,
        stats.queue_high_water,
    );
    serde_json::json!({
        "batch_max": batch_max,
        "clients": CLIENTS,
        "pipeline": PIPELINE,
        "queries": queries,
        "updates": UPDATES,
        "seconds": seconds,
        "throughput_qps": throughput,
        "batches": stats.batches,
        "batched_jobs": stats.batched_jobs,
        "jobs_per_batch": stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        "queries_solve": stats.queries_solve,
        "solve_runs": stats.solve_runs,
        "shared_solves": shared,
        "epochs_published": stats.epochs_published,
        "queue_high_water": stats.queue_high_water,
        "stats": stats.to_json(),
    })
}

fn main() {
    let d = dataset(DatasetKind::Foursquare);
    let m = CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(&d, m, 8);
    let world = World::from_parts(d.objects().to_vec(), candidates, defaults::TAU)
        .expect("well-formed world");
    println!(
        "load-gen: {} objects x {} candidates, tau={}",
        world.object_count(),
        world.candidate_count(),
        defaults::TAU
    );

    let rows: Vec<serde_json::Value> = BATCH_SIZES
        .iter()
        .map(|&batch_max| run_one(&world, batch_max))
        .collect();

    let record = serde_json::json!({
        "id": "load_gen_pr5",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "candidates": m,
        "rows": rows,
    });
    write_record("load_gen_pr5", &record);

    // Checked-in copy at the workspace root so the PR carries the
    // measured numbers alongside the code.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR5.json");
    println!("[record written to {}]", root.display());
}
