//! Fig. 7 — the probability functions.
//!
//! (a) power law with λ ∈ {0.75, 1.0, 1.25} at ρ = 0.9;
//! (b) power law with ρ ∈ {0.5, 0.7, 0.9} at λ = 1.0.
//!
//! Prints the curves as value series (one row per distance) — the same
//! numbers the paper plots.

use pinocchio_bench::{linspace, write_record};
use pinocchio_eval::Table;
use pinocchio_prob::{PowerLawPf, ProbabilityFunction};

fn main() {
    let distances = linspace(0.0, 10.0, 21);

    let lambdas = [0.75, 1.0, 1.25];
    let mut a = Table::new(
        "Fig. 7a: PF(d) = 0.9·(1+d)^(−λ)",
        &["d (km)", "λ=0.75", "λ=1.0", "λ=1.25"],
    );
    for &d in &distances {
        let mut row = vec![format!("{d:.1}")];
        row.extend(
            lambdas
                .iter()
                .map(|&l| format!("{:.4}", PowerLawPf::with_lambda(l).prob(d))),
        );
        a.push_row(row);
    }
    println!("{a}");

    let rhos = [0.5, 0.7, 0.9];
    let mut b = Table::new(
        "Fig. 7b: PF(d) = ρ·(1+d)^(−1)",
        &["d (km)", "ρ=0.5", "ρ=0.7", "ρ=0.9"],
    );
    for &d in &distances {
        let mut row = vec![format!("{d:.1}")];
        row.extend(
            rhos.iter()
                .map(|&r| format!("{:.4}", PowerLawPf::with_rho(r).prob(d))),
        );
        b.push_row(row);
    }
    println!("{b}");

    let series = |pf: PowerLawPf| -> Vec<f64> { distances.iter().map(|&d| pf.prob(d)).collect() };
    write_record(
        "fig07_pf",
        &serde_json::json!({
            "distances_km": distances,
            "lambda_sweep": lambdas.iter()
                .map(|&l| (l.to_string(), series(PowerLawPf::with_lambda(l))))
                .collect::<std::collections::BTreeMap<_, _>>(),
            "rho_sweep": rhos.iter()
                .map(|&r| (r.to_string(), series(PowerLawPf::with_rho(r))))
                .collect::<std::collections::BTreeMap<_, _>>(),
        }),
    );
}
