//! Cross-crate integration: all four solvers agree with the exhaustive
//! oracle on realistic generated worlds, across thresholds and
//! probability functions.

use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;
use pinocchio::prob::{ConcavePf, ConvexPf, LinearPf, LogsigPf, ProbabilityFunction};

fn world(users: usize, candidates: usize, seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, seed ^ 0xABCD);
    (d.objects().to_vec(), cands)
}

fn assert_all_agree<P: ProbabilityFunction + Clone>(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    pf: P,
    tau: f64,
    context: &str,
) {
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(pf)
        .tau(tau)
        .build()
        .unwrap();
    let oracle = problem.solve(Algorithm::Naive);
    for algorithm in [
        Algorithm::Pinocchio,
        Algorithm::PinocchioVo,
        Algorithm::PinocchioVoStar,
    ] {
        let r = problem.solve(algorithm);
        assert_eq!(
            (r.best_candidate, r.max_influence),
            (oracle.best_candidate, oracle.max_influence),
            "{algorithm} disagrees with NA ({context})"
        );
    }
}

#[test]
fn agreement_across_thresholds() {
    let (objects, candidates) = world(120, 60, 42);
    for tau in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::paper_default(),
            tau,
            &format!("tau={tau}"),
        );
    }
}

#[test]
fn agreement_across_power_law_parameters() {
    let (objects, candidates) = world(100, 50, 7);
    for lambda in [0.75, 1.0, 1.25] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::with_lambda(lambda),
            0.7,
            &format!("lambda={lambda}"),
        );
    }
    for rho in [0.5, 0.7, 0.9] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::with_rho(rho),
            0.7,
            &format!("rho={rho}"),
        );
    }
}

#[test]
fn agreement_across_alternative_pfs() {
    // The Fig. 16 sweep: PINOCCHIO is PF-agnostic, including PFs with
    // bounded support (where minMaxRadius can be undefined for most
    // objects).
    let (objects, candidates) = world(90, 40, 13);
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        LogsigPf::new(0.5, 10.0),
        0.4,
        "logsig",
    );
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        ConvexPf::new(0.5, 10.0),
        0.4,
        "convex",
    );
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        ConcavePf::new(0.5, 10.0),
        0.4,
        "concave",
    );
    assert_all_agree(objects, candidates, LinearPf::new(0.5, 10.0), 0.4, "linear");
}

#[test]
fn influence_vectors_match_between_na_and_pin() {
    let (objects, candidates) = world(150, 80, 99);
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let na = problem.solve(Algorithm::Naive);
    let pin = problem.solve(Algorithm::Pinocchio);
    assert_eq!(na.influences, pin.influences);
    assert_eq!(na.ranking(), pin.ranking());
}

#[test]
fn max_influence_is_monotone_decreasing_in_tau() {
    // Fig. 12's right-hand panel: the maximum influence drops as τ grows.
    let (objects, candidates) = world(120, 50, 21);
    let mut last = u32::MAX;
    for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let problem = PrimeLs::builder()
            .objects(objects.clone())
            .candidates(candidates.clone())
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap();
        let inf = problem.solve(Algorithm::PinocchioVo).max_influence;
        assert!(inf <= last, "influence rose from {last} to {inf} at tau={tau}");
        last = inf;
    }
}

#[test]
fn parallel_solvers_agree_with_sequential() {
    let (objects, candidates) = world(100, 40, 31);
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let seq = problem.solve(Algorithm::Naive);
    let par = pinocchio::core::parallel::solve_naive(&problem, 4);
    assert_eq!(par.influences, seq.influences);
    let par = pinocchio::core::parallel::solve_pinocchio(&problem, 4);
    assert_eq!(par.influences, seq.influences);
}
