//! Fixture: float comparisons that lie.

/// Compares floats with `==` / `!=`.
pub fn same(a: f64, b: f64) -> bool {
    a == 1.0 && b != 2.0
}

/// Sorts by a partial order and panics on NaN.
pub fn first(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Produces a NaN sentinel instead of an Option.
pub fn sentinel() -> f64 {
    f64::NAN
}
