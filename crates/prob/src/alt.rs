//! Alternative probability functions (Fig. 16).
//!
//! §6.2 ("Effect of Different PFs") demonstrates that PINOCCHIO is
//! agnostic to the shape of `PF` by swapping in four commonly used decay
//! functions: a log-sigmoid and its convex and concave parts, and a
//! linear ramp. The paper normalises all four to the same scale; we do
//! the same by parameterising each with
//!
//! * `rho` — the probability at distance zero, and
//! * `scale` — the support radius `D` beyond which (for the bounded
//!   functions) the probability is treated as zero.
//!
//! As the paper notes (footnote 7), these are *shapes*, not calibrated
//! models; they exist to show the framework handles any monotone
//! decreasing `PF` unmodified.

use crate::logdomain::ln_one_minus;
use crate::pf::ProbabilityFunction;

fn validate(rho: f64, scale: f64) {
    assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
    assert!(scale > 0.0, "scale must be positive, got {scale}");
}

/// Log-sigmoid decay: `PF(d) = ρ · σ(k·(D/2 − d)) / σ(k·D/2)` with
/// `σ(x) = 1/(1+e^(−x))` and steepness `k = 8/D`.
///
/// The normalisation makes `PF(0) = ρ` exactly; the curve is concave on
/// `[0, D/2)` and convex beyond (the classic S-shape of the paper's
/// `Logsig`), decaying smoothly towards zero without ever reaching it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogsigPf {
    rho: f64,
    scale: f64,
    k: f64,
    norm: f64,
}

impl LogsigPf {
    /// Creates a log-sigmoid PF with maximum probability `rho` and
    /// characteristic scale `scale` (kilometres).
    pub fn new(rho: f64, scale: f64) -> Self {
        validate(rho, scale);
        let k = 8.0 / scale;
        let norm = sigmoid(k * scale / 2.0);
        LogsigPf {
            rho,
            scale,
            k,
            norm,
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl ProbabilityFunction for LogsigPf {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho * sigmoid(self.k * (self.scale / 2.0 - d)) / self.norm
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p.is_nan() || p <= 0.0 || p > self.rho {
            return None;
        }
        // p = ρ·σ(k(D/2 − d))/σ(kD/2)  ⇒  d = D/2 − σ⁻¹(p·σ(kD/2)/ρ)/k,
        // with σ⁻¹(y) = ln(y) − ln(1 − y) through the crate's shared
        // log-domain helper (accurate as y → 1, where the quotient form
        // cancels).
        let y = p * self.norm / self.rho;
        if y >= 1.0 {
            return Some(0.0);
        }
        let d = self.scale / 2.0 - (y.ln() - ln_one_minus(y)) / self.k;
        Some(d.max(0.0))
    }

    fn name(&self) -> &'static str {
        "logsig"
    }
}

/// Convex decay: `PF(d) = ρ · (1 − d/D)²` on `[0, D]`, zero beyond.
///
/// Mirrors the convex branch of the log-sigmoid: steep near the facility,
/// flattening towards the support edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvexPf {
    rho: f64,
    scale: f64,
}

impl ConvexPf {
    /// Creates a convex PF with maximum probability `rho` and support
    /// radius `scale`.
    pub fn new(rho: f64, scale: f64) -> Self {
        validate(rho, scale);
        ConvexPf { rho, scale }
    }
}

impl ProbabilityFunction for ConvexPf {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        if d >= self.scale {
            0.0
        } else {
            let t = 1.0 - d / self.scale;
            self.rho * t * t
        }
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p.is_nan() || p <= 0.0 || p > self.rho {
            return None;
        }
        Some(self.scale * (1.0 - (p / self.rho).sqrt()))
    }

    fn name(&self) -> &'static str {
        "convex"
    }
}

/// Concave decay: `PF(d) = ρ · (1 − (d/D)²)` on `[0, D]`, zero beyond.
///
/// Mirrors the concave branch of the log-sigmoid: a flat plateau near the
/// facility followed by an accelerating drop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcavePf {
    rho: f64,
    scale: f64,
}

impl ConcavePf {
    /// Creates a concave PF with maximum probability `rho` and support
    /// radius `scale`.
    pub fn new(rho: f64, scale: f64) -> Self {
        validate(rho, scale);
        ConcavePf { rho, scale }
    }
}

impl ProbabilityFunction for ConcavePf {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        if d >= self.scale {
            0.0
        } else {
            let t = d / self.scale;
            self.rho * (1.0 - t * t)
        }
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p.is_nan() || p <= 0.0 || p > self.rho {
            return None;
        }
        Some(self.scale * (1.0 - p / self.rho).sqrt())
    }

    fn name(&self) -> &'static str {
        "concave"
    }
}

/// Linear decay: `PF(d) = ρ · (1 − d/D)` on `[0, D]`, zero beyond.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPf {
    rho: f64,
    scale: f64,
}

impl LinearPf {
    /// Creates a linear PF with maximum probability `rho` and support
    /// radius `scale`.
    pub fn new(rho: f64, scale: f64) -> Self {
        validate(rho, scale);
        LinearPf { rho, scale }
    }
}

impl ProbabilityFunction for LinearPf {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        if d >= self.scale {
            0.0
        } else {
            self.rho * (1.0 - d / self.scale)
        }
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p.is_nan() || p <= 0.0 || p > self.rho {
            return None;
        }
        Some(self.scale * (1.0 - p / self.rho))
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_pfs() -> Vec<Box<dyn ProbabilityFunction>> {
        vec![
            Box::new(LogsigPf::new(0.5, 10.0)),
            Box::new(ConvexPf::new(0.5, 10.0)),
            Box::new(ConcavePf::new(0.5, 10.0)),
            Box::new(LinearPf::new(0.5, 10.0)),
        ]
    }

    #[test]
    fn all_start_at_rho() {
        for pf in all_pfs() {
            assert!(
                (pf.prob(0.0) - 0.5).abs() < 1e-12,
                "{}: PF(0) = {}",
                pf.name(),
                pf.prob(0.0)
            );
        }
    }

    #[test]
    fn all_monotone_decreasing_and_bounded() {
        for pf in all_pfs() {
            let mut last = pf.prob(0.0);
            for i in 1..=200 {
                let d = i as f64 * 0.1;
                let p = pf.prob(d);
                assert!(p <= last + 1e-12, "{} not monotone at d={d}", pf.name());
                assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }

    #[test]
    fn inverse_round_trips_on_range() {
        for pf in all_pfs() {
            for d in [0.0, 0.5, 2.0, 5.0, 9.0] {
                let p = pf.prob(d);
                if p <= 0.0 {
                    continue;
                }
                let d2 = pf.inverse(p).unwrap();
                assert!(
                    (d - d2).abs() < 1e-9,
                    "{}: d={d} p={p} inverse={d2}",
                    pf.name()
                );
            }
        }
    }

    #[test]
    fn inverse_rejects_unattainable() {
        for pf in all_pfs() {
            assert_eq!(pf.inverse(0.6), None, "{}", pf.name());
            assert_eq!(pf.inverse(0.0), None, "{}", pf.name());
        }
    }

    #[test]
    fn bounded_support_is_zero_beyond_scale() {
        for pf in [
            Box::new(ConvexPf::new(0.5, 10.0)) as Box<dyn ProbabilityFunction>,
            Box::new(ConcavePf::new(0.5, 10.0)),
            Box::new(LinearPf::new(0.5, 10.0)),
        ] {
            assert_eq!(pf.prob(10.0), 0.0);
            assert_eq!(pf.prob(25.0), 0.0);
        }
    }

    #[test]
    fn shape_ordering_convex_below_linear_below_concave() {
        // At mid-range the convex curve lies under the chord (linear) and
        // the concave curve above it.
        let (cx, li, cc) = (
            ConvexPf::new(0.5, 10.0),
            LinearPf::new(0.5, 10.0),
            ConcavePf::new(0.5, 10.0),
        );
        for d in [2.0, 5.0, 8.0] {
            assert!(
                cx.prob(d) <= li.prob(d) && li.prob(d) <= cc.prob(d),
                "d={d}"
            );
        }
    }

    #[test]
    fn logsig_is_s_shaped_around_midpoint() {
        let pf = LogsigPf::new(0.5, 10.0);
        // Value at the midpoint is half the maximum (σ symmetric).
        let mid = pf.prob(5.0);
        assert!((mid - 0.25 / sigmoid(4.0)).abs() < 1e-12);
        // Concave before the midpoint, convex after: finite-difference
        // second derivative changes sign.
        let dd = |d: f64| pf.prob(d - 0.01) - 2.0 * pf.prob(d) + pf.prob(d + 0.01);
        assert!(dd(2.0) < 0.0, "concave early");
        assert!(dd(8.0) > 0.0, "convex late");
    }
}
