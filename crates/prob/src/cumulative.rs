//! Cumulative influence probability and the early-stopping rule.
//!
//! Definition 1: `Pr_c(O) = 1 − ∏_{i=1..n} (1 − Pr_c(p_i))` — the
//! probability that object `O` is influenced by candidate `c` at *at
//! least one* of its positions, positions being independent.
//!
//! Definition 4 introduces the *partial non-influence probability*
//! `Pr_c^{n−n'}(O) = ∏_{i=n'+1..n} (1 − Pr_c(p_i))`; Lemma 4 turns it
//! into an early-stopping rule (Strategy 2 of PINOCCHIO-VO): while
//! scanning positions, as soon as the running product of `(1 − Pr_c(p_i))`
//! drops to `≤ 1 − τ`, the object is certainly influenced and the
//! remaining positions need not be evaluated.

use crate::pf::ProbabilityFunction;
use pinocchio_geo::{DistanceMetric, Point};

/// Outcome of an early-stopping influence evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopOutcome {
    /// Whether the candidate influences the object (`Pr_c(O) ≥ τ`).
    pub influenced: bool,
    /// Number of positions whose probability was actually evaluated
    /// (`n'` of Strategy 2; equals `n` when no early exit fired).
    pub positions_evaluated: usize,
    /// The non-influence product after the last evaluated position, when
    /// the scan computed one. When the scan ran to completion this equals
    /// `∏(1 − Pr_c(p_i))`, so the exact cumulative probability is `1 −`
    /// this value; after an early exit it is only an upper bound on the
    /// full product. `None` when the verdict was reached by a method that
    /// does not track the product (e.g. [`EarlyStopOutcome::from_verdict`]).
    pub non_influence_product: Option<f64>,
}

impl EarlyStopOutcome {
    /// Wraps a verdict produced without tracking the non-influence
    /// product (used by full-scan validation paths that only need the
    /// boolean and the position count). Keeping the product out of this
    /// constructor guarantees no placeholder value can ever leak.
    pub fn from_verdict(influenced: bool, positions_evaluated: usize) -> Self {
        EarlyStopOutcome {
            influenced,
            positions_evaluated,
            non_influence_product: None,
        }
    }
}

/// Stateless evaluator for cumulative influence probabilities.
///
/// Bundles a probability function and a distance metric; all methods are
/// allocation-free scans over a position slice, in keeping with the flat
/// `A_1D` layout of Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct CumulativeProbability<P, M> {
    pf: P,
    metric: M,
}

impl<P: ProbabilityFunction, M: DistanceMetric> CumulativeProbability<P, M> {
    /// Creates an evaluator from a probability function and a metric.
    pub fn new(pf: P, metric: M) -> Self {
        CumulativeProbability { pf, metric }
    }

    /// The underlying probability function.
    pub fn pf(&self) -> &P {
        &self.pf
    }

    /// The underlying distance metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Independent influence probability of a single position
    /// (`Pr_c(p) = PF(dist(c, p))`).
    #[inline]
    pub fn position_probability(&self, candidate: &Point, position: &Point) -> f64 {
        self.pf.prob(self.metric.distance(candidate, position))
    }

    /// Exact cumulative influence probability `Pr_c(O)` (Definition 1).
    ///
    /// An empty position slice yields probability `0` (nothing to
    /// influence). The product is accumulated in linear space: factors lie
    /// in `[0, 1]`, so the only underflow mode is the product reaching
    /// subnormal zero, which correctly saturates the probability at 1.
    pub fn cumulative(&self, candidate: &Point, positions: &[Point]) -> f64 {
        let mut non_influence = 1.0_f64;
        for p in positions {
            non_influence *= 1.0 - self.position_probability(candidate, p);
        }
        1.0 - non_influence
    }

    /// Whether `Pr_c(O) ≥ τ`, computed exhaustively (used by the NA
    /// baseline and by PINOCCHIO's plain validation phase).
    #[inline]
    pub fn influences(&self, candidate: &Point, positions: &[Point], tau: f64) -> bool {
        self.cumulative(candidate, positions) >= tau
    }

    /// Influence test with the Lemma 4 early exit (Strategy 2).
    ///
    /// Scans positions in storage order, maintaining the running
    /// non-influence product; returns as soon as the product reaches
    /// `≤ 1 − τ` (object certainly influenced regardless of the remaining
    /// positions, since the omitted factors can only shrink the product).
    ///
    /// The verdict is always identical to [`Self::influences`]; only the
    /// number of evaluated positions differs. This invariant is enforced
    /// by tests and by the `pinocchio-core` instrumentation.
    pub fn influences_early_stop(
        &self,
        candidate: &Point,
        positions: &[Point],
        tau: f64,
    ) -> EarlyStopOutcome {
        self.influences_early_stop_chunked(candidate, std::iter::once(positions), tau)
    }

    /// [`Self::influences_early_stop`] over a chunked position sequence.
    ///
    /// Folds the chunks in iteration order, multiplying factors exactly
    /// as the contiguous scan does over the concatenation of the chunks
    /// — the same float operations in the same order, so verdict,
    /// evaluated count and product are **bit-identical** to the
    /// contiguous form. This is what lets the dynamic maintenance path
    /// evaluate straight out of `PositionLog`'s shared chunks while
    /// staying exactly comparable to a from-scratch solve over the
    /// flattened positions (the contiguous method delegates here, so
    /// the two cannot drift apart).
    // pinocchio-hot: per-(candidate, object) early-stop kernel of the dynamic path
    pub fn influences_early_stop_chunked<'a>(
        &self,
        candidate: &Point,
        chunks: impl IntoIterator<Item = &'a [Point]>,
        tau: f64,
    ) -> EarlyStopOutcome {
        let threshold = 1.0 - tau;
        let mut non_influence = 1.0_f64;
        let mut evaluated = 0usize;
        for chunk in chunks {
            for p in chunk {
                non_influence *= 1.0 - self.position_probability(candidate, p);
                evaluated += 1;
                if non_influence <= threshold {
                    return EarlyStopOutcome {
                        influenced: true,
                        positions_evaluated: evaluated,
                        non_influence_product: Some(non_influence),
                    };
                }
            }
        }
        EarlyStopOutcome {
            influenced: 1.0 - non_influence >= tau,
            positions_evaluated: evaluated,
            non_influence_product: Some(non_influence),
        }
    }

    /// Partial non-influence probability `Pr_c^{n−n'}(O)` of the positions
    /// with indices `n'..n` (Definition 4). `Pr_c^{n−n}(O) = 1` by
    /// convention (empty product).
    pub fn partial_non_influence(
        &self,
        candidate: &Point,
        positions: &[Point],
        n_prime: usize,
    ) -> f64 {
        assert!(n_prime <= positions.len(), "n' must not exceed n");
        positions[n_prime..]
            .iter()
            .map(|p| 1.0 - self.position_probability(candidate, p))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::PowerLawPf;
    use pinocchio_geo::Euclidean;

    /// A probability function that returns the scripted probability for
    /// call `i`, regardless of distance — handy for replaying the paper's
    /// Example 1 verbatim.
    #[derive(Debug)]
    struct Scripted {
        probs: Vec<f64>,
        next: std::sync::atomic::AtomicUsize,
    }

    impl Scripted {
        fn new(probs: Vec<f64>) -> Self {
            Scripted {
                probs,
                next: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl ProbabilityFunction for Scripted {
        fn prob(&self, _d: f64) -> f64 {
            // pinocchio-lint: allow(atomic-ordering) -- Relaxed: scripted-PF call counter read by single-threaded tests only; no cross-thread ordering to establish
            let i = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.probs[i]
        }
        fn inverse(&self, _p: f64) -> Option<f64> {
            unimplemented!("not needed")
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    fn pts(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn example1_from_the_paper() {
        // Pr_{c1}(O1) with p = 0.5, 0.1, 0.2, 0.15, 0.12 → 0.73 (2 d.p.).
        let eval =
            CumulativeProbability::new(Scripted::new(vec![0.5, 0.1, 0.2, 0.15, 0.12]), Euclidean);
        let c = Point::ORIGIN;
        let pr = eval.cumulative(&c, &pts(5));
        assert!((pr - 0.73).abs() < 0.005, "got {pr}");

        // Pr_{c1}(O2) with p = 0.25, 0.35, 0.33, 0.3, 0.38 → 0.86 (2 d.p.).
        let eval =
            CumulativeProbability::new(Scripted::new(vec![0.25, 0.35, 0.33, 0.3, 0.38]), Euclidean);
        let pr = eval.cumulative(&c, &pts(5));
        assert!((pr - 0.86).abs() < 0.005, "got {pr}");
    }

    #[test]
    fn empty_object_has_zero_probability() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        assert_eq!(eval.cumulative(&Point::ORIGIN, &[]), 0.0);
        assert!(!eval.influences(&Point::ORIGIN, &[], 0.1));
    }

    #[test]
    fn single_position_equals_pf() {
        let pf = PowerLawPf::paper_default();
        let eval = CumulativeProbability::new(pf, Euclidean);
        let c = Point::ORIGIN;
        let p = Point::new(3.0, 4.0); // distance 5
        assert!((eval.cumulative(&c, &[p]) - pf.prob(5.0)).abs() < 1e-15);
    }

    #[test]
    fn more_positions_never_decrease_probability() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let c = Point::ORIGIN;
        let all = pts(20);
        let mut last = 0.0;
        for k in 1..=all.len() {
            let pr = eval.cumulative(&c, &all[..k]);
            assert!(pr >= last - 1e-15, "k={k}: {pr} < {last}");
            last = pr;
        }
    }

    #[test]
    fn early_stop_matches_exhaustive_verdict() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let positions = pts(50);
        for tau in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            for cx in [0.0, 5.0, 25.0, 100.0] {
                let c = Point::new(cx, 2.0);
                let exact = eval.influences(&c, &positions, tau);
                let es = eval.influences_early_stop(&c, &positions, tau);
                assert_eq!(es.influenced, exact, "tau={tau} cx={cx}");
                assert!(es.positions_evaluated <= positions.len());
                if es.positions_evaluated < positions.len() {
                    assert!(es.influenced, "early exit only fires on influence");
                }
            }
        }
    }

    #[test]
    fn early_stop_saves_work_near_positions() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        // Candidate sitting on top of the first position: PF(0) = 0.9,
        // so with τ = 0.7 a single position suffices.
        let positions = pts(100);
        let es = eval.influences_early_stop(&Point::ORIGIN, &positions, 0.7);
        assert!(es.influenced);
        assert_eq!(es.positions_evaluated, 1);
    }

    #[test]
    fn chunked_scan_is_bit_identical_to_contiguous() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let positions = pts(50);
        for tau in [0.1, 0.5, 0.7, 0.99] {
            for cx in [0.0, 5.0, 25.0, 100.0] {
                let c = Point::new(cx, 2.0);
                let flat = eval.influences_early_stop(&c, &positions, tau);
                for chunk_size in [1, 3, 7, 50, 64] {
                    let chunked =
                        eval.influences_early_stop_chunked(&c, positions.chunks(chunk_size), tau);
                    assert_eq!(chunked.influenced, flat.influenced);
                    assert_eq!(chunked.positions_evaluated, flat.positions_evaluated);
                    // Bit-identical product, not approximately equal.
                    assert_eq!(
                        chunked.non_influence_product.map(f64::to_bits),
                        flat.non_influence_product.map(f64::to_bits),
                        "tau={tau} cx={cx} chunk={chunk_size}"
                    );
                }
            }
        }
        // Degenerate chunkings: empty chunk list and empty chunks.
        let empty = eval.influences_early_stop_chunked(&Point::ORIGIN, std::iter::empty(), 0.5);
        assert!(!empty.influenced);
        assert_eq!(empty.positions_evaluated, 0);
        let with_gaps = eval.influences_early_stop_chunked(
            &Point::ORIGIN,
            vec![&positions[..0], &positions[..5], &positions[5..5]],
            0.999,
        );
        assert_eq!(
            with_gaps,
            eval.influences_early_stop(&Point::ORIGIN, &positions[..5], 0.999)
        );
    }

    #[test]
    fn early_stop_product_is_present_only_when_tracked() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let es = eval.influences_early_stop(&Point::ORIGIN, &pts(5), 0.7);
        let product = es.non_influence_product.expect("scan tracks the product");
        assert!((0.0..=1.0).contains(&product));

        let wrapped = EarlyStopOutcome::from_verdict(true, 5);
        assert!(wrapped.influenced);
        assert_eq!(wrapped.positions_evaluated, 5);
        assert_eq!(wrapped.non_influence_product, None);
    }

    #[test]
    fn partial_non_influence_conventions() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let positions = pts(4);
        let c = Point::ORIGIN;
        // n' = n ⇒ empty product = 1 (Definition 4 note).
        assert_eq!(eval.partial_non_influence(&c, &positions, 4), 1.0);
        // n' = 0 ⇒ the full non-influence product.
        let full = eval.partial_non_influence(&c, &positions, 0);
        assert!((1.0 - full - eval.cumulative(&c, &positions)).abs() < 1e-15);
        // Product decomposes: full = head × tail.
        let head = eval.partial_non_influence(&c, &positions[..2], 0);
        let tail = eval.partial_non_influence(&c, &positions, 2);
        assert!((full - head * tail).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "n' must not exceed n")]
    fn partial_non_influence_bounds_checked() {
        let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
        let _ = eval.partial_non_influence(&Point::ORIGIN, &pts(2), 3);
    }
}
