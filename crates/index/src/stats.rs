//! Query instrumentation counters.

/// Counters describing the work one index query performed.
///
/// Used by the ablation benchmarks to compare index structures on equal
/// footing (nodes visited ≈ cache lines touched, entries tested ≈ distance
/// computations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Tree nodes (or grid cells) whose contents were examined.
    pub nodes_visited: usize,
    /// Leaf entries against which the query predicate was evaluated.
    pub entries_tested: usize,
    /// Entries that satisfied the predicate.
    pub matches: usize,
}

impl QueryStats {
    /// Accumulates another stats record into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.entries_tested += other.entries_tested;
        self.matches += other.matches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = QueryStats {
            nodes_visited: 1,
            entries_tested: 2,
            matches: 3,
        };
        a.absorb(QueryStats {
            nodes_visited: 10,
            entries_tested: 20,
            matches: 30,
        });
        assert_eq!(
            a,
            QueryStats {
                nodes_visited: 11,
                entries_tested: 22,
                matches: 33,
            }
        );
    }
}
