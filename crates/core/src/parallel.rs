//! Parallel solvers — an extension beyond the paper.
//!
//! The paper's future work mentions scaling to dynamic scenarios; an
//! obvious first step is exploiting cores. Two parallelisation shapes
//! are used:
//!
//! * **Object striping** ([`solve_naive`], [`solve_pinocchio`]) —
//!   influence counting is embarrassingly parallel over *objects*: each
//!   thread processes an object stripe against all candidates and
//!   produces a partial influence vector plus partial [`SolveStats`];
//!   partials are merged at the end. The pruning rules apply per-object,
//!   so PINOCCHIO stripes the same way.
//!
//! * **Work-stealing validation** ([`solve_vo`]) — PINOCCHIO-VO's
//!   Strategy 1 bound `maxminInf` is *monotone non-decreasing*, which
//!   makes it safe to share: worker threads pull candidates from a
//!   shared priority queue ordered by `(maxInf, minInf)` and publish
//!   every fully-validated influence count into one `AtomicU32` via
//!   `fetch_max`. A stale (too small) bound only costs wasted work,
//!   never a wrong verdict, so the parallel solver returns exactly the
//!   sequential answer (see the module docs in `vo.rs` and the exactness
//!   argument below).
//!
//! # Why the shared atomic bound is exact
//!
//! Let `I*` be the true maximum influence and `j*` the smallest index
//! attaining it. The bound only ever holds `max(initial minInf bounds,
//! exact counts of fully-validated candidates)`, all of which are
//! `≤ I*`. A candidate is skipped (queue cut-off) or killed
//! (mid-validation) only when its remaining potential `maxInf` is
//! *strictly below* the bound, hence strictly below `I*` — so every
//! candidate whose exact influence equals `I*` is fully validated under
//! every schedule, and the merged smallest-index tie-break returns
//! `(j*, I*)` deterministically.
//!
//! Scoped threads from `std` are used; workers own their partial state
//! and the only shared mutables are the candidate queue (mutex) and the
//! bound (atomic).

use crate::problem::PrimeLs;
use crate::result::{argmax_smallest_index, Algorithm, SolveError, SolveResult, SolveStats};
use crate::vo;
use pinocchio_prob::ProbabilityFunction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Joins a worker, re-raising its panic payload on the calling thread.
///
/// `resume_unwind` propagates the worker's original panic (message and
/// all) instead of wrapping it in a second, less informative one — the
/// solver itself never panics here, it only forwards.
pub(crate) fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Parallel NA: exhaustive counting with `threads` worker threads.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_naive<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let m = problem.candidates().len();
    let objects = problem.objects();
    let chunk = (objects.len().div_ceil(threads)).max(1);

    let partials: Vec<(Vec<u32>, SolveStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..objects.len())
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(objects.len());
                scope.spawn(move || {
                    let mut pair = problem.pair_eval();
                    let mut inf = vec![0u32; m];
                    let mut stats = SolveStats::default();
                    for k in lo..hi {
                        for (j, c) in problem.candidates().iter().enumerate() {
                            if pair.influences(c, k, false, &mut stats) {
                                inf[j] += 1;
                            }
                        }
                    }
                    (inf, stats)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });

    finish(problem, partials, Algorithm::Naive, start)
}

/// Parallel PINOCCHIO: per-object pruning and validation distributed
/// over `threads` worker threads (the candidate R-tree is shared
/// read-only). Every pruning counter is accumulated per worker and
/// merged, so the stats are identical to the sequential solver's.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_pinocchio<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let m = problem.candidates().len();

    let tree = problem.candidate_tree();
    let entries = problem.a2d().entries();
    let chunk = entries.len().div_ceil(threads);

    let partials: Vec<(Vec<u32>, SolveStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk.max(1))
            .map(|stripe| {
                scope.spawn(move || {
                    let mut pair = problem.pair_eval();
                    let mut inf = vec![0u32; m];
                    let mut stats = SolveStats::default();
                    let mut undecided: Vec<usize> = Vec::new();
                    for entry in stripe {
                        let Some(regions) = entry.regions else {
                            stats.uninfluenceable_objects += 1;
                            continue;
                        };
                        undecided.clear();
                        let mut ia_hits = 0u64;
                        let mut nib_members = 0u64;
                        tree.query_region(
                            |node| node.intersects(&regions.nib_mbr()),
                            |p| regions.in_non_influence_boundary(p),
                            &mut |p, &j| {
                                nib_members += 1;
                                if regions.in_influence_arcs(p) {
                                    ia_hits += 1;
                                    inf[j] += 1;
                                } else {
                                    undecided.push(j);
                                }
                            },
                        );
                        stats.decided_by_ia += ia_hits;
                        stats.decided_by_nib += m as u64 - nib_members;
                        for &j in &undecided {
                            if pair.influences(
                                &problem.candidates()[j],
                                entry.index,
                                false,
                                &mut stats,
                            ) {
                                inf[j] += 1;
                            }
                        }
                    }
                    (inf, stats)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });

    finish(problem, partials, Algorithm::Pinocchio, start)
}

/// Parallel PINOCCHIO-VO: the pruning phase runs sequentially (it is a
/// single R-tree sweep and a small fraction of the runtime), then
/// `threads` workers validate candidates pulled from a shared priority
/// queue ordered by `(maxInf, minInf)`, sharing one atomic `maxminInf`
/// bound — see the module docs for the exactness argument.
///
/// Returns the same `best_candidate` / `max_influence` as
/// [`vo::solve`](crate::vo::solve) with pruning, for every thread count.
/// Cost counters (`validated_pairs`, `positions_evaluated`, …) depend on
/// how fast the bound tightens and may therefore vary with the schedule,
/// but the pair accounting is always complete.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_vo<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    match try_solve_vo(problem, threads) {
        Ok(result) => result,
        // pinocchio-lint: allow(panic-path) -- ZeroThreads is asserted away above and NoValidatedCandidate is impossible for builder-constructed problems; kept panicking for signature stability
        Err(e) => panic!("parallel PIN-VO invariant violated: {e}"),
    }
}

/// Fallible form of [`solve_vo`]: returns [`SolveError::ZeroThreads`]
/// for `threads == 0` and [`SolveError::NoValidatedCandidate`] if no
/// candidate survives validation (impossible for builder-constructed
/// problems, whose candidate sets are non-empty).
pub fn try_solve_vo<P: ProbabilityFunction + Clone + Sync>(
    problem: &PrimeLs<P>,
    threads: usize,
) -> Result<SolveResult, SolveError> {
    if threads == 0 {
        return Err(SolveError::ZeroThreads);
    }
    let start = Instant::now();
    let m = problem.candidates().len();

    let prep = vo::prepare(problem, true);
    let vs_store = &prep.vs_store;
    let min_inf = &prep.min_inf;
    let max_inf = &prep.max_inf;

    // Shared candidate queue, best-first by (maxInf, minInf); smallest
    // index first among equals so the pop order mirrors the sequential
    // driver.
    let queue: Mutex<BinaryHeap<(u32, u32, Reverse<usize>)>> = Mutex::new(
        (0..m)
            .map(|j| (max_inf[j], min_inf[j], Reverse(j)))
            .collect(),
    );
    // The shared monotone bound, seeded with the best certified lower
    // bound. `fetch_max` keeps it monotone under concurrent publishes.
    let bound = AtomicU32::new(min_inf.iter().copied().max().unwrap_or(0));

    let worker_results: Vec<(SolveStats, Option<(u32, usize)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let bound = &bound;
                scope.spawn(move || {
                    let mut pair = problem.pair_eval();
                    // 1 outside the log-blocked kernel: a 1-wide tile
                    // reproduces the historical per-candidate pops and
                    // stats exactly.
                    let tile_width = pair.tile_width();
                    let mut stats = SolveStats::default();
                    let mut best: Option<(u32, usize)> = None;
                    let mut tile: Vec<vo::TileCandidate<'_>> = Vec::with_capacity(tile_width);
                    loop {
                        tile.clear();
                        let done = {
                            // The critical section only peeks/pops/clears,
                            // all of which leave the heap structurally
                            // valid, so a poisoned lock (another worker
                            // panicked mid-section) can be recovered: the
                            // panic itself still surfaces via join.
                            let mut heap = match queue.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            while tile.len() < tile_width {
                                let Some(&(top_max, _, _)) = heap.peek() else {
                                    break;
                                };
                                // ordering: Acquire pairs with the Release half of the
                                // workers' `fetch_max` publishes below, so the cut-off
                                // observes every influence count published before it; a
                                // stale (smaller) value only delays the cut-off and can
                                // never fire it early, preserving exactness.
                                if top_max < bound.load(Ordering::Acquire) {
                                    break; // cut-off: handled below once the tile drains
                                }
                                let Some((_, _, Reverse(j))) = heap.pop() else {
                                    break;
                                };
                                tile.push(vo::TileCandidate {
                                    index: j,
                                    candidate: problem.candidates()[j],
                                    vs: &vs_store[j],
                                    bounds: (min_inf[j], max_inf[j]),
                                });
                            }
                            if tile.is_empty() {
                                if let Some((_, _, Reverse(j))) = heap.pop() {
                                    // Strategy 1 cut-off: the queue is
                                    // ordered by maxInf, so the popped
                                    // candidate and everything left are
                                    // dead. Account for them once, under
                                    // the lock, and drain the heap so the
                                    // other workers stop too.
                                    stats.candidates_skipped_by_bounds += 1 + heap.len() as u64;
                                    stats.pairs_skipped_by_bounds += vs_store[j].len() as u64
                                        + heap
                                            .iter()
                                            .map(|&(_, _, Reverse(r))| vs_store[r].len() as u64)
                                            .sum::<u64>();
                                    heap.clear();
                                }
                                true
                            } else {
                                false
                            }
                        };
                        if done {
                            break;
                        }
                        vo::validate_tile(
                            &mut pair,
                            &tile,
                            true,
                            // ordering: Acquire pairs with the `fetch_max` Release
                            // publishes — mid-validation kill tests observe fresh
                            // bounds; staleness is again only a cost, never an error.
                            || bound.load(Ordering::Acquire),
                            |j, exact| {
                                // ordering: AcqRel — the Release half publishes this
                                // exact count to the other workers' Acquire loads (the
                                // happens-before edge in DESIGN.md); the Acquire half
                                // orders the read-modify-write after earlier publishes
                                // so the bound is monotone non-decreasing.
                                bound.fetch_max(exact, Ordering::AcqRel);
                                match best {
                                    Some((inf, idx))
                                        if exact < inf || (exact == inf && idx < j) => {}
                                    _ => best = Some((exact, j)),
                                }
                            },
                            &mut stats,
                        );
                    }
                    (stats, best)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });

    let mut stats = prep.stats;
    let mut best: Option<(u32, usize)> = None;
    for (partial, local_best) in worker_results {
        stats += partial;
        if let Some((inf, j)) = local_best {
            match best {
                Some((binf, bidx)) if inf < binf || (inf == binf && bidx < j) => {}
                _ => best = Some((inf, j)),
            }
        }
    }
    let (max_influence, best_candidate) = best.ok_or(SolveError::NoValidatedCandidate)?;

    Ok(SolveResult {
        algorithm: Algorithm::PinocchioVo,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: None,
        stats,
        elapsed: start.elapsed(),
    })
}

fn finish<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    partials: Vec<(Vec<u32>, SolveStats)>,
    algorithm: Algorithm,
    start: Instant,
) -> SolveResult {
    let m = problem.candidates().len();
    let mut influences = vec![0u32; m];
    let mut stats = SolveStats::default();
    for (partial, partial_stats) in partials {
        for (acc, v) in influences.iter_mut().zip(partial) {
            *acc += v;
        }
        stats += partial_stats;
    }
    let (best_candidate, max_influence) = argmax_smallest_index(&influences)
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets (BuildError::NoCandidates), so the merged influence vector is non-empty
        .expect("at least one candidate");
    SolveResult {
        algorithm,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: Some(influences),
        stats,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::A2d;
    use crate::{naive, pinocchio};
    use pinocchio_data::{GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn problem(seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(60, seed)).generate();
        let (_, candidates) = pinocchio_data::sample_candidate_group(&d, 30, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_naive_matches_sequential() {
        let p = problem(31);
        let seq = naive::solve(&p);
        for threads in [1, 2, 4, 7] {
            let par = solve_naive(&p, threads);
            assert_eq!(par.influences, seq.influences, "threads={threads}");
            assert_eq!(par.best_candidate, seq.best_candidate);
            assert_eq!(par.stats, seq.stats, "stats parity, threads={threads}");
        }
    }

    #[test]
    fn parallel_pinocchio_matches_sequential() {
        let p = problem(32);
        let seq = pinocchio::solve(&p);
        for threads in [1, 3, 8] {
            let par = solve_pinocchio(&p, threads);
            assert_eq!(par.influences, seq.influences, "threads={threads}");
            assert_eq!(par.best_candidate, seq.best_candidate);
            assert_eq!(par.stats, seq.stats, "stats parity, threads={threads}");
        }
    }

    #[test]
    fn parallel_vo_matches_sequential_vo_and_naive() {
        for seed in [32, 35, 36] {
            let p = problem(seed);
            let seq = crate::vo::solve(&p, true);
            let na = naive::solve(&p);
            for threads in [1, 2, 4, 8] {
                let par = solve_vo(&p, threads);
                assert_eq!(
                    par.best_candidate, seq.best_candidate,
                    "seed={seed} threads={threads}"
                );
                assert_eq!(
                    par.max_influence, seq.max_influence,
                    "seed={seed} threads={threads}"
                );
                assert_eq!(par.best_candidate, na.best_candidate);
                assert_eq!(par.max_influence, na.max_influence);
            }
        }
    }

    #[test]
    fn parallel_vo_single_thread_reproduces_sequential_stats() {
        // With one worker the pop order and bound updates are exactly the
        // sequential driver's, so even the cost counters must agree.
        let p = problem(33);
        let seq = crate::vo::solve(&p, true);
        let par = solve_vo(&p, 1);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn parallel_accounting_is_complete() {
        let p = problem(34);
        let a2d = A2d::build(p.objects(), p.pf(), p.tau());
        let influenceable_pairs = (a2d.influenceable() * p.candidates().len()) as u64;
        let all_pairs = (p.objects().len() * p.candidates().len()) as u64;
        for threads in [1, 3, 8] {
            let na = solve_naive(&p, threads);
            assert_eq!(
                na.stats.accounted_pairs(),
                all_pairs,
                "NA threads={threads}"
            );
            let pin = solve_pinocchio(&p, threads);
            assert_eq!(
                pin.stats.accounted_pairs(),
                influenceable_pairs,
                "PIN threads={threads}"
            );
            let vo = solve_vo(&p, threads);
            assert_eq!(
                vo.stats.accounted_pairs(),
                influenceable_pairs,
                "VO threads={threads}"
            );
        }
    }

    #[test]
    fn more_threads_than_objects_is_fine() {
        let p = problem(33);
        let par = solve_naive(&p, 500);
        let seq = naive::solve(&p);
        assert_eq!(par.influences, seq.influences);
        let vo_par = solve_vo(&p, 500);
        let vo_seq = crate::vo::solve(&p, true);
        assert_eq!(vo_par.best_candidate, vo_seq.best_candidate);
        assert_eq!(vo_par.max_influence, vo_seq.max_influence);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let p = problem(34);
        let _ = solve_naive(&p, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected_for_vo() {
        let p = problem(34);
        let _ = solve_vo(&p, 0);
    }

    #[test]
    fn try_solve_vo_reports_zero_threads_as_error() {
        let p = problem(34);
        assert_eq!(try_solve_vo(&p, 0).err(), Some(SolveError::ZeroThreads));
        assert!(try_solve_vo(&p, 2).is_ok());
    }
}
