//! Synthetic check-in dataset generators.
//!
//! The paper's datasets (Foursquare Singapore, Gowalla California) are
//! not redistributable, so the evaluation runs on synthetic equivalents
//! calibrated to every statistic the paper reports:
//!
//! | statistic | Foursquare (paper) | Gowalla (paper) |
//! |---|---|---|
//! | users | 2,321 | 10,162 |
//! | venues | 5,594 | 24,081 |
//! | check-ins | 167,231 | 381,165 |
//! | avg / min / max per user | 72 / 3 / 661 | 37 / 2 / 780 |
//!
//! plus the §4.3 geometry: the Foursquare frame spans 39.22 × 27.03 km
//! and the average object's activity MBR covers 22.51 × 14.99 km (~55 %
//! of each axis) — which is what defeats NN-style pruning and motivates
//! PINOCCHIO in the first place.
//!
//! The generative process mirrors how LBS check-ins arise:
//!
//! 1. venue hotspots are scattered over the frame; venues cluster around
//!    them (Gaussian), giving the skewed geography of Fig. 6;
//! 2. venue popularity follows a Zipf law;
//! 3. each user draws a handful of *anchor* venues (home / work /
//!    leisure) popularity-weighted across the frame — anchors far apart
//!    produce the large, heavily overlapping activity regions the paper
//!    reports;
//! 4. the user's check-in count is log-normal, clamped to the paper's
//!    min/max; each check-in goes to an anchor with high probability and
//!    to a popularity-weighted random venue otherwise.
//!
//! Everything is driven by a single `u64` seed through a deterministic
//! RNG, so datasets are exactly reproducible across runs and platforms.

use crate::dataset::{Dataset, Venue};
use crate::object::MovingObject;
use pinocchio_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic check-in generator.
///
/// Use [`GeneratorConfig::foursquare_like`] / [`GeneratorConfig::gowalla_like`]
/// for the paper-calibrated settings, or [`GeneratorConfig::small`] for a
/// fast test-sized world.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Dataset name recorded in the output.
    pub name: String,
    /// Number of users (moving objects).
    pub n_users: usize,
    /// Number of venues (check-in locations / candidate pool).
    pub n_venues: usize,
    /// Frame width (km).
    pub frame_width_km: f64,
    /// Frame height (km).
    pub frame_height_km: f64,
    /// Minimum check-ins per user (inclusive clamp).
    pub checkins_min: usize,
    /// Maximum check-ins per user (inclusive clamp).
    pub checkins_max: usize,
    /// Target mean check-ins per user (log-normal calibration).
    pub checkins_mean: f64,
    /// Log-normal shape parameter σ of the check-in count distribution.
    pub checkins_log_sigma: f64,
    /// Number of venue hotspots.
    pub n_hotspots: usize,
    /// Zipf exponent of hotspot mass (0 = equally busy hotspots; higher
    /// values concentrate venues and users in a few dominant centres).
    pub hotspot_skew: f64,
    /// Hotspot spread (km, Gaussian σ).
    pub hotspot_sigma_km: f64,
    /// Minimum *personal* anchors (home/work: uniformly chosen venues)
    /// per user.
    pub personal_anchors_min: usize,
    /// Maximum personal anchors per user.
    pub personal_anchors_max: usize,
    /// Minimum *social* anchors (popularity-weighted venues) per user.
    pub social_anchors_min: usize,
    /// Maximum social anchors per user.
    pub social_anchors_max: usize,
    /// Probability a check-in happens at a personal anchor.
    pub p_personal_checkin: f64,
    /// Probability a check-in happens at a social anchor (the remainder
    /// is popularity-weighted exploration).
    pub p_social_checkin: f64,
    /// Zipf exponent of venue popularity.
    pub popularity_exponent: f64,
    /// Standard deviation (km) of the Gaussian jitter added to each
    /// check-in position. Published check-in coordinates carry venue-pin
    /// and GPS noise of this order; a value of zero gives venue-exact
    /// positions.
    pub position_jitter_km: f64,
    /// Gravity-model exponent: a user's non-personal check-ins land in
    /// hotspot `h` with probability ∝ `popularity(h) · (1 + dist(home,
    /// h))^(−gravity_exponent)` — the distance-decay of Liu et al. (the
    /// paper's own PF citation), applied at hotspot granularity.
    pub gravity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// The Foursquare-Singapore-calibrated configuration.
    pub fn foursquare_like() -> Self {
        GeneratorConfig {
            name: "foursquare-like".into(),
            n_users: 2_321,
            n_venues: 5_594,
            frame_width_km: 39.22,
            frame_height_km: 27.03,
            checkins_min: 3,
            checkins_max: 661,
            checkins_mean: 72.0,
            checkins_log_sigma: 2.0,
            n_hotspots: 12,
            hotspot_skew: 0.3,
            hotspot_sigma_km: 1.5,
            personal_anchors_min: 1,
            personal_anchors_max: 3,
            social_anchors_min: 2,
            social_anchors_max: 5,
            p_personal_checkin: 0.5,
            p_social_checkin: 0.3,
            popularity_exponent: 0.8,
            position_jitter_km: 0.15,
            gravity_exponent: 1.2,
            seed: 0x4653_5153, // "FSQS"
        }
    }

    /// The Gowalla-California-calibrated configuration.
    ///
    /// California check-ins spread over a much larger, sparser frame than
    /// Singapore's; relative to `minMaxRadius`, objects' activity regions
    /// are therefore much larger, which is what flips the IA/NIB pruning
    /// balance between the two datasets in Fig. 10.
    pub fn gowalla_like() -> Self {
        GeneratorConfig {
            name: "gowalla-like".into(),
            n_users: 10_162,
            n_venues: 24_081,
            frame_width_km: 130.0,
            frame_height_km: 95.0,
            checkins_min: 2,
            checkins_max: 780,
            checkins_mean: 37.0,
            checkins_log_sigma: 2.0,
            n_hotspots: 20,
            hotspot_skew: 1.5,
            hotspot_sigma_km: 3.5,
            personal_anchors_min: 1,
            personal_anchors_max: 3,
            social_anchors_min: 2,
            social_anchors_max: 5,
            p_personal_checkin: 0.5,
            p_social_checkin: 0.3,
            popularity_exponent: 0.8,
            position_jitter_km: 0.15,
            gravity_exponent: 1.2,
            seed: 0x474F_574C, // "GOWL"
        }
    }

    /// A fast, small configuration for tests and examples: `scale` users
    /// (default world ≈ 200 users / 500 venues at `scale = 200`).
    pub fn small(scale: usize, seed: u64) -> Self {
        GeneratorConfig {
            name: format!("small-{scale}"),
            n_users: scale,
            n_venues: (scale * 5 / 2).max(10),
            frame_width_km: 40.0,
            frame_height_km: 28.0,
            checkins_min: 3,
            checkins_max: 200,
            checkins_mean: 25.0,
            checkins_log_sigma: 1.8,
            n_hotspots: 8,
            hotspot_skew: 0.3,
            hotspot_sigma_km: 1.5,
            personal_anchors_min: 1,
            personal_anchors_max: 3,
            social_anchors_min: 2,
            social_anchors_max: 4,
            p_personal_checkin: 0.55,
            p_social_checkin: 0.3,
            popularity_exponent: 0.8,
            position_jitter_km: 0.15,
            gravity_exponent: 1.2,
            seed,
        }
    }

    /// Returns a copy with a different seed (for multi-trial experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.n_users > 0, "need at least one user");
        assert!(self.n_venues > 1, "need at least two venues");
        assert!(
            self.frame_width_km > 0.0 && self.frame_height_km > 0.0,
            "frame must have positive extent"
        );
        assert!(
            self.checkins_min >= 1 && self.checkins_min <= self.checkins_max,
            "invalid check-in clamp [{}, {}]",
            self.checkins_min,
            self.checkins_max
        );
        assert!(self.checkins_mean >= self.checkins_min as f64);
        assert!(self.n_hotspots > 0);
        assert!(
            self.personal_anchors_min >= 1
                && self.personal_anchors_min <= self.personal_anchors_max,
            "invalid personal anchor range"
        );
        assert!(
            self.social_anchors_min <= self.social_anchors_max,
            "invalid social anchor range"
        );
        assert!(
            self.p_personal_checkin >= 0.0
                && self.p_social_checkin >= 0.0
                && self.p_personal_checkin + self.p_social_checkin <= 1.0,
            "check-in mixture probabilities must sum to at most 1"
        );
        assert!(self.popularity_exponent >= 0.0);
        assert!(self.gravity_exponent >= 0.0);
        assert!(self.hotspot_skew >= 0.0);
        assert!(self.position_jitter_km >= 0.0);
    }
}

/// The synthetic check-in generator. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: GeneratorConfig,
}

impl SyntheticGenerator {
    /// Creates a generator; panics on inconsistent configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        config.validate();
        SyntheticGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the full dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // 1. Hotspots, kept away from the frame edge so venue clusters
        //    are not half-truncated.
        let margin_x = cfg.frame_width_km * 0.08;
        let margin_y = cfg.frame_height_km * 0.08;
        let hotspots: Vec<Point> = (0..cfg.n_hotspots)
            .map(|_| {
                Point::new(
                    rng.gen_range(margin_x..cfg.frame_width_km - margin_x),
                    rng.gen_range(margin_y..cfg.frame_height_km - margin_y),
                )
            })
            .collect();
        // Hotspot weights (Zipf over hotspots; skew configurable).
        let hotspot_cdf = zipf_cdf(cfg.n_hotspots, cfg.hotspot_skew);

        // 2. Venues clustered around hotspots (hotspot index retained for
        //    the gravity model below).
        let mut venue_hotspot: Vec<usize> = Vec::with_capacity(cfg.n_venues);
        let venue_positions: Vec<Point> = (0..cfg.n_venues)
            .map(|_| {
                let hi = sample_cdf(&hotspot_cdf, &mut rng);
                venue_hotspot.push(hi);
                let h = hotspots[hi];
                let (gx, gy) = gaussian_pair(&mut rng);
                Point::new(
                    (h.x + gx * cfg.hotspot_sigma_km).clamp(0.0, cfg.frame_width_km),
                    (h.y + gy * cfg.hotspot_sigma_km).clamp(0.0, cfg.frame_height_km),
                )
            })
            .collect();
        // Venue popularity: Zipf over a random permutation so popularity
        // is independent of generation order / hotspot.
        let mut pop_rank: Vec<usize> = (0..cfg.n_venues).collect();
        shuffle(&mut pop_rank, &mut rng);
        // popularity of venue v = 1 / (rank(v)+1)^s.
        let mut popularity = vec![0.0; cfg.n_venues];
        for (rank, &v) in pop_rank.iter().enumerate() {
            popularity[v] = 1.0 / ((rank + 1) as f64).powf(cfg.popularity_exponent);
        }
        // Per-hotspot venue lists, popularity CDF within each hotspot,
        // and each hotspot's total popularity mass.
        let mut hotspot_venues: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_hotspots];
        for (v, &h) in venue_hotspot.iter().enumerate() {
            hotspot_venues[h].push(v);
        }
        let hotspot_mass: Vec<f64> = hotspot_venues
            .iter()
            .map(|vs| vs.iter().map(|&v| popularity[v]).sum::<f64>())
            .collect();
        let hotspot_venue_cdfs: Vec<Vec<f64>> = hotspot_venues
            .iter()
            .map(|vs| {
                if vs.is_empty() {
                    Vec::new()
                } else {
                    cdf_from_weights(&vs.iter().map(|&v| popularity[v]).collect::<Vec<_>>())
                }
            })
            .collect();

        // 3 & 4. Users and their check-ins.
        // The count distribution is a log-normal clamped to the paper's
        // [min, max]; the clamp shifts the mean, so μ is calibrated
        // numerically such that E[clamp(exp(μ+σZ))] = checkins_mean.
        let sigma = cfg.checkins_log_sigma;
        let mu = calibrate_lognormal_mu(
            cfg.checkins_mean,
            sigma,
            cfg.checkins_min as f64,
            cfg.checkins_max as f64,
        );

        let mut checkin_counts: Vec<u64> = vec![0; cfg.n_venues];
        let mut visitor_flags: Vec<u64> = vec![u64::MAX; cfg.n_venues]; // last visiting user
        let mut distinct_visitors: Vec<u64> = vec![0; cfg.n_venues];

        let objects: Vec<MovingObject> = (0..cfg.n_users)
            .map(|uid| {
                // Personal anchors (home/work/gym): the home venue is a
                // uniformly random venue — globally unpopular but
                // dominating this user's profile — and the remaining
                // personal anchors come from the *same hotspot*, so the
                // user's probability mass concentrates in one
                // neighbourhood even though occasional trips (below)
                // inflate the activity MBR across the frame.
                let n_personal = rng.gen_range(cfg.personal_anchors_min..=cfg.personal_anchors_max);
                let home_venue = rng.gen_range(0..cfg.n_venues);
                let neighbourhood = &hotspot_venues[venue_hotspot[home_venue]];
                let personal: Vec<usize> = std::iter::once(home_venue)
                    .chain(
                        (1..n_personal)
                            .map(|_| neighbourhood[rng.gen_range(0..neighbourhood.len())]),
                    )
                    .collect();
                // Gravity model: the user's non-personal activity lands in
                // hotspot h with probability ∝ mass(h)·(1+dist(home,h))^(−γ).
                let home = venue_positions[personal[0]];
                let gravity_cdf = {
                    let weights: Vec<f64> = hotspots
                        .iter()
                        .zip(&hotspot_mass)
                        .map(|(h, &mass)| {
                            mass * (1.0 + home.euclidean(h)).powf(-cfg.gravity_exponent)
                        })
                        .collect();
                    cdf_from_weights(&weights)
                };
                let gravity_venue = |rng: &mut StdRng| -> usize {
                    // Re-draw on (rare) empty hotspots.
                    loop {
                        let h = sample_cdf(&gravity_cdf, rng);
                        if !hotspot_venues[h].is_empty() {
                            let i = sample_cdf(&hotspot_venue_cdfs[h], rng);
                            return hotspot_venues[h][i];
                        }
                    }
                };
                // Social anchors: popularity- and distance-weighted venues
                // the user frequents alongside everyone else.
                let n_social = rng.gen_range(cfg.social_anchors_min..=cfg.social_anchors_max);
                let social: Vec<usize> = (0..n_social).map(|_| gravity_venue(&mut rng)).collect();
                // Zipf preference within each anchor class.
                let personal_cdf = zipf_cdf(n_personal, 0.7);
                let social_cdf = if n_social > 0 {
                    zipf_cdf(n_social, 0.7)
                } else {
                    Vec::new()
                };

                let (g, _) = gaussian_pair(&mut rng);
                #[allow(clippy::cast_possible_truncation)]
                // clamped into [checkins_min, checkins_max] in the float domain
                let n = (mu + sigma * g)
                    .exp()
                    .round()
                    .clamp(cfg.checkins_min as f64, cfg.checkins_max as f64)
                    as usize;

                let positions: Vec<Point> = (0..n)
                    .map(|_| {
                        let roll: f64 = rng.gen();
                        let v = if roll < cfg.p_personal_checkin {
                            personal[sample_cdf(&personal_cdf, &mut rng)]
                        } else if roll < cfg.p_personal_checkin + cfg.p_social_checkin
                            && n_social > 0
                        {
                            social[sample_cdf(&social_cdf, &mut rng)]
                        } else {
                            gravity_venue(&mut rng)
                        };
                        checkin_counts[v] += 1;
                        if visitor_flags[v] != uid as u64 {
                            visitor_flags[v] = uid as u64;
                            distinct_visitors[v] += 1;
                        }
                        let base = venue_positions[v];
                        if cfg.position_jitter_km > 0.0 {
                            let (jx, jy) = gaussian_pair(&mut rng);
                            Point::new(
                                (base.x + jx * cfg.position_jitter_km)
                                    .clamp(0.0, cfg.frame_width_km),
                                (base.y + jy * cfg.position_jitter_km)
                                    .clamp(0.0, cfg.frame_height_km),
                            )
                        } else {
                            base
                        }
                    })
                    .collect();
                MovingObject::new(uid as u64, positions)
            })
            .collect();

        let venues: Vec<Venue> = venue_positions
            .into_iter()
            .enumerate()
            .map(|(v, position)| Venue {
                position,
                checkins: checkin_counts[v],
                distinct_visitors: distinct_visitors[v],
            })
            .collect();

        Dataset::new(cfg.name.clone(), objects, venues)
    }
}

/// Expected value of `clamp(exp(μ + σZ), lo, hi)` for standard normal
/// `Z`, via midpoint integration over `z ∈ [−8, 8]`.
fn clamped_lognormal_mean(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    let steps = 2000;
    let (z_lo, z_hi) = (-8.0f64, 8.0f64);
    let dz = (z_hi - z_lo) / steps as f64;
    let mut acc = 0.0;
    for i in 0..steps {
        let z = z_lo + (i as f64 + 0.5) * dz;
        let density = (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        acc += (mu + sigma * z).exp().clamp(lo, hi) * density * dz;
    }
    acc
}

/// Solves for the log-normal location μ whose *clamped* mean equals
/// `target` (bisection; the clamped mean is strictly increasing in μ).
///
/// # Panics
/// Panics when the target is unattainable (outside `(lo, hi)`).
fn calibrate_lognormal_mu(target: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    assert!(
        target > lo && target < hi,
        "target mean {target} outside the clamp ({lo}, {hi})"
    );
    let (mut a, mut b) = (lo.ln() - 5.0, hi.ln() + 5.0);
    for _ in 0..80 {
        let mid = (a + b) / 2.0;
        if clamped_lognormal_mean(mid, sigma, lo, hi) < target {
            a = mid;
        } else {
            b = mid;
        }
    }
    (a + b) / 2.0
}

/// One pair of independent standard normals (Box–Muller).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    // Avoid u = 0 exactly (log of zero).
    let u = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let v: f64 = rng.gen();
    let r = (-2.0 * u.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * v;
    (r * theta.cos(), r * theta.sin())
}

/// Cumulative distribution over `1/(i+1)^s`, `i = 0..n`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    cdf_from_weights(&weights)
}

fn cdf_from_weights(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Samples an index from a CDF with one uniform draw (binary search).
fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Fisher–Yates shuffle (kept local to avoid the `rand` `SliceRandom`
/// trait import spreading through the crate).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        SyntheticGenerator::new(GeneratorConfig::small(150, 99)).generate()
    }

    #[test]
    fn respects_counts_and_clamps() {
        let cfg = GeneratorConfig::small(150, 99);
        let d = small();
        assert_eq!(d.objects().len(), cfg.n_users);
        assert_eq!(d.venues().len(), cfg.n_venues);
        for o in d.objects() {
            assert!(o.position_count() >= cfg.checkins_min);
            assert!(o.position_count() <= cfg.checkins_max);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.total_checkins(), b.total_checkins());
        assert_eq!(a.objects()[7].positions(), b.objects()[7].positions());
        let c = SyntheticGenerator::new(GeneratorConfig::small(150, 100)).generate();
        assert_ne!(
            a.objects()[7].positions(),
            c.objects()[7].positions(),
            "different seed should differ"
        );
    }

    #[test]
    fn mean_checkins_near_target() {
        let d = small();
        let mean = d.total_checkins() as f64 / d.objects().len() as f64;
        let target = GeneratorConfig::small(150, 99).checkins_mean;
        assert!(
            (mean - target).abs() / target < 0.35,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn ground_truth_is_consistent() {
        let d = small();
        let total_venue_checkins: u64 = d.venues().iter().map(|v| v.checkins).sum();
        assert_eq!(total_venue_checkins as usize, d.total_checkins());
        for v in d.venues() {
            assert!(v.distinct_visitors <= v.checkins);
        }
        // Sum of distinct visitors ≥ number of users (every user visited
        // at least one venue).
        let total_visits: u64 = d.venues().iter().map(|v| v.distinct_visitors).sum();
        assert!(total_visits as usize >= d.objects().len());
    }

    #[test]
    fn positions_lie_near_venues() {
        // Check-ins happen *at* venues up to pin/GPS jitter; every
        // position must sit within a few jitter sigmas of some venue.
        let cfg = GeneratorConfig::small(150, 99);
        let d = small();
        let tree: pinocchio_geo::Mbr = d.frame();
        let _ = tree;
        for o in d.objects().iter().take(10) {
            for p in o.positions() {
                let nearest = d
                    .venues()
                    .iter()
                    .map(|v| v.position.euclidean(p))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    nearest <= 6.0 * cfg.position_jitter_km + 1e-9,
                    "position {p} is {nearest} km from any venue"
                );
            }
        }
    }

    #[test]
    fn zero_jitter_positions_lie_exactly_on_venues() {
        let mut cfg = GeneratorConfig::small(60, 99);
        cfg.position_jitter_km = 0.0;
        let d = SyntheticGenerator::new(cfg).generate();
        let venue_set: std::collections::HashSet<(u64, u64)> = d
            .venues()
            .iter()
            .map(|v| (v.position.x.to_bits(), v.position.y.to_bits()))
            .collect();
        for o in d.objects().iter().take(20) {
            for p in o.positions() {
                assert!(venue_set.contains(&(p.x.to_bits(), p.y.to_bits())));
            }
        }
    }

    #[test]
    fn activity_regions_overlap_heavily() {
        // The paper: objects cover ~55 % of each axis on average. Accept a
        // generous band — the qualitative property (heavy overlap, which
        // defeats NN pruning) is what matters.
        let d = small();
        let frame = d.frame();
        let (mut wsum, mut hsum) = (0.0, 0.0);
        for o in d.objects() {
            let m = o.mbr();
            wsum += m.width() / frame.width();
            hsum += m.height() / frame.height();
        }
        let n = d.objects().len() as f64;
        let (wavg, havg) = (wsum / n, hsum / n);
        // The paper reports ~55 % average coverage; with the heavier
        // (more realistic) check-in count skew the average sits lower
        // because the many light users have compact regions — the
        // qualitative property (typical objects spanning a third or more
        // of the frame, defeating NN pruning) is what matters here.
        assert!(
            (0.2..0.8).contains(&wavg),
            "avg x-coverage {wavg} outside plausible band"
        );
        assert!(
            (0.2..0.8).contains(&havg),
            "avg y-coverage {havg} outside plausible band"
        );
    }

    #[test]
    fn checkin_distribution_is_skewed() {
        let d = small();
        let mut counts: Vec<usize> = d
            .objects()
            .iter()
            .map(MovingObject::position_count)
            .collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2] as f64;
        let mean = d.total_checkins() as f64 / counts.len() as f64;
        assert!(
            mean > median,
            "log-normal check-ins should be right-skewed (mean {mean} ≤ median {median})"
        );
    }

    #[test]
    fn venue_popularity_is_skewed() {
        let d = small();
        let mut checkins: Vec<u64> = d.venues().iter().map(|v| v.checkins).collect();
        checkins.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = checkins.iter().sum();
        let top_decile: u64 = checkins[..checkins.len() / 10].iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.3,
            "top 10% venues should hold a large check-in share"
        );
    }

    #[test]
    fn frame_respected() {
        let cfg = GeneratorConfig::small(100, 5);
        let d = SyntheticGenerator::new(cfg.clone()).generate();
        let f = d.frame();
        assert!(f.lo().x >= 0.0 && f.lo().y >= 0.0);
        assert!(f.hi().x <= cfg.frame_width_km && f.hi().y <= cfg.frame_height_km);
    }

    #[test]
    #[should_panic(expected = "personal anchor range")]
    fn invalid_config_rejected() {
        let mut cfg = GeneratorConfig::small(10, 1);
        cfg.personal_anchors_min = 5;
        cfg.personal_anchors_max = 2;
        let _ = SyntheticGenerator::new(cfg);
    }

    #[test]
    fn lognormal_calibration_hits_clamped_mean() {
        for (target, sigma, lo, hi) in [
            (72.0, 2.0, 3.0, 661.0),
            (37.0, 2.0, 2.0, 780.0),
            (40.0, 1.6, 3.0, 200.0),
        ] {
            let mu = calibrate_lognormal_mu(target, sigma, lo, hi);
            let mean = clamped_lognormal_mean(mu, sigma, lo, hi);
            assert!(
                (mean - target).abs() / target < 1e-3,
                "target {target}: calibrated mean {mean}"
            );
        }
    }

    #[test]
    fn generated_mean_checkins_match_paper_target() {
        // Full-sized check of the calibration through the whole pipeline
        // would be slow; a 500-user world already shows the corrected
        // mean (sampling error ~±15 %).
        let mut cfg = GeneratorConfig::foursquare_like();
        cfg.n_users = 500;
        cfg.n_venues = 1200;
        let d = SyntheticGenerator::new(cfg).generate();
        let mean = d.total_checkins() as f64 / d.objects().len() as f64;
        assert!(
            (mean - 72.0).abs() / 72.0 < 0.25,
            "mean check-ins {mean}, want ≈ 72"
        );
    }

    #[test]
    fn paper_configs_are_valid() {
        GeneratorConfig::foursquare_like().validate();
        GeneratorConfig::gowalla_like().validate();
    }
}
