//! The five concurrency/resource rules built on the function-span model.
//!
//! Three are per-file (`condvar-discipline`, `bounded-io`,
//! `cast-truncation`); two need the whole workspace (`lock-ordering`
//! builds a per-crate nested-acquisition graph, `hot-path-alloc`
//! propagates allocation facts one call level). Soundness/precision
//! tradeoffs for each are documented in DESIGN.md §14; all five are
//! deny-by-default and suppressable with a justified
//! `// pinocchio-lint: allow(<rule>) -- <why>`.

use crate::diag::Diagnostic;
use crate::span::{FileAnalysis, FnSpan};
use std::collections::{BTreeMap, BTreeSet};

/// The crate a repo-relative path belongs to; the facade `src/` tree is
/// its own scope.
fn crate_key(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("src")
        .to_string()
}

/// Whole files that are test code: integration tests and benches.
fn is_test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/")
}

/// Runs the per-file span rules against one analyzed file.
pub fn check_file_spans(analysis: &FileAnalysis, rules: &[&'static str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            "condvar-discipline" => condvar_discipline(analysis, &mut out),
            "bounded-io" => bounded_io(analysis, &mut out),
            "cast-truncation" => cast_truncation(analysis, &mut out),
            _ => {}
        }
    }
    out
}

/// Runs the workspace-level span rules against every analyzed file.
pub fn check_workspace(analyses: &[FileAnalysis], rules: &[&'static str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if rules.contains(&"lock-ordering") {
        lock_ordering(analyses, &mut out);
    }
    if rules.contains(&"hot-path-alloc") {
        hot_path_alloc(analyses, &mut out);
    }
    out
}

// ---- condvar-discipline ------------------------------------------------

fn condvar_discipline(analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if is_test_file(&analysis.source.path) {
        return;
    }
    for f in analysis.fns.iter().filter(|f| !f.in_test) {
        for w in &f.waits {
            // `wait_while` re-checks the predicate internally; only the
            // consumption half of the discipline applies to it.
            if !w.in_loop && w.method != "wait_while" {
                out.push(
                    Diagnostic::deny(
                        "condvar-discipline",
                        &analysis.source.path,
                        w.line,
                        format!(
                            "`Condvar::{}` outside a predicate-rechecking loop in `{}` \
                             (spurious wakeups make a bare wait incorrect)",
                            w.method, f.name
                        ),
                    )
                    .with_suggestion(
                        "wrap the wait in `loop {{ if <predicate> {{ break; }} guard = cv.wait(guard)…; }}` \
                         or use `wait_while`",
                    ),
                );
            }
            if !w.consumed {
                out.push(
                    Diagnostic::deny(
                        "condvar-discipline",
                        &analysis.source.path,
                        w.line,
                        format!(
                            "`Condvar::{}` result discarded in `{}` — the reacquired guard \
                             must replace the old one",
                            w.method, f.name
                        ),
                    )
                    .with_suggestion("reassign the returned guard: `guard = cv.wait(guard)….0`"),
                );
            }
        }
    }
}

// ---- bounded-io --------------------------------------------------------

/// Paths whose readers may be fed by the network (or by files of
/// unbounded size): the serve crate, the load generator, the facade CLI.
fn in_io_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path.starts_with("crates/bench/src/")
        || path.starts_with("src/")
}

/// Growth calls that extend a `Vec`/`String` without an intrinsic bound.
const GROWTH_TOKENS: [&str; 3] = [".extend_from_slice(", ".push_str(", ".extend("];

/// Whether a loop body line caps a growable buffer before growing it.
fn is_cap_check(code: &str) -> bool {
    code.contains(".len() >") || code.contains(".len() + ") && code.contains('>')
}

fn bounded_io(analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let path = &analysis.source.path;
    if !in_io_scope(path) || is_test_file(path) {
        return;
    }
    for (idx, line) in analysis.source.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = &line.code;
        for method in [".read_to_end(", ".read_to_string("] {
            if code.contains(method) {
                let name = method.trim_matches(|c| c == '.' || c == '(');
                out.push(
                    Diagnostic::deny(
                        "bounded-io",
                        path,
                        lineno,
                        format!("`{name}` reads without a size bound"),
                    )
                    .with_suggestion(
                        "read through a `read_bounded_*` helper with an explicit byte cap \
                         (see `serve::server::read_bounded_line`)",
                    ),
                );
            }
        }
        if code.contains(".read_line(") {
            let approved = analysis
                .fn_at(lineno)
                .is_some_and(|f| f.name.starts_with("read_bounded"));
            if !approved {
                out.push(
                    Diagnostic::deny(
                        "bounded-io",
                        path,
                        lineno,
                        "`read_line` grows the buffer until a newline arrives — a \
                         newline-free peer holds memory hostage"
                            .to_string(),
                    )
                    .with_suggestion(
                        "use a `read_bounded_*` helper with an explicit byte cap \
                         (see `serve::server::read_bounded_line`)",
                    ),
                );
            }
        }
    }
    // Growth inside reader-fed loops must be capped inside that loop.
    for f in analysis.fns.iter().filter(|f| !f.in_test) {
        if f.name.starts_with("read_bounded") {
            continue; // the approved helpers are audited by review + tests
        }
        for &(start, end) in &f.loops {
            let body = &analysis.source.lines[start - 1..end];
            let reads = body
                .iter()
                .any(|l| l.code.contains(".fill_buf(") || l.code.contains(".read("));
            if !reads {
                continue;
            }
            let capped = body.iter().any(|l| is_cap_check(&l.code));
            if capped {
                continue;
            }
            for (off, l) in body.iter().enumerate() {
                for token in GROWTH_TOKENS {
                    if l.code.contains(token) {
                        let name = token.trim_matches(|c| c == '.' || c == '(');
                        out.push(
                            Diagnostic::deny(
                                "bounded-io",
                                path,
                                start + off,
                                format!(
                                    "`{name}` grows a buffer inside a reader-fed loop in `{}` \
                                     with no length cap in the loop body",
                                    f.name
                                ),
                            )
                            .with_suggestion(
                                "check `buf.len()` against an explicit cap before growing, \
                                 or route through a `read_bounded_*` helper",
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---- cast-truncation ---------------------------------------------------

/// Cast targets that can truncate from any wider source. The workspace
/// targets 64-bit platforms (documented in DESIGN.md §14), so
/// `usize ↔ u64` and `u32 → usize` are treated as lossless and only the
/// genuinely narrow targets are in this set. `isize` is here because the
/// workspace's only motive for it is indexing math on values that start
/// life as `f64`.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32", "isize"];

/// Wide integer targets: lossy only when the source is a float, which
/// token-level analysis can see when a rounding adapter sits directly
/// before the cast.
const WIDE_INT_TARGETS: [&str; 5] = ["u64", "i64", "u128", "i128", "usize"];

const ROUNDING_SUFFIXES: [&str; 4] = [".floor()", ".ceil()", ".round()", ".trunc()"];

fn cast_truncation(analysis: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let path = &analysis.source.path;
    if is_test_file(path) {
        return;
    }
    for (idx, line) in analysis.source.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue; // `use x as y` renames, not casts
        }
        let mut search = 0usize;
        while let Some(rel) = code[search..].find(" as ") {
            let at = search + rel;
            search = at + 4;
            let target: String = code[at + 4..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let before = code[..at].trim_end();
            if NARROW_TARGETS.contains(&target.as_str()) {
                out.push(
                    Diagnostic::deny(
                        "cast-truncation",
                        path,
                        idx + 1,
                        format!("`as {target}` silently truncates out-of-range values"),
                    )
                    .with_suggestion(format!(
                        "use `{target}::try_from(x)` with an explicit policy for the \
                         out-of-range case, or justify the bound with a suppression"
                    )),
                );
            } else if WIDE_INT_TARGETS.contains(&target.as_str())
                && ROUNDING_SUFFIXES.iter().any(|s| before.ends_with(s))
            {
                out.push(
                    Diagnostic::deny(
                        "cast-truncation",
                        path,
                        idx + 1,
                        format!(
                            "float rounded then cast `as {target}` saturates silently on \
                             out-of-range values"
                        ),
                    )
                    .with_suggestion(
                        "bound the float before casting (clamp in the float domain) or \
                         justify the range with a suppression",
                    ),
                );
            }
        }
    }
}

// ---- lock-ordering -----------------------------------------------------

/// A nested-acquisition edge: `held` was held while `acquired` was
/// taken, at `file:line` inside `in_fn` (possibly via a call into
/// `via_fn`).
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
    in_fn: String,
    via: Option<String>,
}

fn lock_ordering(analyses: &[FileAnalysis], out: &mut Vec<Diagnostic>) {
    // Group files per crate: lock names are only comparable within one
    // crate (two crates may both have a lock field called `state`).
    let mut by_crate: BTreeMap<String, Vec<&FileAnalysis>> = BTreeMap::new();
    for a in analyses {
        if is_test_file(&a.source.path) {
            continue;
        }
        by_crate
            .entry(crate_key(&a.source.path))
            .or_default()
            .push(a);
    }
    for files in by_crate.values() {
        let resolver = Resolver::build(files);
        let summaries = lock_summaries(&resolver);
        let mut edges: Vec<LockEdge> = Vec::new();
        for a in files {
            for f in a.fns.iter().filter(|f| !f.in_test) {
                collect_edges(a, f, &resolver, &summaries, &mut edges);
            }
        }
        // Self-deadlock: the same lock re-acquired while held.
        for e in &edges {
            if e.held == e.acquired {
                let via = e
                    .via
                    .as_ref()
                    .map(|v| format!(" via call to `{v}`"))
                    .unwrap_or_default();
                out.push(
                    Diagnostic::deny(
                        "lock-ordering",
                        &e.file,
                        e.line,
                        format!(
                            "lock `{}` re-acquired while already held in `{}`{via} — \
                             self-deadlock on std::sync::Mutex",
                            e.held, e.in_fn
                        ),
                    )
                    .with_suggestion("drop the guard before the nested acquisition"),
                );
            }
        }
        // Cycles: a → b recorded somewhere, and b reaches a elsewhere.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            if e.held != e.acquired {
                adj.entry(e.held.as_str())
                    .or_default()
                    .insert(e.acquired.as_str());
            }
        }
        let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
        for e in &edges {
            if e.held == e.acquired {
                continue;
            }
            if reaches(&adj, &e.acquired, &e.held)
                && reported.insert((e.held.clone(), e.acquired.clone()))
            {
                let via = e
                    .via
                    .as_ref()
                    .map(|v| format!(" via call to `{v}`"))
                    .unwrap_or_default();
                out.push(
                    Diagnostic::deny(
                        "lock-ordering",
                        &e.file,
                        e.line,
                        format!(
                            "lock-order cycle: `{}` is held while acquiring `{}` in `{}`{via}, \
                             but elsewhere `{}` is (transitively) held while acquiring `{}`",
                            e.held, e.acquired, e.in_fn, e.acquired, e.held
                        ),
                    )
                    .with_suggestion(
                        "pick one global acquisition order for these locks and restructure \
                         the losing site (usually: copy what you need out, drop, then lock)",
                    ),
                );
            }
        }
    }
}

/// Whether `to` is reachable from `from` in the acquisition graph.
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Transitive lock summaries per uniquely named crate-local function:
/// everything the function may acquire directly or through further
/// uniquely resolved crate-local calls. The fixed point is what makes
/// the repo's own guard-wrapper idiom visible (`depth()` → `lock()` →
/// the `state` mutex is two hops).
fn lock_summaries<'a>(resolver: &Resolver<'a>) -> BTreeMap<&'a str, BTreeSet<String>> {
    let mut summary: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for (&name, fns) in &resolver.by_name {
        if let [one] = fns.as_slice() {
            summary.insert(name, one.locks.iter().map(|l| l.lock.clone()).collect());
        }
    }
    loop {
        let mut changed = false;
        let names: Vec<&str> = summary.keys().copied().collect();
        for name in names {
            let Some(f) = resolver.unique(name) else {
                continue;
            };
            let mut merged: BTreeSet<String> = BTreeSet::new();
            for call in &f.calls {
                if call.callee != name {
                    if let Some(nested) = summary.get(call.callee.as_str()) {
                        merged.extend(nested.iter().cloned());
                    }
                }
            }
            let own = summary.get_mut(name).unwrap_or_else(|| unreachable!());
            let before = own.len();
            own.extend(merged);
            changed |= own.len() != before;
        }
        if !changed {
            return summary;
        }
    }
}

/// Records every nested-acquisition edge observable in `f`: a second
/// direct acquisition inside a guard extent, or a call inside a guard
/// extent into a uniquely resolved crate-local function whose transitive
/// summary acquires.
fn collect_edges(
    a: &FileAnalysis,
    f: &FnSpan,
    resolver: &Resolver<'_>,
    summaries: &BTreeMap<&str, BTreeSet<String>>,
    edges: &mut Vec<LockEdge>,
) {
    for (i, outer) in f.locks.iter().enumerate() {
        let extent = outer.line..=outer.release_line;
        for (j, inner) in f.locks.iter().enumerate() {
            if i != j && inner.line > outer.line && extent.contains(&inner.line) {
                edges.push(LockEdge {
                    held: outer.lock.clone(),
                    acquired: inner.lock.clone(),
                    file: a.source.path.clone(),
                    line: inner.line,
                    in_fn: f.name.clone(),
                    via: None,
                });
            }
        }
        for call in f.calls.iter().filter(|c| extent.contains(&c.line)) {
            let Some(callee) = resolver.unique(&call.callee) else {
                continue;
            };
            if callee.name == f.name {
                continue; // recursion: the edge set is already complete
            }
            let Some(nested) = summaries.get(callee.name.as_str()) else {
                continue;
            };
            for lock in nested {
                edges.push(LockEdge {
                    held: outer.lock.clone(),
                    acquired: lock.clone(),
                    file: a.source.path.clone(),
                    line: call.line,
                    in_fn: f.name.clone(),
                    via: Some(callee.name.clone()),
                });
            }
        }
    }
}

// ---- hot-path-alloc ----------------------------------------------------

fn hot_path_alloc(analyses: &[FileAnalysis], out: &mut Vec<Diagnostic>) {
    let mut by_crate: BTreeMap<String, Vec<&FileAnalysis>> = BTreeMap::new();
    for a in analyses {
        if is_test_file(&a.source.path) {
            continue;
        }
        by_crate
            .entry(crate_key(&a.source.path))
            .or_default()
            .push(a);
    }
    for files in by_crate.values() {
        let resolver = Resolver::build(files);
        for a in files {
            for f in a.fns.iter().filter(|f| f.hot && !f.in_test) {
                for alloc in &f.allocs {
                    out.push(
                        Diagnostic::deny(
                            "hot-path-alloc",
                            &a.source.path,
                            alloc.line,
                            format!(
                                "heap allocation (`{}`) in hot function `{}`",
                                alloc.what.trim_end_matches(['(', '!', '<', ':']),
                                f.name
                            ),
                        )
                        .with_suggestion(
                            "hoist the allocation into a reusable scratch buffer passed in by \
                             the caller, or justify it with a suppression",
                        ),
                    );
                }
                // One level of propagation: calls into uniquely resolved
                // crate-local helpers that allocate. Hot callees police
                // their own bodies; recursion adds nothing new.
                let mut flagged: BTreeSet<&str> = BTreeSet::new();
                for call in &f.calls {
                    let Some(callee) = resolver.unique(&call.callee) else {
                        continue;
                    };
                    if callee.hot || callee.name == f.name || callee.allocs.is_empty() {
                        continue;
                    }
                    if !flagged.insert(call.callee.as_str()) {
                        continue; // one diagnostic per (hot fn, callee)
                    }
                    out.push(
                        Diagnostic::deny(
                            "hot-path-alloc",
                            &a.source.path,
                            call.line,
                            format!(
                                "hot function `{}` calls `{}`, which allocates (`{}` at line {})",
                                f.name,
                                callee.name,
                                callee.allocs[0].what.trim_end_matches(['(', '!', '<', ':']),
                                callee.allocs[0].line
                            ),
                        )
                        .with_suggestion(
                            "mark the callee `// pinocchio-hot` and fix it, hoist its \
                             allocation, or justify the call with a suppression",
                        ),
                    );
                }
            }
        }
    }
}

// ---- call resolution ---------------------------------------------------

/// Per-crate call resolution: a callee name resolves only when exactly
/// one non-test function in the crate bears it. Ambiguous names (every
/// crate has many `fn new`) are skipped — a documented precision
/// tradeoff that keeps propagation sound where it fires at all.
struct Resolver<'a> {
    by_name: BTreeMap<&'a str, Vec<&'a FnSpan>>,
}

impl<'a> Resolver<'a> {
    fn build(files: &[&'a FileAnalysis]) -> Resolver<'a> {
        let mut by_name: BTreeMap<&str, Vec<&FnSpan>> = BTreeMap::new();
        for a in files {
            for f in a.fns.iter().filter(|f| !f.in_test) {
                by_name.entry(f.name.as_str()).or_default().push(f);
            }
        }
        Resolver { by_name }
    }

    fn unique(&self, name: &str) -> Option<&'a FnSpan> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyse(path: &str, text: &str) -> FileAnalysis {
        FileAnalysis::parse(path, text)
    }

    fn file_rule(path: &str, text: &str, rule: &'static str) -> Vec<Diagnostic> {
        check_file_spans(&analyse(path, text), &[rule])
    }

    #[test]
    fn condvar_wait_needs_loop_and_consumption() {
        let bad = "fn park(&self, g: G) {\n    self.cv.wait(g);\n}\n";
        let d = file_rule("crates/serve/src/q.rs", bad, "condvar-discipline");
        assert_eq!(d.len(), 2, "no loop AND discarded: {d:?}");
        let good = "fn park(&self) {\n    let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());\n    while !g.ready {\n        g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());\n    }\n}\n";
        assert!(file_rule("crates/serve/src/q.rs", good, "condvar-discipline").is_empty());
    }

    #[test]
    fn wait_while_is_exempt_from_the_loop_requirement() {
        let text = "fn park(&self, g: G) {\n    let g = self.cv.wait_while(g, |s| !s.ready).unwrap_or_else(|p| p.into_inner());\n}\n";
        assert!(file_rule("crates/serve/src/q.rs", text, "condvar-discipline").is_empty());
    }

    #[test]
    fn bounded_io_denies_unbounded_reads_outside_approved_helpers() {
        let bad = "fn slurp(r: &mut R) {\n    let mut line = String::new();\n    r.read_line(&mut line);\n}\n";
        let d = file_rule("crates/serve/src/conn.rs", bad, "bounded-io");
        assert_eq!(d.len(), 1, "{d:?}");
        let approved = "fn read_bounded_line(r: &mut R) {\n    let mut line = String::new();\n    r.read_line(&mut line);\n}\n";
        assert!(file_rule("crates/serve/src/conn.rs", approved, "bounded-io").is_empty());
        // Out-of-scope crates are untouched.
        assert!(file_rule("crates/prob/src/x.rs", bad, "bounded-io").is_empty());
    }

    #[test]
    fn bounded_io_denies_uncapped_growth_in_reader_loops() {
        let bad = "fn pump(r: &mut R, out: &mut Vec<u8>) {\n    loop {\n        let chunk = r.fill_buf().unwrap_or_default();\n        out.extend_from_slice(chunk);\n    }\n}\n";
        let d = file_rule("crates/serve/src/conn.rs", bad, "bounded-io");
        assert_eq!(d.len(), 1, "{d:?}");
        let capped = "fn pump(r: &mut R, out: &mut Vec<u8>) {\n    loop {\n        let chunk = r.fill_buf().unwrap_or_default();\n        if out.len() > MAX {\n            return;\n        }\n        out.extend_from_slice(chunk);\n    }\n}\n";
        assert!(file_rule("crates/serve/src/conn.rs", capped, "bounded-io").is_empty());
    }

    #[test]
    fn cast_truncation_flags_narrow_and_rounded_casts() {
        let text = "fn f(n: usize, x: f64) {\n    let a = n as u32;\n    let b = x.round() as i64;\n    let c = n as u64;\n    let d = x as f64;\n}\n";
        let d = file_rule("crates/core/src/x.rs", text, "cast-truncation");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("as u32"));
        assert!(d[1].message.contains("as i64"));
    }

    #[test]
    fn cast_truncation_skips_tests_and_use_renames() {
        let import = "use std::fmt::Debug as u32x;\n";
        assert!(file_rule("crates/core/src/x.rs", import, "cast-truncation").is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(n: usize) { let a = n as u32; }\n}\n";
        assert!(file_rule("crates/core/src/x.rs", in_test, "cast-truncation").is_empty());
        let test_file = "fn t(n: usize) -> u32 { n as u32 }\n";
        assert!(file_rule("crates/core/tests/x.rs", test_file, "cast-truncation").is_empty());
    }

    #[test]
    fn lock_ordering_flags_cycles_across_files() {
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn ab(&self) {\n    let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.beta.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        let b = analyse(
            "crates/serve/src/b.rs",
            "fn ba(&self) {\n    let g = self.beta.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        let d = check_workspace(&[a, b], &["lock-ordering"]);
        assert_eq!(d.len(), 2, "both directions report: {d:?}");
        assert!(d.iter().all(|x| x.message.contains("cycle")));
    }

    #[test]
    fn lock_ordering_consistent_nesting_is_clean() {
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn ab(&self) {\n    let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.beta.lock().unwrap_or_else(|p| p.into_inner());\n}\nfn ab2(&self) {\n    let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.beta.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        assert!(check_workspace(&[a], &["lock-ordering"]).is_empty());
    }

    #[test]
    fn lock_ordering_sees_one_call_level() {
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn outer(&self) {\n    let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    helper(self);\n}\nfn helper(s: &S) {\n    let h = s.beta.lock().unwrap_or_else(|p| p.into_inner());\n}\nfn reversed(&self) {\n    let g = self.beta.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        let d = check_workspace(&[a], &["lock-ordering"]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("via call to `helper`")));
    }

    #[test]
    fn lock_ordering_sees_through_guard_wrappers() {
        // `probe` → `wrapper` → `inner_lock` → `state`: the acquisition
        // is two call hops away, the scheduler's `self.lock()` idiom.
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn probe(&self) {\n    let g = self.stats.lock().unwrap_or_else(|p| p.into_inner());\n    wrapper(self);\n}\nfn wrapper(s: &S) -> usize {\n    inner_lock(s).jobs.len()\n}\nfn inner_lock(s: &S) -> G {\n    s.state.lock().unwrap_or_else(|p| p.into_inner())\n}\nfn reversed(&self) {\n    let g = self.state.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.stats.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        let d = check_workspace(&[a], &["lock-ordering"]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d
            .iter()
            .any(|x| x.message.contains("via call to `wrapper`")));
    }

    #[test]
    fn lock_ordering_self_deadlock() {
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn twice(&self) {\n    let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    let h = self.alpha.lock().unwrap_or_else(|p| p.into_inner());\n}\n",
        );
        let d = check_workspace(&[a], &["lock-ordering"]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("self-deadlock"));
    }

    #[test]
    fn statement_temporaries_do_not_create_edges() {
        // `self.state.lock()….len()` releases at statement end, so a
        // later acquisition is not nested.
        let a = analyse(
            "crates/serve/src/a.rs",
            "fn depth(&self) -> usize {\n    let d = self.state.lock().unwrap_or_else(|p| p.into_inner()).jobs.len();\n    let g = self.stats.lock().unwrap_or_else(|p| p.into_inner());\n    d\n}\nfn rev(&self) {\n    let g = self.stats.lock().unwrap_or_else(|p| p.into_inner());\n    let d = self.state.lock().unwrap_or_else(|p| p.into_inner()).jobs.len();\n}\n",
        );
        // rev nests stats→state; depth holds state only for its own
        // statement (no overlap with the later stats acquisition)… but
        // the temporary's statement releases before line 3, so only the
        // rev edge exists and there is no cycle.
        assert!(check_workspace(&[a], &["lock-ordering"]).is_empty());
    }

    #[test]
    fn hot_path_alloc_direct_and_one_level() {
        let a = analyse(
            "crates/prob/src/k.rs",
            "// pinocchio-hot: kernel\nfn kernel(s: &mut S) {\n    let v = Vec::with_capacity(8);\n    helper(s);\n}\nfn helper(s: &mut S) {\n    let t = s.x.to_vec();\n}\nfn cold() {\n    let v = Vec::new();\n}\n",
        );
        let d = check_workspace(&[a], &["hot-path-alloc"]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Vec::with_capacity"));
        assert!(d[1].message.contains("calls `helper`"));
    }

    #[test]
    fn hot_path_alloc_skips_hot_callees_and_ambiguous_names() {
        let a = analyse(
            "crates/prob/src/k.rs",
            "// pinocchio-hot\nfn kernel(s: &mut S) {\n    refine(s);\n    new_scratch();\n}\n// pinocchio-hot\nfn refine(s: &mut S) {\n}\nfn new_scratch() -> Vec<u32> {\n    Vec::new()\n}\nfn other() {\n    fn new_scratch_2() {}\n}\n",
        );
        let b = analyse(
            "crates/prob/src/k2.rs",
            "fn new_scratch() -> Vec<u32> {\n    Vec::new()\n}\n",
        );
        // `new_scratch` is defined twice in the crate → ambiguous → no
        // propagation; `refine` is hot → policed in its own body.
        let d = check_workspace(&[a, b], &["hot-path-alloc"]);
        assert!(d.is_empty(), "{d:?}");
    }
}
