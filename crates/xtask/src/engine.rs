//! File collection, rule dispatch, suppression filtering and reporting.

use crate::diag::{Diagnostic, Severity, RULES};
use crate::rules::check_file;
use crate::source::SourceFile;
use serde_json::{json, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// What to lint and with which rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding `crates/` and `src/`).
    pub root: PathBuf,
    /// Rule ids to run; defaults to every rule.
    pub rules: Vec<&'static str>,
}

impl LintConfig {
    /// All rules over the workspace rooted at `root`.
    pub fn all(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            rules: RULES.to_vec(),
        }
    }

    /// A single rule over the workspace rooted at `root`.
    pub fn only(root: impl Into<PathBuf>, rule: &'static str) -> Self {
        LintConfig {
            root: root.into(),
            rules: vec![rule],
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Diagnostics that survived suppression, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the run must fail (any deny-severity diagnostic).
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Count of deny-severity diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// The report as a JSON object (`--format json`).
    pub fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert(
            "diagnostics".to_string(),
            Value::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        );
        map.insert(
            "files_scanned".to_string(),
            json!(self.files_scanned as u64),
        );
        map.insert("deny_count".to_string(), json!(self.deny_count() as u64));
        map.insert(
            "warn_count".to_string(),
            json!((self.diagnostics.len() - self.deny_count()) as u64),
        );
        Value::Object(map)
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} deny, {} warn\n",
            self.files_scanned,
            self.deny_count(),
            self.diagnostics.len() - self.deny_count()
        ));
        out
    }
}

/// Collects the `.rs` files to lint: everything under `<root>/crates`
/// and `<root>/src`, excluding `vendor/`, `target/` and test fixture
/// trees (`…/fixtures/…`). Paths come back sorted and repo-relative.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        walk(&root.join(top), &mut files);
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    rel
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs the configured rules over the workspace and returns the report.
/// Unreadable files are skipped (they cannot carry violations the
/// compiler would accept either).
pub fn lint(config: &LintConfig) -> LintReport {
    let paths = collect_files(&config.root);
    let files_scanned = paths.len();
    let mut diagnostics = Vec::new();
    for rel in &paths {
        let Ok(text) = fs::read_to_string(config.root.join(rel)) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let file = SourceFile::parse(&rel_str, &text);
        // Malformed suppressions are reported regardless of rule subset:
        // they are an audit-trail failure, not a rule finding.
        diagnostics.extend(file.suppression_diagnostics());
        diagnostics.extend(
            check_file(&file, &config.rules)
                .into_iter()
                .filter(|d| !file.is_suppressed(d.rule, d.line)),
        );
    }
    LintReport {
        diagnostics,
        files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway mini-workspace under the target temp dir.
    fn scratch_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("xtask-engine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("files live under root")).expect("mkdir");
            fs::write(path, text).expect("write fixture");
        }
        root
    }

    #[test]
    fn end_to_end_lint_flags_and_suppresses() {
        let root = scratch_workspace(
            "e2e",
            &[
                (
                    "crates/core/src/lib.rs",
                    "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn ok() {}\n",
                ),
                (
                    "crates/core/src/bad.rs",
                    "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
                ),
                (
                    "crates/core/src/allowed.rs",
                    "pub fn g(x: Option<u32>) -> u32 {\n    x.unwrap() // pinocchio-lint: allow(panic-path) -- builder guarantees Some\n}\n",
                ),
                ("vendor/fake/src/lib.rs", "pub fn v() { x.unwrap(); }\n"),
            ],
        );
        let report = lint(&LintConfig::all(&root));
        assert_eq!(report.files_scanned, 3, "vendor must be excluded");
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"panic-path"));
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.file.contains("allowed.rs")),
            "justified suppression must silence the finding"
        );
        assert!(report.has_denials());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unjustified_suppression_fails_even_with_rule_subset() {
        let root = scratch_workspace(
            "nojust",
            &[(
                "crates/core/src/bad.rs",
                "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // pinocchio-lint: allow(panic-path)\n}\n",
            )],
        );
        // Even when only crate-hygiene is requested, the malformed
        // suppression is still reported…
        let report = lint(&LintConfig::only(&root, "crate-hygiene"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "suppression-hygiene"));
        // …and the unjustified allow does not silence panic-path.
        let full = lint(&LintConfig::all(&root));
        assert!(full.diagnostics.iter().any(|d| d.rule == "panic-path"));
        let _ = fs::remove_dir_all(&root);
    }
}
