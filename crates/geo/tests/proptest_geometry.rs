//! Property-based tests of the geometry kernel against brute force.

use pinocchio_geo::{EquirectangularProjection, Haversine, Mbr, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_mbr() -> impl Strategy<Value = Mbr> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Mbr::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// minDist lower-bounds and maxDist upper-bounds the distance from a
    /// query point to *every* point inside the rectangle.
    #[test]
    fn min_max_dist_bound_all_interior_points(
        mbr in arb_mbr(),
        q in arb_point(),
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
    ) {
        let interior = Point::new(
            mbr.lo().x + fx * mbr.width(),
            mbr.lo().y + fy * mbr.height(),
        );
        let d = q.euclidean(&interior);
        prop_assert!(mbr.min_dist(&q) <= d + 1e-9);
        prop_assert!(mbr.max_dist(&q) >= d - 1e-9);
    }

    /// maxDist is attained at one of the four corners.
    #[test]
    fn max_dist_attained_at_a_corner(mbr in arb_mbr(), q in arb_point()) {
        let best = mbr
            .corners()
            .iter()
            .map(|c| c.euclidean(&q))
            .fold(0.0f64, f64::max);
        prop_assert!((mbr.max_dist(&q) - best).abs() < 1e-9);
    }

    /// minDist is zero exactly for points inside (or on) the rectangle.
    #[test]
    fn min_dist_zero_iff_contained(mbr in arb_mbr(), q in arb_point()) {
        prop_assert_eq!(mbr.min_dist(&q) == 0.0, mbr.contains_point(&q));
    }

    /// Containment monotonicity of the two metrics — the soundness
    /// lemma behind the object-join's subtree-IA / subtree-NIB rules:
    /// for any `A ⊆ B` (here `B = A ∪ X` for arbitrary `X`),
    /// `maxDist(p, B) ≥ maxDist(p, A)` and `minDist(p, B) ≤ minDist(p, A)`.
    #[test]
    fn dist_metrics_monotone_under_containment(
        a in arb_mbr(),
        x in arb_mbr(),
        q in arb_point(),
    ) {
        let b = a.union(&x);
        prop_assert!(b.contains_mbr(&a));
        prop_assert!(b.max_dist_sq(&q) >= a.max_dist_sq(&q) - 1e-9);
        prop_assert!(b.min_dist_sq(&q) <= a.min_dist_sq(&q) + 1e-9);
    }

    /// Union contains both inputs; enlargement is non-negative.
    #[test]
    fn union_contains_inputs(a in arb_mbr(), b in arb_mbr()) {
        let u = a.union(&b);
        prop_assert!(u.contains_mbr(&a));
        prop_assert!(u.contains_mbr(&b));
        prop_assert!(a.enlargement(&b) >= -1e-12);
    }

    /// Intersection test is symmetric and consistent with containment.
    #[test]
    fn intersection_symmetry(a in arb_mbr(), b in arb_mbr()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if a.contains_mbr(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    /// from_points builds the tightest box: containing all points, with
    /// extremes on the boundary.
    #[test]
    fn from_points_is_tight(points in prop::collection::vec(arb_point(), 1..40)) {
        let mbr = Mbr::from_points(&points).unwrap();
        for p in &points {
            prop_assert!(mbr.contains_point(p));
        }
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        prop_assert_eq!(mbr.lo().x, xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(mbr.hi().y, ys.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Projection round-trips and preserves short distances to ~0.2 %.
    #[test]
    fn projection_round_trip_and_fidelity(
        lon0 in -170.0f64..170.0,
        lat0 in -60.0f64..60.0,
        dlon in -0.15f64..0.15,
        dlat in -0.15f64..0.15,
    ) {
        let proj = EquirectangularProjection::new(lon0, lat0);
        let geo = Point::new(lon0 + dlon, lat0 + dlat);
        let back = proj.inverse(&proj.forward(&geo));
        prop_assert!((back.x - geo.x).abs() < 1e-9);
        prop_assert!((back.y - geo.y).abs() < 1e-9);

        let a = Point::new(lon0, lat0);
        let planar = proj.forward(&a).euclidean(&proj.forward(&geo));
        let sphere = Haversine::distance_km(&a, &geo);
        if sphere > 0.5 {
            prop_assert!(
                (planar - sphere).abs() / sphere < 2e-3,
                "planar {planar} vs sphere {sphere}"
            );
        }
    }

    /// Haversine satisfies the metric axioms on sampled triples.
    #[test]
    fn haversine_metric_axioms(
        lon1 in -179.0f64..179.0, lat1 in -80.0f64..80.0,
        lon2 in -179.0f64..179.0, lat2 in -80.0f64..80.0,
        lon3 in -179.0f64..179.0, lat3 in -80.0f64..80.0,
    ) {
        let a = Point::new(lon1, lat1);
        let b = Point::new(lon2, lat2);
        let c = Point::new(lon3, lat3);
        let ab = Haversine::distance_km(&a, &b);
        let ba = Haversine::distance_km(&b, &a);
        let bc = Haversine::distance_km(&b, &c);
        let ac = Haversine::distance_km(&a, &c);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert!(ac <= ab + bc + 1e-6, "triangle violated: {ac} > {ab} + {bc}");
    }
}
