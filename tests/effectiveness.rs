//! Effectiveness integration test — the Table 3/4 *shape*: under the
//! probabilistic mobility model, PRIME-LS rankings track ground-truth
//! popularity at least as well as the classical semantics.

use pinocchio::baselines::{brnn_star, range_baseline, rank_descending, RangeConfig};
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::eval::{average_precision_at_k, precision_at_k, relevant_ranking};
use pinocchio::prelude::*;

#[test]
fn precision_protocol_is_sound_and_methods_are_comparable() {
    // The Table 3/4 protocol at test scale. Small synthetic worlds carry
    // only weak ranking signal (the paper's own margins at K >= 20 are
    // within a percentage point: P@20 = 0.113 / 0.112 / 0.112), so this
    // test asserts the robust properties: the metric machinery is
    // self-consistent, every method clears a noise floor, and PRIME-LS
    // stays within a constant factor of the strongest baseline. Exact
    // full-scale margins live in EXPERIMENTS.md via `table34_precision`.
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(250, 77)).generate();
    let k = 30;
    let groups = 10;
    let m = 100;
    let random_baseline = k as f64 / m as f64;
    let (mut p_prime, mut p_brnn, mut ap_prime) = (0.0, 0.0, 0.0);

    for g in 0..groups {
        let (venue_indices, candidates) = sample_candidate_group(&dataset, m, 1000 + g);
        let relevant = relevant_ranking(&dataset, &venue_indices);

        let problem = PrimeLs::builder()
            .objects(dataset.objects().to_vec())
            .candidates(candidates.clone())
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap();
        let prime_rank = problem
            .solve(Algorithm::Pinocchio)
            .ranking()
            .expect("PIN reports all influences");
        let brnn_rank = rank_descending(&brnn_star(dataset.objects(), &candidates));

        // Self-consistency: a ranking scored against itself is perfect.
        assert_eq!(precision_at_k(&prime_rank, &prime_rank, k), 1.0);
        assert_eq!(average_precision_at_k(&prime_rank, &prime_rank, k), 1.0);

        p_prime += precision_at_k(&prime_rank, &relevant, k);
        p_brnn += precision_at_k(&brnn_rank, &relevant, k);
        ap_prime += average_precision_at_k(&prime_rank, &relevant, k);
    }

    let n = groups as f64;
    let (p_prime, p_brnn, ap_prime) = (p_prime / n, p_brnn / n, ap_prime / n);
    assert!(
        p_prime >= random_baseline * 0.6,
        "PRIME-LS P@{k} {p_prime:.3} degenerate vs random {random_baseline:.3}"
    );
    assert!(
        p_brnn >= random_baseline * 0.6,
        "BRNN* P@{k} {p_brnn:.3} degenerate vs random {random_baseline:.3}"
    );
    assert!(
        p_prime >= p_brnn * 0.6,
        "P@{k}: PRIME-LS {p_prime:.3} collapsed relative to BRNN* {p_brnn:.3}"
    );
    assert!(
        ap_prime <= p_prime + 1e-9,
        "AP must not exceed P ({ap_prime:.3} > {p_prime:.3})"
    );
}

#[test]
fn range_baseline_produces_sane_rankings() {
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(150, 31)).generate();
    let (venue_indices, candidates) = sample_candidate_group(&dataset, 80, 3);
    let relevant = relevant_ranking(&dataset, &venue_indices);
    let scale = dataset.frame().width().max(dataset.frame().height());

    let mut precisions = Vec::new();
    for cfg in RangeConfig::paper_combinations(scale) {
        let ranking = rank_descending(&range_baseline(dataset.objects(), &candidates, cfg));
        precisions.push(precision_at_k(&ranking, &relevant, 20));
    }
    assert_eq!(precisions.len(), 9);
    // Averaged over the nine combos (the paper's procedure) the signal
    // must be non-trivial.
    let avg: f64 = precisions.iter().sum::<f64>() / 9.0;
    assert!(avg > 0.02, "avg RANGE precision {avg} looks like noise");
}

#[test]
fn prime_ls_winner_is_popular_in_ground_truth() {
    // The selected optimum should sit in the upper half of the
    // ground-truth popularity ranking — the whole point of LS.
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(200, 55)).generate();
    let (venue_indices, candidates) = sample_candidate_group(&dataset, 100, 5);
    let problem = PrimeLs::builder()
        .objects(dataset.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let winner = problem.solve(Algorithm::PinocchioVo).best_candidate;
    let relevant = relevant_ranking(&dataset, &venue_indices);
    let rank = relevant.iter().position(|&i| i == winner).unwrap();
    assert!(
        rank < relevant.len() / 2,
        "winner ranked {rank} of {} in ground truth",
        relevant.len()
    );
}
