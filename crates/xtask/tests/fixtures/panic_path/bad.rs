//! Fixture: panic-path tokens in non-test core code.

/// Unwraps an option.
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Expects an invariant.
pub fn demand(x: Option<u32>) -> u32 {
    x.expect("always present")
}

/// Indexes with arithmetic.
pub fn off_by_one(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}
