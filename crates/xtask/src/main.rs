//! `cargo run -p xtask -- <subcommand>` — the workspace's task runner.
//!
//! Subcommands:
//!
//! * `lint` — run every static-analysis rule; exit 1 on any deny.
//! * `audit-stats` — run only the `stats-accounting` rule and print the
//!   solver-file coverage table.
//! * `check-headers` — run only the `crate-hygiene` rule.
//!
//! Common flags: `--format json|text` (default `text`),
//! `--root <path>` (default: the workspace root containing this crate).

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{lint, LintConfig, LintReport};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <lint|audit-stats|check-headers> [--format json|text] [--root PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                format = v.clone();
                i += 2;
            }
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                root = Some(PathBuf::from(v));
                i += 2;
            }
            _ => return usage(),
        }
    }
    if format != "text" && format != "json" {
        return usage();
    }
    let root = root.unwrap_or_else(workspace_root);

    let config = match command.as_str() {
        "lint" => LintConfig::all(&root),
        "audit-stats" => LintConfig::only(&root, "stats-accounting"),
        "check-headers" => LintConfig::only(&root, "crate-hygiene"),
        _ => return usage(),
    };
    let report = lint(&config);

    if format == "json" {
        match serde_json::to_string_pretty(&report.to_json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("failed to serialise report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render_text());
        if command == "audit-stats" {
            print_stats_table(&root);
        }
    }

    if report.has_denials() {
        ExitCode::FAILURE
    } else {
        report_clean(command, &report);
        ExitCode::SUCCESS
    }
}

fn report_clean(command: &str, report: &LintReport) {
    if report.diagnostics.is_empty() {
        eprintln!("xtask {command}: clean ({} files)", report.files_scanned);
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Text-mode extra for `audit-stats`: which core files define solver
/// entry points and whether they reference `SolveStats`.
fn print_stats_table(root: &std::path::Path) {
    println!("solver entry points (crates/core):");
    for rel in xtask::collect_files(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !rel_str.starts_with("crates/core/src/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let file = xtask::SourceFile::parse(&rel_str, &text);
        let has_entry = file
            .lines
            .iter()
            .any(|l| !l.in_test && l.code.starts_with("pub fn solve"));
        if has_entry {
            let ok = file.code_contains("SolveStats");
            println!(
                "  {:<36} {}",
                rel_str,
                if ok {
                    "SolveStats ok"
                } else {
                    "MISSING SolveStats"
                }
            );
        }
    }
}
