//! Integration tests of the beyond-the-paper extensions working
//! together through the facade crate: top-k, weighted influence, and
//! dynamic maintenance.

use pinocchio::core::{solve_top_k, solve_weighted, DynamicPrimeLs};
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;

fn world(seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(100, seed)).generate();
    let (_, candidates) = sample_candidate_group(&d, 50, seed);
    (d.objects().to_vec(), candidates)
}

fn problem(objects: Vec<MovingObject>, candidates: Vec<Point>) -> PrimeLs<PowerLawPf> {
    PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap()
}

#[test]
fn top_k_prefix_property() {
    // Top-k lists are prefixes of each other: top-5 extends top-3.
    let (objects, candidates) = world(41);
    let p = problem(objects, candidates);
    let top10 = solve_top_k(&p, 10);
    for k in [1usize, 3, 5] {
        let shorter = solve_top_k(&p, k);
        assert_eq!(&top10[..k], &shorter[..]);
    }
}

#[test]
fn weighted_with_unit_weights_matches_top_k_order() {
    let (objects, candidates) = world(43);
    let p = problem(objects, candidates);
    let weighted = solve_weighted(&p, &vec![1.0; p.objects().len()]);
    let top1 = solve_top_k(&p, 1);
    assert_eq!(weighted.best_candidate, top1[0].candidate);
    assert_eq!(weighted.max_weighted_influence as u32, top1[0].influence);
}

#[test]
fn dynamic_state_tracks_static_solver_through_world_changes() {
    let (objects, candidates) = world(47);
    let keep = objects.len() / 2;
    let (initial, streamed) = objects.split_at(keep);

    let (mut dynamic, _, _) = DynamicPrimeLs::from_parts(
        PowerLawPf::paper_default(),
        0.7,
        initial.to_vec(),
        candidates.clone(),
    );

    // Stream in the second half; verify against the static solver at
    // checkpoints.
    for (i, o) in streamed.iter().enumerate() {
        dynamic.insert_object(o.clone());
        if i % 17 == 0 {
            dynamic.verify_against_static();
        }
    }
    dynamic.verify_against_static();

    // Final dynamic optimum equals the static optimum on the full world.
    let p = problem(objects.clone(), candidates);
    let static_best = p.solve(Algorithm::PinocchioVo);
    let (_, loc, inf) = dynamic.best().unwrap();
    assert_eq!(inf, static_best.max_influence);
    assert_eq!(loc, static_best.best_location);
}

#[test]
fn weighted_optimum_respects_value_concentration() {
    // Give all the weight to objects influenced by some non-optimal
    // candidate: that candidate must become the weighted optimum.
    let (objects, candidates) = world(53);
    let p = problem(objects.clone(), candidates.clone());
    let influences = p.all_influences();

    // Pick a candidate with at least one influenced object but not the
    // unweighted winner.
    let unweighted_best = p.solve(Algorithm::PinocchioVo).best_candidate;
    let Some(target) = (0..candidates.len()).find(|&j| j != unweighted_best && influences[j] > 0)
    else {
        panic!("need a second influential candidate for this test");
    };

    // Weight = 1000 for objects influenced by `target`, 1 otherwise.
    let eval = p.evaluator();
    let weights: Vec<f64> = objects
        .iter()
        .map(|o| {
            if eval.influences(&candidates[target], o.positions(), 0.7) {
                1000.0
            } else {
                1.0
            }
        })
        .collect();
    let weighted = solve_weighted(&p, &weights);
    // The winner must capture (at least) all the heavy objects that
    // `target` captures.
    assert!(
        weighted.weighted_influences[weighted.best_candidate]
            >= weighted.weighted_influences[target]
    );
    assert!(weighted.max_weighted_influence >= 1000.0);
}
