//! Fig. 6 — geographical distribution of check-ins and candidates.
//!
//! The paper plots the skewed geography of the Foursquare sample and a
//! 600-candidate group. A terminal cannot render a scatter plot, so this
//! binary prints an ASCII density map of the check-ins (darker = denser)
//! with candidate locations overlaid, and writes the raw scatter data to
//! CSV next to the JSON record for external plotting.

use pinocchio_bench::{dataset, experiments_dir, write_record, DatasetKind};
use pinocchio_data::sample_candidate_group;

const COLS: usize = 78;
const ROWS: usize = 26;
const SHADES: &[u8] = b" .:-=+*#%@";

fn main() {
    let d = dataset(DatasetKind::Foursquare);
    let frame = d.frame();
    let (_, candidates) = sample_candidate_group(&d, 600.min(d.venues().len()), 6);

    // Bin check-ins into the character grid.
    let mut bins = vec![0u64; COLS * ROWS];
    let mut total = 0u64;
    for o in d.objects() {
        for p in o.positions() {
            let cx = (((p.x - frame.lo().x) / frame.width()) * (COLS - 1) as f64) as usize;
            let cy = (((p.y - frame.lo().y) / frame.height()) * (ROWS - 1) as f64) as usize;
            bins[cy * COLS + cx] += 1;
            total += 1;
        }
    }
    let max = *bins.iter().max().unwrap_or(&1) as f64;

    let mut grid: Vec<Vec<u8>> = (0..ROWS)
        .map(|r| {
            (0..COLS)
                .map(|c| {
                    let density = bins[r * COLS + c] as f64 / max;
                    // Log-ish scaling: the distribution is heavily skewed.
                    let level = ((density.sqrt()) * (SHADES.len() - 1) as f64)
                        .round()
                        .clamp(0.0, (SHADES.len() - 1) as f64)
                        as usize;
                    SHADES[level]
                })
                .collect()
        })
        .collect();
    // Overlay candidates as 'o'.
    for c in &candidates {
        let cx = (((c.x - frame.lo().x) / frame.width()) * (COLS - 1) as f64) as usize;
        let cy = (((c.y - frame.lo().y) / frame.height()) * (ROWS - 1) as f64) as usize;
        grid[cy][cx] = b'o';
    }

    println!(
        "Fig. 6: check-in density ({} check-ins, shade = sqrt density) and 600 candidates (o)\n",
        total
    );
    // Print top row last so north is up.
    for row in grid.iter().rev() {
        println!("{}", String::from_utf8_lossy(row));
    }
    println!(
        "\nframe: {:.2} x {:.2} km; darker cells hold more check-ins",
        frame.width(),
        frame.height()
    );

    // Raw scatter sample for external plotting.
    let mut csv = String::from("kind,x_km,y_km\n");
    for (i, o) in d.objects().iter().enumerate() {
        if i % 10 == 0 {
            for p in o.positions().iter().take(3) {
                csv.push_str(&format!("checkin,{:.4},{:.4}\n", p.x, p.y));
            }
        }
    }
    for c in &candidates {
        csv.push_str(&format!("candidate,{:.4},{:.4}\n", c.x, c.y));
    }
    let csv_path = experiments_dir().join("fig06_geo.csv");
    std::fs::write(&csv_path, csv).expect("write scatter csv");
    println!("[scatter sample written to {}]", csv_path.display());

    write_record(
        "fig06_geo",
        &serde_json::json!({
            "checkins": total,
            "candidates": candidates.len(),
            "frame_km": [frame.width(), frame.height()],
            "grid": [COLS, ROWS],
            "max_bin": max,
        }),
    );
}
