//! An aggregate R-tree over object MBRs for the candidate-centric join.
//!
//! §4.3 of the paper argues the *object* side should not be indexed by a
//! plain spatial R-tree: activity MBRs overlap so heavily (~55 % of each
//! axis) that purely spatial node MBRs degenerate. The [`MbrTree`] takes
//! the INSQ route instead (Li et al., ICDE 2015: per-node influence
//! summaries): every node carries **aggregate pruning bounds** over its
//! subtree —
//!
//! * `min_mu` / `max_mu` — the extreme `minMaxRadius` values (Def. 5) of
//!   the objects below,
//! * `nib_mbr` — the union of the per-object non-influence-boundary
//!   MBRs (`object.mbr.inflate(μ)`),
//! * `count` — how many objects live below,
//!
//! so one traversal per candidate `c` can decide whole subtrees:
//!
//! * **subtree-IA** — `maxDist(c, node.mbr) ≤ node.min_mu` ⇒ `c` is
//!   within `minMaxRadius` of every position of every object below
//!   (Theorem 1 lifted to the node MBR, which contains each object MBR;
//!   see `Mbr::max_dist_sq` for the containment-monotonicity argument),
//!   so all `count` objects are influenced at once;
//! * **subtree-NIB** — `minDist(c, node.mbr) > node.max_mu`, or `c`
//!   outside `node.nib_mbr` ⇒ `c` is farther than `minMaxRadius` from
//!   every position of every object below (Theorem 2 lifted the same
//!   way), so none of the `count` objects can be influenced.
//!
//! Because μ varies over three orders of magnitude with the position
//! count while the spatial extent of the dataset does not, the bulk
//! loader groups objects by μ *first* (bands) and packs spatially (STR)
//! only within a band — μ-homogeneous nodes are what make the aggregate
//! bounds tight enough to fire. A purely spatial packing would put a
//! 3-position object (small μ) next to a 600-position object (huge μ) and
//! every node would inherit the useless `(tiny min_mu, huge max_mu)`
//! spread.

use crate::rtree::DEFAULT_MAX_ENTRIES;
use pinocchio_geo::{Mbr, Point};

/// Arena identifier of a node.
type NodeId = usize;

/// One indexed object: its MBR, its `minMaxRadius` μ, and a payload
/// (typically the dense object index).
#[derive(Debug, Clone)]
struct MuEntry<T> {
    mbr: Mbr,
    mu_sq: f64,
    nib_mbr: Mbr,
    payload: T,
}

#[derive(Debug, Clone)]
enum NodeKind<T> {
    Internal { children: Vec<NodeId> },
    Leaf { entries: Vec<MuEntry<T>> },
}

/// A node with its aggregate pruning bounds.
#[derive(Debug, Clone)]
struct Node<T> {
    /// Union of the MBRs of all objects below.
    mbr: Mbr,
    /// Union of `object.mbr.inflate(μ)` over all objects below — a
    /// rectangle certainly containing every point that could influence
    /// any object of the subtree.
    nib_mbr: Mbr,
    /// Smallest μ below (drives subtree-IA).
    min_mu: f64,
    /// Largest μ below (drives subtree-NIB).
    max_mu: f64,
    /// Number of objects below.
    count: u64,
    kind: NodeKind<T>,
}

/// What the join traversal reports for each decided unit.
#[derive(Debug)]
pub enum JoinEvent<'a, T> {
    /// Every object in a subtree is certainly influenced (Theorem 1 at
    /// node level); `count` objects are decided in bulk.
    SubtreeInfluenced {
        /// Objects decided at once.
        count: u64,
    },
    /// No object in a subtree can be influenced (Theorem 2 at node
    /// level); `count` objects are excluded in bulk.
    SubtreeExcluded {
        /// Objects excluded at once.
        count: u64,
    },
    /// A single object decided influenced at leaf level (Theorem 1).
    EntryInfluenced(&'a T),
    /// A single object excluded at leaf level (Theorem 2).
    EntryExcluded(&'a T),
    /// A single object the pruning rules cannot decide — the caller must
    /// validate it exactly (cumulative probability).
    EntryUndecided(&'a T),
}

/// Traversal-cost counters of one [`MbrTree::influence_join`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinTraversal {
    /// Nodes popped from the traversal stack.
    pub nodes_visited: u64,
    /// Nodes decided wholesale by subtree-IA.
    pub subtrees_ia: u64,
    /// Nodes decided wholesale by subtree-NIB.
    pub subtrees_nib: u64,
}

/// Verdict totals of one cell-join classification (see
/// [`MbrTree::cell_join`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellJoin {
    /// Objects certainly influenced by **every** point of the cell
    /// (Theorem 1 lifted to cell × subtree).
    pub all: u64,
    /// Objects **no** point of the cell can influence (Theorem 2
    /// lifted to cell × subtree).
    pub none: u64,
    /// Traversal-cost counters (zero for pure frontier refinement,
    /// which touches no tree nodes).
    pub traversal: JoinTraversal,
}

/// An opaque handle to one leaf entry left ambiguous by a cell join:
/// some points of the cell may influence the object, others may not.
/// Handles stay valid for the lifetime of the tree they came from and
/// are re-testable against smaller cells via
/// [`MbrTree::cell_join_refine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellEntry {
    node: NodeId,
    entry: usize,
}

/// Reusable traversal stack for [`MbrTree::cell_join`], so the hot
/// descent loop allocates nothing per cell.
#[derive(Debug, Default)]
pub struct CellScratch {
    stack: Vec<NodeId>,
}

/// An aggregate R-tree over `(Mbr, μ, payload)` items (see the module
/// docs for the pruning rules it supports).
///
/// ```
/// use pinocchio_geo::{Mbr, Point};
/// use pinocchio_index::{JoinEvent, MbrTree};
///
/// let tree = MbrTree::bulk_load(vec![
///     (Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 5.0, "near"),
///     (Mbr::new(Point::new(40.0, 0.0), Point::new(41.0, 1.0)), 0.5, "far"),
/// ]);
/// let mut influenced = 0u64;
/// tree.influence_join(&Point::new(0.5, 0.5), |event| match event {
///     JoinEvent::SubtreeInfluenced { count } => influenced += count,
///     JoinEvent::EntryInfluenced(_) => influenced += 1,
///     _ => {}
/// });
/// assert_eq!(influenced, 1); // "near" only: "far" is 40 km away, μ = 0.5
/// ```
#[derive(Debug, Clone)]
pub struct MbrTree<T> {
    nodes: Vec<Node<T>>,
    root: Option<NodeId>,
    max_entries: usize,
    len: usize,
}

impl<T: Clone> MbrTree<T> {
    /// Bulk loads the aggregate tree from `(mbr, μ, payload)` items with
    /// the paper's default fan-out (8).
    ///
    /// # Panics
    /// Panics if any μ is negative or non-finite, or any MBR corner is
    /// non-finite — the aggregate bounds would be meaningless.
    pub fn bulk_load(items: Vec<(Mbr, f64, T)>) -> Self {
        Self::bulk_load_with_capacity(items, DEFAULT_MAX_ENTRIES)
    }

    /// [`Self::bulk_load`] with a custom node fan-out.
    ///
    /// Packing strategy: items are sorted by μ and chopped into bands of
    /// `max_entries²` items; within a band, leaves are packed spatially
    /// with STR over the MBR centers. Upper levels chunk consecutive
    /// (μ-ordered) nodes. See the module docs for why μ-homogeneity is
    /// the primary key.
    ///
    /// # Panics
    /// Panics if `max_entries < 2` or on non-finite inputs (see
    /// [`Self::bulk_load`]).
    pub fn bulk_load_with_capacity(mut items: Vec<(Mbr, f64, T)>, max_entries: usize) -> Self {
        assert!(max_entries >= 2, "MbrTree fan-out must be at least 2");
        for (mbr, mu, _) in &items {
            assert!(
                mu.is_finite() && *mu >= 0.0,
                "minMaxRadius must be finite and non-negative, got {mu}"
            );
            assert!(
                mbr.lo().is_finite() && mbr.hi().is_finite(),
                "cannot index a non-finite MBR"
            );
        }
        let mut tree = MbrTree {
            nodes: Vec::new(),
            root: None,
            max_entries,
            len: items.len(),
        };
        if items.is_empty() {
            return tree;
        }

        // --- μ-banded STR leaf packing ----------------------------------
        items.sort_by(|a, b| a.1.total_cmp(&b.1));
        let band_size = max_entries * max_entries;
        let mut leaf_ids: Vec<NodeId> = Vec::new();
        for band in items.chunks_mut(band_size) {
            // STR within the band, over MBR centers: sort by x, chop into
            // ~√(leaves) slices, sort each slice by y, emit fan-out runs.
            band.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
            let leaves_in_band = band.len().div_ceil(max_entries);
            #[allow(clippy::cast_possible_truncation)]
            // in [1, √leaves]: leaves fit memory, so far below 2^52
            let slices = (leaves_in_band as f64).sqrt().ceil().max(1.0) as usize;
            let per_slice = band.len().div_ceil(slices).max(1);
            for slice in band.chunks_mut(per_slice) {
                slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                for run in slice.chunks(max_entries) {
                    leaf_ids.push(tree.push_leaf(run));
                }
            }
        }

        // --- pack upper levels ------------------------------------------
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next: Vec<NodeId> = Vec::new();
            for group in level.chunks(max_entries) {
                next.push(tree.push_internal(group));
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    fn push_leaf(&mut self, run: &[(Mbr, f64, T)]) -> NodeId {
        let entries: Vec<MuEntry<T>> = run
            .iter()
            .map(|(mbr, mu, payload)| MuEntry {
                mbr: *mbr,
                mu_sq: mu * mu,
                nib_mbr: mbr.inflate(*mu),
                payload: payload.clone(),
            })
            .collect();
        let mbr = run
            .iter()
            .map(|(m, _, _)| *m)
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Mbr::from_point(Point::ORIGIN)); // run is never empty (chunks)
        let nib_mbr = entries
            .iter()
            .map(|e| e.nib_mbr)
            .reduce(|a, b| a.union(&b))
            .unwrap_or(mbr);
        let min_mu = run
            .iter()
            .map(|(_, mu, _)| *mu)
            .fold(f64::INFINITY, f64::min);
        let max_mu = run.iter().map(|(_, mu, _)| *mu).fold(0.0, f64::max);
        let id = self.nodes.len();
        self.nodes.push(Node {
            mbr,
            nib_mbr,
            min_mu,
            max_mu,
            count: run.len() as u64,
            kind: NodeKind::Leaf { entries },
        });
        id
    }

    fn push_internal(&mut self, group: &[NodeId]) -> NodeId {
        let mut mbr: Option<Mbr> = None;
        let mut nib_mbr: Option<Mbr> = None;
        let mut min_mu = f64::INFINITY;
        let mut max_mu = 0.0f64;
        let mut count = 0u64;
        for &child in group {
            let node = &self.nodes[child];
            mbr = Some(mbr.map_or(node.mbr, |m| m.union(&node.mbr)));
            nib_mbr = Some(nib_mbr.map_or(node.nib_mbr, |m| m.union(&node.nib_mbr)));
            min_mu = min_mu.min(node.min_mu);
            max_mu = max_mu.max(node.max_mu);
            count += node.count;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            mbr: mbr.unwrap_or(Mbr::from_point(Point::ORIGIN)), // group is never empty (chunks)
            nib_mbr: nib_mbr.unwrap_or(Mbr::from_point(Point::ORIGIN)),
            min_mu,
            max_mu,
            count,
            kind: NodeKind::Internal {
                children: group.to_vec(),
            },
        });
        id
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Union of all object MBRs, or `None` when empty.
    pub fn bounds(&self) -> Option<Mbr> {
        self.root.map(|r| self.nodes[r].mbr)
    }

    /// Height of the tree (a lone leaf has height 1; 0 when empty).
    pub fn height(&self) -> usize {
        let Some(mut id) = self.root else { return 0 };
        let mut h = 1;
        loop {
            match &self.nodes[id].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Internal { children } => {
                    h += 1;
                    // Bulk loading never creates childless internals.
                    let Some(&first) = children.first() else {
                        return h;
                    };
                    id = first;
                }
            }
        }
    }

    /// Runs the hierarchical IA/NIB join for one candidate.
    ///
    /// `visit` receives one [`JoinEvent`] per decided unit: bulk subtree
    /// decisions carry object counts; leaf-level survivors are reported
    /// per entry, with undecided entries left for exact validation by the
    /// caller. Every indexed object is covered by exactly one event, so
    /// `Σ counts + influenced + excluded + undecided = len()` — the
    /// accounting invariant the solver-level tests check.
    // pinocchio-hot: per-candidate tree traversal of PIN-JOIN
    pub fn influence_join(
        &self,
        candidate: &Point,
        mut visit: impl FnMut(JoinEvent<'_, T>),
    ) -> JoinTraversal {
        let mut t = JoinTraversal::default();
        let Some(root) = self.root else {
            return t;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            t.nodes_visited += 1;
            // subtree-NIB (Theorem 2 at node level): either the candidate
            // is outside the union of the per-object NIB rectangles, or it
            // is farther than every μ below from the node MBR (which
            // contains each object MBR, so minDist only shrinks towards
            // children — see `Mbr::min_dist_sq`). Strict `>` mirrors the
            // per-object exclusion rule exactly.
            if !node.nib_mbr.contains_point(candidate)
                || node.mbr.min_dist_sq(candidate) > node.max_mu * node.max_mu
            {
                t.subtrees_nib += 1;
                visit(JoinEvent::SubtreeExcluded { count: node.count });
                continue;
            }
            // subtree-IA (Theorem 1 at node level): within min_mu of the
            // farthest point of the node MBR ⇒ within every object's μ of
            // all its positions (maxDist only shrinks towards children).
            if node.mbr.max_dist_sq(candidate) <= node.min_mu * node.min_mu {
                t.subtrees_ia += 1;
                visit(JoinEvent::SubtreeInfluenced { count: node.count });
                continue;
            }
            match &node.kind {
                NodeKind::Internal { children } => stack.extend_from_slice(children),
                NodeKind::Leaf { entries } => {
                    for e in entries {
                        // Exact per-object rules — identical semantics to
                        // `InfluenceRegions::{in_influence_arcs,
                        // in_non_influence_boundary}`.
                        if e.mbr.min_dist_sq(candidate) > e.mu_sq {
                            visit(JoinEvent::EntryExcluded(&e.payload));
                        } else if e.mbr.max_dist_sq(candidate) <= e.mu_sq {
                            visit(JoinEvent::EntryInfluenced(&e.payload));
                        } else {
                            visit(JoinEvent::EntryUndecided(&e.payload));
                        }
                    }
                }
            }
        }
        t
    }

    /// [`Self::influence_join`] variant that enumerates the *payloads*
    /// of bulk-influenced subtrees instead of reporting only counts.
    ///
    /// `on_influenced` fires once per object certainly influenced
    /// (Theorem 1, at subtree or entry level); `on_undecided` fires once
    /// per object the pruning rules cannot decide. Excluded objects —
    /// subtree-NIB bulk decisions and per-entry exclusions — produce no
    /// callback at all: the caller's per-object state is expected to
    /// already encode "not influenced" (the dynamic maintenance path
    /// inserts candidates into slots whose bits are all zero, so
    /// exclusions need no work, which is exactly what makes the
    /// traversal O(reachable) instead of O(objects)).
    ///
    /// Same pruning rules and verdicts as [`Self::influence_join`]; only
    /// the reporting differs (influenced subtrees are walked to hand out
    /// payloads, without re-testing their entries).
    // pinocchio-hot: per-candidate tree traversal of the delta maintenance path
    pub fn influence_join_entries(
        &self,
        candidate: &Point,
        mut on_influenced: impl FnMut(&T),
        mut on_undecided: impl FnMut(&T),
    ) -> JoinTraversal {
        let mut t = JoinTraversal::default();
        let Some(root) = self.root else {
            return t;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            t.nodes_visited += 1;
            if !node.nib_mbr.contains_point(candidate)
                || node.mbr.min_dist_sq(candidate) > node.max_mu * node.max_mu
            {
                t.subtrees_nib += 1;
                continue;
            }
            if node.mbr.max_dist_sq(candidate) <= node.min_mu * node.min_mu {
                t.subtrees_ia += 1;
                self.for_each_payload(id, &mut on_influenced);
                continue;
            }
            match &node.kind {
                NodeKind::Internal { children } => stack.extend_from_slice(children),
                NodeKind::Leaf { entries } => {
                    for e in entries {
                        if e.mbr.min_dist_sq(candidate) > e.mu_sq {
                            // excluded: no callback by design
                        } else if e.mbr.max_dist_sq(candidate) <= e.mu_sq {
                            on_influenced(&e.payload);
                        } else {
                            on_undecided(&e.payload);
                        }
                    }
                }
            }
        }
        t
    }

    /// Classifies a whole **cell** (a query rectangle) against the
    /// tree in one traversal: how many objects are influenced by every
    /// point of the cell (`all`), how many by no point (`none`), and
    /// which leaf entries stay ambiguous (pushed onto `ambiguous` as
    /// re-testable handles).
    ///
    /// The rules are the point-join rules of [`Self::influence_join`]
    /// with the point metrics replaced by their rect-to-rect
    /// generalisations (both reproduce the point forms exactly on a
    /// degenerate cell — tested below):
    ///
    /// * **cell-NIB** — the cell misses the subtree's NIB union, or
    ///   `minDist(cell, node.mbr) > node.max_mu`: then every point of
    ///   the cell is farther than every μ below from every object MBR
    ///   (minDist to a subset only grows), so no point of the cell can
    ///   influence any object below (Theorem 2 over the whole cell).
    /// * **cell-IA** — `maxDist(cell, node.mbr) ≤ node.min_mu`: then
    ///   every point of the cell is within every μ below of every
    ///   position of every object below (maxDist to a subset only
    ///   shrinks), so all `count` objects are influenced at **every**
    ///   point of the cell (Theorem 1 over the whole cell).
    ///
    /// Both verdicts are monotone under cell containment (see
    /// [`Mbr::min_dist_sq_mbr`] / [`Mbr::max_dist_sq_mbr`]): a verdict
    /// reached for a cell holds for every sub-cell, which is what
    /// makes a quadtree descent that stops splitting on resolved cells
    /// sound. Every indexed object lands in exactly one class, so
    /// `all + none + ambiguous = len()`.
    // pinocchio-hot: per-cell tree traversal of the heat-map descent
    pub fn cell_join(
        &self,
        cell: &Mbr,
        ambiguous: &mut Vec<CellEntry>,
        scratch: &mut CellScratch,
    ) -> CellJoin {
        let mut join = CellJoin::default();
        let Some(root) = self.root else {
            return join;
        };
        scratch.stack.clear();
        scratch.stack.push(root);
        while let Some(id) = scratch.stack.pop() {
            let node = &self.nodes[id];
            join.traversal.nodes_visited += 1;
            if !cell.intersects(&node.nib_mbr)
                || cell.min_dist_sq_mbr(&node.mbr) > node.max_mu * node.max_mu
            {
                join.traversal.subtrees_nib += 1;
                join.none += node.count;
                continue;
            }
            if cell.max_dist_sq_mbr(&node.mbr) <= node.min_mu * node.min_mu {
                join.traversal.subtrees_ia += 1;
                join.all += node.count;
                continue;
            }
            match &node.kind {
                NodeKind::Internal { children } => scratch.stack.extend_from_slice(children),
                NodeKind::Leaf { entries } => {
                    // pinocchio-lint: allow(hot-path-alloc) -- slice `.iter()`, not the rtree's collecting `iter` the call-graph resolves it to
                    for (idx, e) in entries.iter().enumerate() {
                        if cell.min_dist_sq_mbr(&e.mbr) > e.mu_sq {
                            join.none += 1;
                        } else if cell.max_dist_sq_mbr(&e.mbr) <= e.mu_sq {
                            join.all += 1;
                        } else {
                            ambiguous.push(CellEntry {
                                node: id,
                                entry: idx,
                            });
                        }
                    }
                }
            }
        }
        join
    }

    /// Re-tests a previous cell's ambiguous `frontier` against a
    /// (smaller) cell, pushing the still-ambiguous survivors onto
    /// `ambiguous`. This is the descent step of the heat-map quadtree:
    /// a child cell only re-examines what its parent could not decide
    /// — resolved verdicts are final by containment monotonicity.
    ///
    /// Returns per-entry verdict totals; `traversal` stays zero (no
    /// tree nodes are touched).
    // pinocchio-hot: per-entry frontier refinement of the heat-map descent
    pub fn cell_join_refine(
        &self,
        cell: &Mbr,
        frontier: &[CellEntry],
        ambiguous: &mut Vec<CellEntry>,
    ) -> CellJoin {
        let mut join = CellJoin::default();
        for &ce in frontier {
            let e = self.entry(ce);
            if cell.min_dist_sq_mbr(&e.mbr) > e.mu_sq {
                join.none += 1;
            } else if cell.max_dist_sq_mbr(&e.mbr) <= e.mu_sq {
                join.all += 1;
            } else {
                ambiguous.push(ce);
            }
        }
        join
    }

    /// The payload behind an ambiguous-entry handle.
    ///
    /// # Panics
    /// Panics if the handle came from a different tree.
    pub fn cell_entry_payload(&self, ce: CellEntry) -> &T {
        &self.entry(ce).payload
    }

    /// The leaf entry behind a [`CellEntry`] handle.
    fn entry(&self, ce: CellEntry) -> &MuEntry<T> {
        match &self.nodes[ce.node].kind {
            NodeKind::Leaf { entries } => &entries[ce.entry],
            // pinocchio-lint: allow(panic-path) -- cell_join only mints CellEntry handles at leaves; an Internal here is a structural bug
            NodeKind::Internal { .. } => unreachable!("CellEntry always points at a leaf"),
        }
    }

    /// Hands every payload of the subtree rooted at `id` to `f`.
    fn for_each_payload(&self, id: NodeId, f: &mut impl FnMut(&T)) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            match &self.nodes[id].kind {
                NodeKind::Internal { children } => stack.extend_from_slice(children),
                NodeKind::Leaf { entries } => {
                    for e in entries {
                        f(&e.payload);
                    }
                }
            }
        }
    }

    /// Checks structural invariants; used by tests. Verifies that every
    /// node's aggregates (`mbr`, `nib_mbr`, `min_mu`/`max_mu`, `count`)
    /// bound its contents and that all leaves sit at the same depth.
    /// Returns the number of objects reachable from the root.
    pub fn check_invariants(&self) -> usize {
        fn walk<T: Clone>(
            tree: &MbrTree<T>,
            id: NodeId,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> u64 {
            let node = &tree.nodes[id];
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    if let Some(ld) = *leaf_depth {
                        assert_eq!(ld, depth, "leaves at different depths");
                    } else {
                        *leaf_depth = Some(depth);
                    }
                    assert!(!entries.is_empty(), "empty leaf");
                    assert!(entries.len() <= tree.max_entries, "overfull leaf");
                    for e in entries {
                        assert!(node.mbr.contains_mbr(&e.mbr), "entry MBR escapes node");
                        assert!(
                            node.nib_mbr.contains_mbr(&e.nib_mbr),
                            "entry NIB MBR escapes node"
                        );
                        let mu = e.mu_sq.sqrt();
                        assert!(
                            node.min_mu <= mu + 1e-9 && mu <= node.max_mu + 1e-9,
                            "entry μ outside node bounds"
                        );
                    }
                    assert_eq!(node.count, entries.len() as u64, "leaf count wrong");
                    node.count
                }
                NodeKind::Internal { children } => {
                    assert!(!children.is_empty(), "internal node with no children");
                    assert!(children.len() <= tree.max_entries, "overfull internal");
                    let mut count = 0;
                    for &c in children {
                        count += walk(tree, c, depth + 1, leaf_depth);
                        let child = &tree.nodes[c];
                        assert!(node.mbr.contains_mbr(&child.mbr), "child MBR escapes");
                        assert!(
                            node.nib_mbr.contains_mbr(&child.nib_mbr),
                            "child NIB MBR escapes"
                        );
                        assert!(node.min_mu <= child.min_mu, "min_mu not a lower bound");
                        assert!(node.max_mu >= child.max_mu, "max_mu not an upper bound");
                    }
                    assert_eq!(node.count, count, "internal count wrong");
                    count
                }
            }
        }
        let Some(root) = self.root else {
            assert_eq!(self.len, 0, "empty tree with nonzero len");
            return 0;
        };
        let mut leaf_depth = None;
        #[allow(clippy::cast_possible_truncation)]
        // the subtree count is at most `self.len`, which is a usize
        let count = walk(self, root, 0, &mut leaf_depth) as usize;
        assert_eq!(count, self.len, "len out of sync with contents");
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random `(mbr, μ, id)` items.
    fn pseudo_items(n: usize, seed: u64) -> Vec<(Mbr, f64, usize)> {
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let cx = next() * 40.0;
                let cy = next() * 25.0;
                let w = next() * 20.0;
                let h = next() * 12.0;
                let mbr = Mbr::new(Point::new(cx, cy), Point::new(cx + w, cy + h));
                // μ spread over three orders of magnitude, like
                // minMaxRadius across position counts 3..600.
                let mu = 0.5 * (1000.0f64).powf(next());
                (mbr, mu, i)
            })
            .collect()
    }

    /// Per-item ground truth of the three-way classification.
    fn classify(items: &[(Mbr, f64, usize)], c: &Point) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let (mut inf, mut exc, mut und) = (Vec::new(), Vec::new(), Vec::new());
        for (mbr, mu, i) in items {
            if mbr.min_dist_sq(c) > mu * mu {
                exc.push(*i);
            } else if mbr.max_dist_sq(c) <= mu * mu {
                inf.push(*i);
            } else {
                und.push(*i);
            }
        }
        (inf, exc, und)
    }

    /// Runs the join and returns (influenced count, excluded count,
    /// undecided ids, per-entry influenced ids available at leaf level).
    fn run_join(tree: &MbrTree<usize>, c: &Point) -> (u64, u64, Vec<usize>, JoinTraversal) {
        let (mut inf, mut exc, mut und) = (0u64, 0u64, Vec::new());
        let t = tree.influence_join(c, |e| match e {
            JoinEvent::SubtreeInfluenced { count } => inf += count,
            JoinEvent::SubtreeExcluded { count } => exc += count,
            JoinEvent::EntryInfluenced(_) => inf += 1,
            JoinEvent::EntryExcluded(_) => exc += 1,
            JoinEvent::EntryUndecided(&i) => und.push(i),
        });
        und.sort_unstable();
        (inf, exc, und, t)
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree: MbrTree<usize> = MbrTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.bounds(), None);
        assert_eq!(tree.height(), 0);
        let t = tree.influence_join(&Point::ORIGIN, |_| panic!("no events on empty tree"));
        assert_eq!(t, JoinTraversal::default());
        assert_eq!(tree.check_invariants(), 0);
    }

    #[test]
    fn join_matches_per_item_classification() {
        // The traversal must agree with the brute-force per-object rules
        // exactly: same influenced/excluded totals, same undecided set.
        // Bulk decisions are conservative (only fire when uniform), so an
        // item can never migrate between classes.
        let items = pseudo_items(300, 7);
        let tree = MbrTree::bulk_load(items.clone());
        assert_eq!(tree.check_invariants(), 300);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..60 {
            let c = Point::new(next() * 60.0 - 10.0, next() * 40.0 - 8.0);
            let (want_inf, want_exc, want_und) = classify(&items, &c);
            let (inf, exc, und, t) = run_join(&tree, &c);
            assert_eq!(inf, want_inf.len() as u64, "influenced at {c}");
            assert_eq!(exc, want_exc.len() as u64, "excluded at {c}");
            assert_eq!(und, want_und, "undecided at {c}");
            assert!(t.nodes_visited >= 1);
        }
    }

    #[test]
    fn subtree_rules_fire_on_homogeneous_bands() {
        // All-huge-μ items: a candidate in the middle is within μ of
        // everything, and the root alone should decide it (subtree-IA at
        // the root, one node visited). All-tiny-μ far items: excluded in
        // bulk high up.
        let huge: Vec<(Mbr, f64, usize)> = (0..64)
            .map(|i| {
                let x = (i % 8) as f64;
                let y = (i / 8) as f64;
                (
                    Mbr::new(Point::new(x, y), Point::new(x + 1.0, y + 1.0)),
                    500.0,
                    i,
                )
            })
            .collect();
        let tree = MbrTree::bulk_load(huge);
        let (inf, _, und, t) = run_join(&tree, &Point::new(4.0, 4.0));
        assert_eq!(inf, 64);
        assert!(und.is_empty());
        assert_eq!(t.subtrees_ia, 1, "root should decide everything");
        assert_eq!(t.nodes_visited, 1);

        let tiny: Vec<(Mbr, f64, usize)> = (0..64)
            .map(|i| {
                let x = (i % 8) as f64;
                let y = (i / 8) as f64;
                (
                    Mbr::new(Point::new(x, y), Point::new(x + 0.2, y + 0.2)),
                    0.1,
                    i,
                )
            })
            .collect();
        let tree = MbrTree::bulk_load(tiny);
        let (inf, exc, und, t) = run_join(&tree, &Point::new(500.0, 500.0));
        assert_eq!((inf, exc), (0, 64));
        assert!(und.is_empty());
        assert_eq!(t.subtrees_nib, 1, "root should exclude everything");
    }

    #[test]
    fn mixed_mu_bands_stay_separable() {
        // Half tiny-μ, half huge-μ, spatially interleaved: μ-banded
        // packing must keep the halves in disjoint subtrees so that a
        // central candidate bulk-accepts the huge-μ half instead of
        // descending to every leaf.
        let items: Vec<(Mbr, f64, usize)> = (0..128)
            .map(|i| {
                let x = (i % 16) as f64;
                let y = (i / 16) as f64;
                let mu = if i % 2 == 0 { 0.05 } else { 400.0 };
                (
                    Mbr::new(Point::new(x, y), Point::new(x + 0.5, y + 0.5)),
                    mu,
                    i,
                )
            })
            .collect();
        let tree = MbrTree::bulk_load(items.clone());
        tree.check_invariants();
        let c = Point::new(8.0, 4.0);
        let (want_inf, want_exc, want_und) = classify(&items, &c);
        let (inf, exc, und, t) = run_join(&tree, &c);
        assert_eq!(inf, want_inf.len() as u64);
        assert_eq!(exc, want_exc.len() as u64);
        assert_eq!(und, want_und);
        assert!(
            t.subtrees_ia >= 1,
            "huge-μ band should be accepted in bulk: {t:?}"
        );
    }

    #[test]
    fn entry_join_enumerates_what_count_join_counts() {
        // The payload-enumerating traversal must agree with both the
        // count-reporting traversal and the brute-force classification:
        // same influenced set, same undecided set, exclusions silent.
        let items = pseudo_items(300, 13);
        let tree = MbrTree::bulk_load(items.clone());
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..40 {
            let c = Point::new(next() * 60.0 - 10.0, next() * 40.0 - 8.0);
            let (want_inf, want_exc, want_und) = classify(&items, &c);
            let (mut inf, mut und) = (Vec::new(), Vec::new());
            let t = tree.influence_join_entries(&c, |&i| inf.push(i), |&i| und.push(i));
            inf.sort_unstable();
            und.sort_unstable();
            let mut want_inf = want_inf;
            want_inf.sort_unstable();
            assert_eq!(inf, want_inf, "influenced at {c}");
            assert_eq!(und, want_und, "undecided at {c}");
            assert_eq!(
                inf.len() + und.len() + want_exc.len(),
                items.len(),
                "accounting at {c}"
            );
            // Count-join totals agree.
            let (cinf, cexc, cund, _) = run_join(&tree, &c);
            assert_eq!(cinf as usize, inf.len());
            assert_eq!(cexc as usize, want_exc.len());
            assert_eq!(cund, und);
            assert!(t.nodes_visited >= 1);
        }
    }

    #[test]
    fn zero_mu_entries_are_handled() {
        // μ = 0 (degenerate: influenced only exactly on the MBR, and only
        // if the MBR is a point) must not panic or misclassify.
        let items = vec![
            (Mbr::from_point(Point::new(1.0, 1.0)), 0.0, 0usize),
            (Mbr::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0)), 0.0, 1),
        ];
        let tree = MbrTree::bulk_load(items);
        tree.check_invariants();
        // On the point MBR with μ = 0: minDist = maxDist = 0 ⇒ influenced.
        let (inf, exc, und, _) = run_join(&tree, &Point::new(1.0, 1.0));
        assert_eq!((inf, exc), (1, 1));
        assert!(und.is_empty());
        // Inside the extended MBR: minDist 0 ≤ 0, maxDist > 0 ⇒ undecided.
        let (_, _, und, _) = run_join(&tree, &Point::new(3.5, 3.5));
        assert_eq!(und, vec![1]);
    }

    #[test]
    fn single_item_and_exact_capacity() {
        let tree = MbrTree::bulk_load(vec![(
            Mbr::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)),
            1.5,
            42usize,
        )]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        tree.check_invariants();

        let tree = MbrTree::bulk_load(pseudo_items(DEFAULT_MAX_ENTRIES, 3));
        assert_eq!(tree.height(), 1, "exactly one full leaf");
        tree.check_invariants();

        let tree = MbrTree::bulk_load_with_capacity(pseudo_items(100, 5), 4);
        assert!(tree.height() >= 3);
        tree.check_invariants();
    }

    #[test]
    fn traversal_prunes_nodes() {
        // With μ-banded packing and a far-away candidate, the traversal
        // must touch far fewer nodes than a full walk.
        let items = pseudo_items(1000, 11);
        let tree = MbrTree::bulk_load(items);
        let total_nodes = tree.nodes.len() as u64;
        let (_, _, _, t) = run_join(&tree, &Point::new(-4000.0, -4000.0));
        assert!(
            t.nodes_visited < total_nodes / 2,
            "expected pruning: visited {} of {}",
            t.nodes_visited,
            total_nodes
        );
        assert!(t.subtrees_nib >= 1);
    }

    /// Runs the cell join and returns (all, none, ambiguous ids,
    /// traversal counters).
    fn run_cell_join(tree: &MbrTree<usize>, cell: &Mbr) -> (u64, u64, Vec<usize>, JoinTraversal) {
        let mut frontier = Vec::new();
        let mut scratch = CellScratch::default();
        let join = tree.cell_join(cell, &mut frontier, &mut scratch);
        let mut ids: Vec<usize> = frontier
            .iter()
            .map(|&ce| *tree.cell_entry_payload(ce))
            .collect();
        ids.sort_unstable();
        (join.all, join.none, ids, join.traversal)
    }

    /// Sample points covering a cell: corners, centre, edge midpoints.
    fn cell_samples(cell: &Mbr) -> Vec<Point> {
        let mut pts = cell.corners().to_vec();
        pts.push(cell.center());
        let (lo, hi, c) = (cell.lo(), cell.hi(), cell.center());
        pts.push(Point::new(c.x, lo.y));
        pts.push(Point::new(c.x, hi.y));
        pts.push(Point::new(lo.x, c.y));
        pts.push(Point::new(hi.x, c.y));
        pts
    }

    #[test]
    fn degenerate_cell_join_matches_point_join() {
        // On a zero-area cell the rect-to-rect metrics reproduce the
        // point metrics exactly, so the cell join must agree with the
        // point join verdict for verdict — including the traversal
        // counters, since both walk the same pruned tree.
        let items = pseudo_items(300, 7);
        let tree = MbrTree::bulk_load(items);
        let mut state = 0xCE11u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..40 {
            let c = Point::new(next() * 60.0 - 10.0, next() * 40.0 - 8.0);
            let (inf, exc, und, t) = run_join(&tree, &c);
            let (all, none, amb, ct) = run_cell_join(&tree, &Mbr::from_point(c));
            assert_eq!((all, none), (inf, exc), "counts at {c}");
            assert_eq!(amb, und, "ambiguous set at {c}");
            assert_eq!(ct, t, "traversal at {c}");
        }
    }

    #[test]
    fn cell_join_verdicts_hold_at_every_point_of_the_cell() {
        // Soundness: an object the cell join decides (not on the
        // ambiguous frontier) must carry the same point-level verdict
        // at every sampled point of the cell — ALL objects influenced
        // everywhere, NONE objects excluded everywhere.
        let items = pseudo_items(250, 21);
        let tree = MbrTree::bulk_load(items.clone());
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..30 {
            let lo = Point::new(next() * 60.0 - 10.0, next() * 40.0 - 8.0);
            let cell = Mbr::new(lo, Point::new(lo.x + next() * 15.0, lo.y + next() * 15.0));
            let (all, none, amb, _) = run_cell_join(&tree, &cell);
            assert_eq!(
                all + none + amb.len() as u64,
                items.len() as u64,
                "accounting at {cell:?}"
            );
            let (mut saw_all, mut saw_none) = (0u64, 0u64);
            for (mbr, mu, i) in &items {
                if amb.binary_search(i).is_ok() {
                    continue; // undecided: no claim to check
                }
                // The decided verdict must be point-uniform over the cell.
                let influenced_at = |p: &Point| mbr.max_dist_sq(p) <= mu * mu;
                let excluded_at = |p: &Point| mbr.min_dist_sq(p) > mu * mu;
                let samples = cell_samples(&cell);
                if influenced_at(&samples[0]) {
                    assert!(
                        samples.iter().all(influenced_at),
                        "cell-decided object {i} flips verdict inside {cell:?}"
                    );
                    saw_all += 1;
                } else {
                    assert!(
                        samples.iter().all(excluded_at),
                        "cell-decided object {i} flips verdict inside {cell:?}"
                    );
                    saw_none += 1;
                }
            }
            assert_eq!((saw_all, saw_none), (all, none), "totals at {cell:?}");
        }
    }

    #[test]
    fn cell_join_refine_narrows_the_frontier() {
        // Descending into a quadrant: refinement of the parent's
        // frontier must (a) account for every frontier entry, and
        // (b) agree with the per-item rules on a degenerate sub-cell.
        let items = pseudo_items(250, 33);
        let tree = MbrTree::bulk_load(items.clone());
        let cell = Mbr::new(Point::new(5.0, 5.0), Point::new(45.0, 30.0));
        let mut frontier = Vec::new();
        let mut scratch = CellScratch::default();
        let parent = tree.cell_join(&cell, &mut frontier, &mut scratch);

        // Quadrant split: each child refines only the parent frontier.
        let c = cell.center();
        let child = Mbr::new(cell.lo(), c);
        let mut survivors = Vec::new();
        let refined = tree.cell_join_refine(&child, &frontier, &mut survivors);
        assert_eq!(
            refined.all + refined.none + survivors.len() as u64,
            frontier.len() as u64,
            "refinement accounts for every frontier entry"
        );
        assert_eq!(refined.traversal, JoinTraversal::default());

        // Degenerate sub-cell: refinement must match the per-item rules.
        let p = Point::new(12.0, 9.0);
        let mut leaf_survivors = Vec::new();
        let exact = tree.cell_join_refine(&Mbr::from_point(p), &frontier, &mut leaf_survivors);
        let frontier_ids: Vec<usize> = frontier
            .iter()
            .map(|&ce| *tree.cell_entry_payload(ce))
            .collect();
        let (mut want_all, mut want_none, mut want_und) = (0u64, 0u64, Vec::new());
        for (mbr, mu, i) in &items {
            if !frontier_ids.contains(i) {
                continue;
            }
            if mbr.min_dist_sq(&p) > mu * mu {
                want_none += 1;
            } else if mbr.max_dist_sq(&p) <= mu * mu {
                want_all += 1;
            } else {
                want_und.push(*i);
            }
        }
        assert_eq!((exact.all, exact.none), (want_all, want_none));
        let mut got_und: Vec<usize> = leaf_survivors
            .iter()
            .map(|&ce| *tree.cell_entry_payload(ce))
            .collect();
        got_und.sort_unstable();
        want_und.sort_unstable();
        assert_eq!(got_und, want_und);
        // Parent's bulk decisions stay final: parent.all is a lower
        // bound that the degenerate sub-cell can only confirm.
        assert!(parent.all + exact.all <= items.len() as u64);
    }

    #[test]
    fn cell_join_on_empty_tree() {
        let tree: MbrTree<usize> = MbrTree::bulk_load(Vec::new());
        let mut frontier = Vec::new();
        let mut scratch = CellScratch::default();
        let join = tree.cell_join(
            &Mbr::new(Point::ORIGIN, Point::new(1.0, 1.0)),
            &mut frontier,
            &mut scratch,
        );
        assert_eq!(join, CellJoin::default());
        assert!(frontier.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_mu_rejected() {
        let _ = MbrTree::bulk_load(vec![(Mbr::from_point(Point::ORIGIN), -1.0, 0usize)]);
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn degenerate_capacity_rejected() {
        let _: MbrTree<usize> = MbrTree::bulk_load_with_capacity(Vec::new(), 1);
    }
}
