//! Property-based tests of the paper's theorems and the solver
//! invariants, driven by proptest over random configurations.

use pinocchio::core::A2d;
use pinocchio::geo::{InfluenceRegions, Mbr, RegionVerdict};
use pinocchio::prelude::*;
use pinocchio::prob::{min_max_radius, ProbabilityFunction};
use proptest::prelude::*;

fn arb_point(extent: f64) -> impl Strategy<Value = Point> {
    (-extent..extent, -extent..extent).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_object(max_positions: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(20.0), 1..=max_positions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1 / Lemma 2: a candidate inside the influence-arcs region
    /// really does influence the object (checked against the exact
    /// cumulative probability).
    #[test]
    fn influence_arcs_rule_is_safe(
        positions in arb_object(12),
        candidate in arb_point(30.0),
        tau in 0.05f64..0.95,
    ) {
        let pf = PowerLawPf::paper_default();
        let Some(mu) = min_max_radius(&pf, tau, positions.len()) else {
            // Object can never be influenced: verify that directly.
            let eval = pinocchio::prob::CumulativeProbability::new(pf, pinocchio::geo::Euclidean);
            prop_assert!(eval.cumulative(&candidate, &positions) < tau);
            return Ok(());
        };
        let mbr = Mbr::from_points(&positions).unwrap();
        let regions = InfluenceRegions::new(mbr, mu);
        let eval = pinocchio::prob::CumulativeProbability::new(pf, pinocchio::geo::Euclidean);
        let pr = eval.cumulative(&candidate, &positions);
        match regions.classify(&candidate) {
            RegionVerdict::Influences => prop_assert!(
                pr >= tau - 1e-9,
                "IA claimed influence but Pr = {pr} < tau = {tau}"
            ),
            RegionVerdict::CannotInfluence => prop_assert!(
                pr < tau + 1e-9,
                "NIB claimed no influence but Pr = {pr} >= tau = {tau}"
            ),
            RegionVerdict::Undecided => {} // anything goes
        }
    }

    /// Definition 1 monotonicity: adding a position never lowers the
    /// cumulative probability.
    #[test]
    fn cumulative_probability_is_monotone_in_positions(
        positions in arb_object(15),
        extra in arb_point(20.0),
        candidate in arb_point(30.0),
    ) {
        let eval = pinocchio::prob::CumulativeProbability::new(
            PowerLawPf::paper_default(),
            pinocchio::geo::Euclidean,
        );
        let before = eval.cumulative(&candidate, &positions);
        let mut more = positions.clone();
        more.push(extra);
        let after = eval.cumulative(&candidate, &more);
        prop_assert!(after >= before - 1e-12);
    }

    /// Lemma 4 / Strategy 2: early stopping never changes the verdict.
    #[test]
    fn early_stop_verdict_equals_exhaustive(
        positions in arb_object(20),
        candidate in arb_point(30.0),
        tau in 0.05f64..0.95,
    ) {
        let eval = pinocchio::prob::CumulativeProbability::new(
            PowerLawPf::paper_default(),
            pinocchio::geo::Euclidean,
        );
        let exact = eval.influences(&candidate, &positions, tau);
        let es = eval.influences_early_stop(&candidate, &positions, tau);
        prop_assert_eq!(es.influenced, exact);
        prop_assert!(es.positions_evaluated <= positions.len());
    }

    /// All four solvers return the same optimum on random instances.
    #[test]
    fn solvers_agree_on_random_instances(
        raw_objects in prop::collection::vec(arb_object(8), 1..12),
        candidates in prop::collection::vec(arb_point(25.0), 1..10),
        tau in 0.1f64..0.9,
    ) {
        let objects: Vec<MovingObject> = raw_objects
            .into_iter()
            .enumerate()
            .map(|(i, ps)| MovingObject::new(i as u64, ps))
            .collect();
        let problem = PrimeLs::builder()
            .objects(objects)
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap();
        let na = problem.solve(Algorithm::Naive);
        for algorithm in [Algorithm::Pinocchio, Algorithm::PinocchioVo, Algorithm::PinocchioVoStar] {
            let r = problem.solve(algorithm);
            prop_assert_eq!(r.best_candidate, na.best_candidate, "{} best", algorithm);
            prop_assert_eq!(r.max_influence, na.max_influence, "{} influence", algorithm);
        }
    }

    /// `minMaxRadius` monotonicity (Definition 5 remark): grows with n,
    /// shrinks as τ grows.
    #[test]
    fn min_max_radius_monotonicity(
        n in 1usize..100,
        tau_lo in 0.05f64..0.5,
        delta in 0.01f64..0.4,
    ) {
        let pf = PowerLawPf::paper_default();
        let tau_hi = tau_lo + delta;
        if let (Some(lo), Some(hi)) = (
            min_max_radius(&pf, tau_lo, n),
            min_max_radius(&pf, tau_hi, n),
        ) {
            prop_assert!(hi <= lo + 1e-12, "radius must shrink as tau grows");
        }
        if let (Some(small_n), Some(big_n)) = (
            min_max_radius(&pf, tau_lo, n),
            min_max_radius(&pf, tau_lo, n + 1),
        ) {
            prop_assert!(big_n >= small_n - 1e-12, "radius must grow with n");
        }
    }

    /// A2d marks exactly the objects whose required per-position
    /// probability is unattainable.
    #[test]
    fn a2d_influenceability_matches_definition(
        raw_objects in prop::collection::vec(arb_object(6), 1..10),
        tau in 0.05f64..0.99,
    ) {
        let pf = PowerLawPf::paper_default();
        let objects: Vec<MovingObject> = raw_objects
            .into_iter()
            .enumerate()
            .map(|(i, ps)| MovingObject::new(i as u64, ps))
            .collect();
        let a2d = A2d::build(&objects, &pf, tau);
        for (o, e) in objects.iter().zip(a2d.entries()) {
            let expected = min_max_radius(&pf, tau, o.position_count()).is_some();
            prop_assert_eq!(e.regions.is_some(), expected);
        }
    }

    /// The R-tree returns exactly the linear-scan answer for circle
    /// queries over random point sets.
    #[test]
    fn rtree_circle_query_matches_linear_scan(
        points in prop::collection::vec(arb_point(50.0), 1..200),
        center in arb_point(50.0),
        radius in 0.0f64..40.0,
    ) {
        let tree: pinocchio::index::RTree<usize> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let mut got = Vec::new();
        tree.query_circle(&center, radius, |_, &i| got.push(i));
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.euclidean(&center) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// PF inverses really invert across the whole family (power law with
    /// random parameters).
    #[test]
    fn power_law_inverse_round_trips(
        rho in 0.1f64..1.0,
        lambda in 0.3f64..2.0,
        d in 0.0f64..100.0,
    ) {
        let pf = PowerLawPf::new(rho, 1.0, lambda);
        let p = pf.prob(d);
        let d2 = pf.inverse(p).expect("attained probability must invert");
        prop_assert!((d - d2).abs() < 1e-6, "d = {d}, inverse = {d2}");
    }
}
