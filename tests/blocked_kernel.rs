//! Cross-kernel exactness: every solver, run with the blocked
//! structure-of-arrays kernel or the log-domain tiled kernel, must
//! reproduce the scalar kernel's results — winner index, influence
//! vectors, early-stop verdicts — across random worlds, thresholds,
//! thread counts, and the adversarial tie-heavy / all-uninfluenceable
//! corners. The solver loop covers the paper's four algorithms plus the
//! PIN-JOIN extension.
//!
//! Assertion tiers (see DESIGN.md §15):
//! - Scalar vs Blocked: bit-identical verdicts *and* identical pair
//!   sequences (`validated + skipped` equal per solver).
//! - Scalar vs LogBlocked: bit-identical verdicts (the guard band's
//!   exact fallback makes this unconditional) plus the accounting
//!   identity `accounted_pairs()` — per-bucket stats may legitimately
//!   drift because candidate tiling publishes bounds mid-tile.

use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;

fn world(users: usize, candidates: usize, seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, seed ^ 0xABCD);
    (d.objects().to_vec(), cands)
}

fn build(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    tau: f64,
    kernel: EvalKernel,
) -> PrimeLs<PowerLawPf> {
    PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(tau)
        .evaluation_kernel(kernel)
        .build()
        .unwrap()
}

/// Runs every solver under both kernels and asserts exact agreement on
/// everything answer-shaped (winners, influence counts, full influence
/// vectors, top-k rankings, weighted optima) for 1/2/8 threads.
fn assert_kernels_identical(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    tau: f64,
    ctx: &str,
) {
    let scalar = build(objects.clone(), candidates.clone(), tau, EvalKernel::Scalar);
    let blocked = build(
        objects.clone(),
        candidates.clone(),
        tau,
        EvalKernel::Blocked,
    );
    let log = build(objects, candidates, tau, EvalKernel::LogBlocked);

    for algorithm in Algorithm::WITH_EXTENSIONS {
        let s = scalar.solve(algorithm);
        let b = blocked.solve(algorithm);
        let l = log.solve(algorithm);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "{algorithm} winner diverges under the blocked kernel ({ctx})"
        );
        assert_eq!(
            s.influences, b.influences,
            "{algorithm} influence vector diverges ({ctx})"
        );
        assert_eq!(
            s.stats.validated_pairs + s.stats.pairs_skipped_by_bounds,
            b.stats.validated_pairs + b.stats.pairs_skipped_by_bounds,
            "{algorithm}: identical verdicts must walk identical pair sequences ({ctx})"
        );
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (l.best_candidate, l.max_influence),
            "{algorithm} winner diverges under the log-blocked kernel ({ctx})"
        );
        assert_eq!(
            s.influences, l.influences,
            "{algorithm} influence vector diverges under the log-blocked kernel ({ctx})"
        );
        assert_eq!(
            s.stats.accounted_pairs(),
            l.stats.accounted_pairs(),
            "{algorithm}: every kernel must account the same pair space ({ctx})"
        );
        assert_eq!(
            s.stats.log_band_fallbacks + b.stats.log_band_fallbacks,
            0,
            "{algorithm}: only the log-blocked kernel may fall back ({ctx})"
        );
    }

    for threads in [1usize, 2, 8] {
        let s = pinocchio::core::parallel::solve_vo(&scalar, threads);
        let b = pinocchio::core::parallel::solve_vo(&blocked, threads);
        let l = pinocchio::core::parallel::solve_vo(&log, threads);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "parallel VO diverges (threads={threads}, {ctx})"
        );
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (l.best_candidate, l.max_influence),
            "parallel VO diverges under the log-blocked kernel (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::parallel::solve_naive(&scalar, threads);
        let b = pinocchio::core::parallel::solve_naive(&blocked, threads);
        let l = pinocchio::core::parallel::solve_naive(&log, threads);
        assert_eq!(
            s.influences, b.influences,
            "parallel NA (threads={threads}, {ctx})"
        );
        assert_eq!(
            s.influences, l.influences,
            "parallel NA under the log-blocked kernel (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::parallel::solve_pinocchio(&scalar, threads);
        let b = pinocchio::core::parallel::solve_pinocchio(&blocked, threads);
        let l = pinocchio::core::parallel::solve_pinocchio(&log, threads);
        assert_eq!(
            s.influences, b.influences,
            "parallel PIN (threads={threads}, {ctx})"
        );
        assert_eq!(
            s.influences, l.influences,
            "parallel PIN under the log-blocked kernel (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::join::solve_par(&scalar, threads);
        let b = pinocchio::core::join::solve_par(&blocked, threads);
        let l = pinocchio::core::join::solve_par(&log, threads);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "parallel PIN-JOIN diverges (threads={threads}, {ctx})"
        );
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (l.best_candidate, l.max_influence),
            "parallel PIN-JOIN diverges under the log-blocked kernel (threads={threads}, {ctx})"
        );
    }

    for k in [1usize, 5] {
        let s = pinocchio::core::solve_top_k(&scalar, k);
        let b = pinocchio::core::solve_top_k(&blocked, k);
        let l = pinocchio::core::solve_top_k(&log, k);
        assert_eq!(s, b, "top-{k} ranking diverges ({ctx})");
        assert_eq!(
            s, l,
            "top-{k} ranking diverges under the log-blocked kernel ({ctx})"
        );
    }

    let weights: Vec<f64> = (0..scalar.objects().len())
        .map(|i| 0.5 + (i % 7) as f64)
        .collect();
    let s = pinocchio::core::solve_weighted(&scalar, &weights);
    let b = pinocchio::core::solve_weighted(&blocked, &weights);
    let l = pinocchio::core::solve_weighted(&log, &weights);
    assert_eq!(
        s.best_candidate, b.best_candidate,
        "weighted winner ({ctx})"
    );
    assert_eq!(
        s.weighted_influences, b.weighted_influences,
        "weighted influence vector ({ctx})"
    );
    assert_eq!(
        s.best_candidate, l.best_candidate,
        "weighted winner under the log-blocked kernel ({ctx})"
    );
    assert_eq!(
        s.weighted_influences, l.weighted_influences,
        "weighted influence vector under the log-blocked kernel ({ctx})"
    );
}

#[test]
fn kernels_agree_on_random_worlds() {
    for seed in [1u64, 7, 42, 1234] {
        for tau in [0.3, 0.5, 0.7] {
            let (objects, candidates) = world(70, 35, seed);
            assert_kernels_identical(objects, candidates, tau, &format!("seed={seed} tau={tau}"));
        }
    }
}

#[test]
fn kernels_agree_on_tie_heavy_worlds() {
    // Two mirror-image clusters with symmetric candidates: influence
    // ties everywhere, so any kernel-induced verdict flip would move the
    // smallest-index tie-break and fail loudly.
    let mut objects = Vec::new();
    for i in 0..12u64 {
        let base = (i % 2) as f64 * 10.0;
        objects.push(MovingObject::new(
            i,
            (0..20)
                .map(|k| Point::new(base + (k % 5) as f64 * 0.1, (k / 5) as f64 * 0.1))
                .collect(),
        ));
    }
    let candidates = vec![
        Point::new(10.2, 0.2),
        Point::new(0.2, 0.2),
        Point::new(10.2, 0.2),
        Point::new(5.0, 5.0),
    ];
    for tau in [0.3, 0.5, 0.7] {
        assert_kernels_identical(
            objects.clone(),
            candidates.clone(),
            tau,
            &format!("ties tau={tau}"),
        );
    }
}

#[test]
fn kernels_agree_on_all_uninfluenceable_worlds() {
    // τ = 0.95 > PF(0) = 0.9 with single-position objects: nothing can
    // ever be influenced; both kernels must return influence 0 at
    // candidate 0 through every solver.
    let objects: Vec<MovingObject> = (0..10)
        .map(|i| MovingObject::new(i, vec![Point::new(i as f64, -(i as f64))]))
        .collect();
    let candidates = vec![
        Point::new(1.0, 1.0),
        Point::new(2.0, 2.0),
        Point::new(3.0, 3.0),
    ];
    assert_kernels_identical(objects, candidates, 0.95, "all-uninfluenceable");
}

#[test]
fn blocked_position_accounting_is_total() {
    // Blocked-kernel invariant at solver level: for NA (which validates
    // every pair exhaustively) evaluated + skipped must equal the full
    // pair-position space, and some blocks must actually prune on a
    // spread-out world.
    let (objects, candidates) = world(60, 30, 9);
    let total_pair_positions: u64 = objects
        .iter()
        .map(|o| o.position_count() as u64)
        .sum::<u64>()
        * candidates.len() as u64;
    let blocked = build(objects, candidates, 0.7, EvalKernel::Blocked);
    let r = blocked.solve(Algorithm::Naive);
    assert_eq!(
        r.stats.positions_evaluated + r.stats.positions_skipped_by_blocks,
        total_pair_positions,
        "skipped + evaluated must cover every (pair, position)"
    );
    assert!(
        r.stats.blocks_pruned > 0,
        "expected some block-level pruning"
    );
    assert!(
        r.stats.positions_evaluated < total_pair_positions,
        "blocked NA should skip a nonzero share of positions"
    );
}

#[test]
fn log_blocked_position_accounting_is_total() {
    // Log-kernel invariant at solver level: for NA, evaluated + skipped
    // must still cover the full pair-position space exactly once — a
    // guard-band fallback re-resolves a pair but must not double-count
    // its positions.
    let (objects, candidates) = world(60, 30, 9);
    let total_pair_positions: u64 = objects
        .iter()
        .map(|o| o.position_count() as u64)
        .sum::<u64>()
        * candidates.len() as u64;
    let log = build(objects, candidates, 0.7, EvalKernel::LogBlocked);
    let r = log.solve(Algorithm::Naive);
    assert_eq!(
        r.stats.positions_evaluated + r.stats.positions_skipped_by_blocks,
        total_pair_positions,
        "skipped + evaluated must cover every (pair, position)"
    );
    assert!(
        r.stats.blocks_pruned > 0,
        "expected some block-level pruning"
    );
    assert!(
        r.stats.positions_evaluated < total_pair_positions,
        "log-blocked NA should skip a nonzero share of positions"
    );
}

#[test]
fn early_stop_toggle_is_irrelevant_under_blocked_kernel() {
    // The blocked kernel subsumes Strategy 2; both toggle settings must
    // produce identical verdicts *and identical costs* (the kernel
    // ignores the flag), unlike the scalar path where the flag trades
    // positions for exactness bookkeeping.
    let (objects, candidates) = world(50, 25, 17);
    let blocked = build(objects, candidates, 0.5, EvalKernel::Blocked);
    let with_s2 = pinocchio::core::solve_with_options(&blocked, true, true);
    let without_s2 = pinocchio::core::solve_with_options(&blocked, true, false);
    assert_eq!(with_s2.best_candidate, without_s2.best_candidate);
    assert_eq!(with_s2.max_influence, without_s2.max_influence);
    assert_eq!(
        with_s2.stats, without_s2.stats,
        "the blocked kernel must ignore the early-stop flag entirely"
    );
}

#[test]
fn early_stop_toggle_is_irrelevant_under_log_blocked_kernel() {
    // Same contract for the log-domain kernel: block bounds subsume
    // Strategy 2, so the flag changes neither verdicts nor costs.
    let (objects, candidates) = world(50, 25, 17);
    let log = build(objects, candidates, 0.5, EvalKernel::LogBlocked);
    let with_s2 = pinocchio::core::solve_with_options(&log, true, true);
    let without_s2 = pinocchio::core::solve_with_options(&log, true, false);
    assert_eq!(with_s2.best_candidate, without_s2.best_candidate);
    assert_eq!(with_s2.max_influence, without_s2.max_influence);
    assert_eq!(
        with_s2.stats, without_s2.stats,
        "the log-blocked kernel must ignore the early-stop flag entirely"
    );
}

#[test]
fn log_blocked_downgrades_when_pf_defeats_the_table() {
    // A PF with PF(0) = 1 makes ln(1 − PF) unbounded near zero, so the
    // coefficient table is unbuildable. The problem must transparently
    // downgrade LogBlocked to the blocked kernel and keep every verdict.
    #[derive(Clone, Debug)]
    struct Saturated;
    impl ProbabilityFunction for Saturated {
        fn prob(&self, d: f64) -> f64 {
            1.0 / (1.0 + d * d)
        }
        fn inverse(&self, p: f64) -> Option<f64> {
            (p > 0.0 && p <= 1.0).then(|| (1.0 / p - 1.0).sqrt())
        }
        fn name(&self) -> &'static str {
            "saturated"
        }
    }
    let (objects, candidates) = world(40, 20, 3);
    let mk = |kernel| {
        PrimeLs::builder()
            .objects(objects.clone())
            .candidates(candidates.clone())
            .probability_function(Saturated)
            .tau(0.6)
            .evaluation_kernel(kernel)
            .build()
            .unwrap()
    };
    let scalar = mk(EvalKernel::Scalar);
    let log = mk(EvalKernel::LogBlocked);
    assert!(
        log.log_pf_table().is_none(),
        "PF(0) = 1 must defeat table construction"
    );
    for algorithm in Algorithm::WITH_EXTENSIONS {
        let s = scalar.solve(algorithm);
        let l = log.solve(algorithm);
        assert_eq!(s.influences, l.influences, "{algorithm} downgrade verdicts");
        assert_eq!(
            l.stats.log_band_fallbacks, 0,
            "{algorithm}: a downgraded kernel never reaches the log path"
        );
    }
}
