//! Fig. 9 — scalability in the number of objects.
//!
//! Running time of the four algorithms on 2k..10k objects sampled from
//! the Gowalla-like dataset, against the same 600-candidate group
//! (τ = 0.7). Expected shape (paper): qualitatively the same ordering as
//! Fig. 8 — PIN-VO best, then PIN, PIN-VO*, NA.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::{sample_candidate_group, sample_objects};
use pinocchio_eval::Table;
use pinocchio_prob::PowerLawPf;

fn main() {
    let d = dataset(DatasetKind::Gowalla);
    let (_, candidates) = sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 9);

    let full = d.objects().len();
    let sweep: Vec<usize> = [2_000usize, 4_000, 6_000, 8_000, 10_000]
        .iter()
        .map(|&k| k.min(full))
        .collect();

    let mut table = Table::new(
        "Fig. 9 (G): running time vs #objects (600 candidates)",
        &["r", "NA", "PIN", "PIN-VO", "PIN-VO*", "max inf"],
    );
    let mut record = Vec::new();
    for (i, &r_count) in sweep.iter().enumerate() {
        let objects = sample_objects(&d, r_count, 17 + i as u64);
        let sub = d.with_objects(objects);
        let p = problem(
            &sub,
            candidates.clone(),
            PowerLawPf::paper_default(),
            defaults::TAU,
        );
        let mut row = vec![r_count.to_string()];
        let mut times = serde_json::Map::new();
        let mut max_inf = 0u32;
        for algorithm in Algorithm::ALL {
            let (res, secs) = timed_solve(&p, algorithm);
            row.push(fmt_secs(secs));
            times.insert(algorithm.label().to_string(), serde_json::json!(secs));
            max_inf = res.max_influence;
        }
        row.push(max_inf.to_string());
        table.push_row(row);
        record.push(serde_json::json!({ "objects": r_count, "seconds": times }));
    }
    println!("{table}");
    write_record("fig09_scal_objects", &serde_json::json!(record));
}
