//! Brute-force oracle for the heat-map subsystem.
//!
//! Every emitted tile's `[lo, hi]` band is checked against the exact
//! per-point influence count on a dense in-tile point grid, the centre
//! `sample` against the exact count at the centre, and `top_region`
//! against an argmax scan over the full heat map — across random
//! seeds × τ × all three evaluation kernels.

use pinocchio_core::{EvalKernel, PrimeLs};
use pinocchio_data::MovingObject;
use pinocchio_geo::{Mbr, Point};
use pinocchio_heatmap::{try_heatmap, try_top_region, Tile};
use pinocchio_prob::{PowerLawPf, ProbabilityFunction};
use rand::{rngs::StdRng, Rng, SeedableRng};

const FRAME_W: f64 = 30.0;
const FRAME_H: f64 = 20.0;

fn world(seed: u64, tau: f64, kernel: EvalKernel) -> PrimeLs<PowerLawPf> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut objects = Vec::new();
    for id in 0..40u64 {
        let cx = rng.gen_range(0.0..FRAME_W);
        let cy = rng.gen_range(0.0..FRAME_H);
        let n = rng.gen_range(1..6usize);
        let positions = (0..n)
            .map(|_| Point::new(cx + rng.gen_range(-0.8..0.8), cy + rng.gen_range(-0.8..0.8)))
            .collect();
        objects.push(MovingObject::new(id, positions));
    }
    PrimeLs::builder()
        .objects(objects)
        .candidates(vec![Point::new(1.0, 1.0)])
        .probability_function(PowerLawPf::paper_default())
        .tau(tau)
        .evaluation_kernel(kernel)
        .build()
        .expect("valid problem")
}

/// Exact influence count at `p`, computed from first principles: the
/// cumulative non-influence product over each object's positions.
fn exact_inf(problem: &PrimeLs<PowerLawPf>, p: Point) -> u32 {
    let pf = problem.pf();
    let tau = problem.tau();
    problem
        .objects()
        .iter()
        .filter(|o| {
            let mut non_influence = 1.0f64;
            for pos in o.positions() {
                non_influence *= 1.0 - pf.prob(p.euclidean(pos));
            }
            1.0 - non_influence >= tau
        })
        .count() as u32
}

fn frame() -> Mbr {
    Mbr::new(
        Point::new(-1.0, -1.0),
        Point::new(FRAME_W + 1.0, FRAME_H + 1.0),
    )
}

const KERNELS: [EvalKernel; 3] = [
    EvalKernel::Scalar,
    EvalKernel::Blocked,
    EvalKernel::LogBlocked,
];

#[test]
fn tiles_match_the_brute_force_oracle() {
    let res = 16u32;
    for seed in [7u64, 19, 42] {
        for tau in [0.5, 0.7] {
            let mut per_kernel: Vec<Vec<Tile>> = Vec::new();
            for kernel in KERNELS {
                let problem = world(seed, tau, kernel);
                let h = try_heatmap(&problem, res, Some(frame())).expect("heatmap");
                assert_eq!(h.tiles.len(), (res * res) as usize);

                let mut band_width_sum = 0u64;
                for (idx, t) in h.tiles.iter().enumerate() {
                    assert!(t.lo <= t.sample && t.sample <= t.hi);
                    band_width_sum += u64::from(t.hi - t.lo);
                    // The centre sample is exact.
                    assert_eq!(
                        t.sample,
                        exact_inf(&problem, h.tile_center(idx)),
                        "seed {seed} tau {tau} kernel {kernel:?} tile {idx} sample"
                    );
                    // The band holds at every point of the tile: probe a
                    // dense 3×3 interior grid.
                    let tx = idx as u32 % res;
                    let ty = idx as u32 / res;
                    let r = h.tile_rect(tx, ty);
                    for fy in [0.25, 0.5, 0.75] {
                        for fx in [0.25, 0.5, 0.75] {
                            let p =
                                Point::new(r.lo().x + fx * r.width(), r.lo().y + fy * r.height());
                            let inf = exact_inf(&problem, p);
                            assert!(
                                t.lo <= inf && inf <= t.hi,
                                "seed {seed} tau {tau} kernel {kernel:?} tile {idx}: \
                                 inf {inf} outside [{}, {}]",
                                t.lo,
                                t.hi
                            );
                        }
                    }
                }
                // Every ambiguous (object, tile) pair was validated
                // exactly once by the refinement pass.
                assert_eq!(h.stats.validated_pairs, band_width_sum);
                assert_eq!(
                    h.stats.cells_refined,
                    h.tiles.iter().filter(|t| t.lo < t.hi).count() as u64
                );
                assert!(h.stats.cells_resolved_ia + h.stats.cells_resolved_nib > 0);
                per_kernel.push(h.tiles.clone());
            }
            // The kernels are verdict-exact replicas of each other, so
            // the emitted grids agree bit-for-bit.
            assert_eq!(per_kernel[0], per_kernel[1]);
            assert_eq!(per_kernel[0], per_kernel[2]);
        }
    }
}

#[test]
fn top_region_bit_matches_the_heatmap_argmax() {
    let res = 32u32;
    for seed in [7u64, 19, 42] {
        for tau in [0.5, 0.7] {
            for kernel in KERNELS {
                let problem = world(seed, tau, kernel);
                let h = try_heatmap(&problem, res, Some(frame())).expect("heatmap");
                for k in [1usize, 5, 17] {
                    let t = try_top_region(&problem, k, res, Some(frame())).expect("top_region");
                    let mut oracle: Vec<(u32, usize)> = h
                        .tiles
                        .iter()
                        .enumerate()
                        .map(|(i, t)| (t.sample, i))
                        .collect();
                    oracle.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                    oracle.truncate(k);
                    assert_eq!(t.cells.len(), oracle.len());
                    for (got, want) in t.cells.iter().zip(&oracle) {
                        assert_eq!(
                            (got.influence, got.tile),
                            (want.0, want.1),
                            "seed {seed} tau {tau} kernel {kernel:?} k {k}"
                        );
                        assert_eq!(got.center, h.tile_center(got.tile));
                        // The reported influence is the exact count at
                        // the reported centre.
                        assert_eq!(got.influence, exact_inf(&problem, got.center));
                    }
                }
            }
        }
    }
}

#[test]
fn resolution_one_heatmap_is_a_single_sound_tile() {
    for seed in [3u64, 11] {
        let problem = world(seed, 0.7, EvalKernel::Scalar);
        let h = try_heatmap(&problem, 1, Some(frame())).expect("heatmap");
        assert_eq!(h.tiles.len(), 1);
        let t = h.tiles[0];
        assert_eq!(t.sample, exact_inf(&problem, h.tile_center(0)));
        assert!(t.lo <= t.sample && t.sample <= t.hi);
    }
}
