//! City-scale planning: shortlist sites with the exact top-k solver,
//! then show how the sampling-based approximate solver trades a
//! controlled error bound for speed on a larger population.
//!
//! Run with `cargo run --release --example city_scale_planning`.

use pinocchio::core::{solve_approx, solve_top_k, ApproxConfig};
use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;
use std::time::Instant;

fn main() {
    // A larger city than the other examples: 2,000 residents.
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(2_000, 7)).generate();
    let (_, candidates) = sample_candidate_group(&dataset, 150, 3);
    let problem = PrimeLs::builder()
        .objects(dataset.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .expect("valid problem");
    let r = problem.objects().len();
    println!(
        "{} residents, {} check-ins, {} candidate sites\n",
        r,
        dataset.total_checkins(),
        problem.candidates().len()
    );

    // A planner rarely wants just the argmax — shortlist the top 5.
    let t = Instant::now();
    let shortlist = solve_top_k(&problem, 5);
    println!("exact top-5 (computed in {:.2?}):", t.elapsed());
    for (rank, entry) in shortlist.iter().enumerate() {
        println!(
            "  {}. site #{:3} at {}  influences {:4} residents ({:.1}%)",
            rank + 1,
            entry.candidate,
            entry.location,
            entry.influence,
            entry.influence as f64 / r as f64 * 100.0
        );
    }

    // Early exploration phase: a 10 %-error answer is fine if it is fast.
    let epsilon = 0.1;
    let t = Instant::now();
    let approx = solve_approx(&problem, ApproxConfig::new(epsilon, 0.01, 99));
    println!(
        "\napproximate solve (ε = {epsilon}, δ = 0.01): sampled {} of {} residents in {:.2?}",
        approx.sample_size,
        r,
        t.elapsed()
    );
    println!(
        "  picked site #{} with estimated influence {} (±{:.0} at 99% confidence)",
        approx.best_candidate,
        approx.estimated_influence,
        2.0 * epsilon * r as f64
    );

    let truth = problem.all_influences();
    let regret = shortlist[0].influence as i64 - truth[approx.best_candidate] as i64;
    println!(
        "  true influence of the approximate pick: {} (regret vs optimum: {})",
        truth[approx.best_candidate], regret
    );
    assert!(
        regret as f64 <= 2.0 * epsilon * r as f64,
        "approximation exceeded its guarantee"
    );
    println!("  within the advertised 2ε·r bound ✓");
}
