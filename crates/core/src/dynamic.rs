//! Incremental PRIME-LS for dynamic scenarios — the paper's stated
//! future work (§7: "we plan to study incremental solution towards
//! PRIME-LS in dynamic scenarios, where candidate locations, objects as
//! well as their positions keep on changing").
//!
//! [`DynamicPrimeLs`] maintains the *exact* per-candidate influence
//! counts under four kinds of updates:
//!
//! * object insertion / removal,
//! * appending a freshly observed position to an object,
//! * candidate insertion / removal.
//!
//! The maintained state is a per-object bitmask of the candidates that
//! influence it, so removals are O(m/64) and the optimal candidate is
//! always available exactly. Updates reuse the static machinery — the
//! per-object pruning regions classify candidates without any
//! probability computation — plus one incremental theorem:
//!
//! > **Monotonicity under growth** (from Definition 1): appending a
//! > position never decreases `Pr_c(O)`, so a candidate that influences
//! > `O` keeps influencing it. Only the currently *non-influencing*
//! > candidates need rechecking when a position arrives.
//!
//! # Delta-validation (the O(changed) update path)
//!
//! In the default [`MaintenanceMode::Delta`], updates touch only the
//! pairs whose verdict can change, instead of scanning every slot:
//!
//! * **Object inserts / appends** query a live-candidate R-tree with
//!   the object's non-influence boundary (Theorem 2): a candidate with
//!   `minDist(c, MBR) > μ` *cannot* influence the object, so any
//!   candidate the query does not visit keeps its (zero) bit with no
//!   work. For appends the same single query suffices because the NIB
//!   region only grows (`μ` is non-decreasing in `n` and the MBR is
//!   containment-monotone) and previously-influencing candidates are
//!   inside it by the contrapositive of Theorem 2 — their bits are kept
//!   via the monotonicity rule without re-validation.
//! * **Candidate inserts** run a μ-banded aggregate join
//!   ([`MbrTree`]) over the live objects: whole subtrees are accepted
//!   (Theorem 1 lifted to node MBRs) or skipped (Theorem 2 lifted)
//!   without touching their rows; only undecided objects are validated.
//!   Objects whose geometry changed since the last index build fall
//!   back to the exact per-row rules via a bounded dirty list, so the
//!   index is rebuilt only every Ω(live/4) updates — O(log) amortised.
//! * **The optimum** is maintained with an answer-invariance bound:
//!   increments keep the exact argmax in O(1), and decrements rescan
//!   only when the cached leader's count falls to the *challenger
//!   bound* — an upper bound on every other candidate's influence — so
//!   `best()` is O(1) and rescans are provably the only moments the
//!   answer could change.
//!
//! [`MaintenanceMode::FullScan`] preserves the pre-delta classification
//! path (every slot scanned per update) — it exists so benchmarks can
//! measure what delta-validation buys and tests can cross-check the two
//! paths op-for-op.
//!
//! Object positions live in structurally shared [`PositionLog`] chunks,
//! so appending is O(1) amortised (no per-append rebuild of the
//! position vector) and cloning the whole state — the serving layer's
//! epoch-publish step — copies `Arc` spines instead of trajectories.
//!
//! Every operation leaves the structure in a state identical to
//! rebuilding from scratch (asserted extensively by the tests and the
//! serving layer's property suite).

use crate::eval::EvalKernel;
use crate::result::Algorithm;
use pinocchio_data::{MovingObject, PositionLog};
use pinocchio_geo::{InfluenceRegions, Mbr, Point, RegionVerdict};
use pinocchio_index::{MbrTree, RTree};
use pinocchio_prob::{min_max_radius, CumulativeProbability, LogPfTable, ProbabilityFunction};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One influence verdict over a shared position log: the log-domain
/// chunked kernel when a table is supplied (guard-banded, with any
/// in-band sum re-resolved by the exact scalar rule over fresh chunks),
/// the scalar early-stop chunked scan otherwise. Verdicts are identical
/// either way — the log path only ever answers when the band proves the
/// scalar comparison would agree.
// pinocchio-hot: per-pair verdict of every dynamic update path
fn influenced_chunked<P: ProbabilityFunction>(
    eval: &CumulativeProbability<P, pinocchio_geo::Euclidean>,
    table: Option<&LogPfTable>,
    candidate: &Point,
    log: &PositionLog,
    tau: f64,
) -> bool {
    if let Some(table) = table {
        if let Some(outcome) = eval.try_influences_log_chunked(candidate, log.chunks(), tau, table)
        {
            return outcome.influenced;
        }
    }
    eval.influences_early_stop_chunked(candidate, log.chunks(), tau)
        .influenced
}

/// Handle to an object slot in a [`DynamicPrimeLs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectHandle(usize);

/// Handle to a candidate slot in a [`DynamicPrimeLs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateHandle(usize);

/// How updates revalidate the object–candidate pairs they may affect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Spatially pruned delta-validation (the default): object updates
    /// query the candidate R-tree with the object's NIB region,
    /// candidate inserts run the μ-aggregate object join, and the
    /// optimum is maintained under the answer-invariance bound.
    #[default]
    Delta,
    /// The pre-delta reference path: every update classifies every
    /// slot. Same answers, strictly more work — kept for benchmarks
    /// (what does delta-validation buy?) and cross-mode testing.
    FullScan,
}

/// One live object row: the shared position log, its cached pruning
/// geometry and the bitmask of candidate slots it is influenced by.
#[derive(Debug, Clone)]
struct ObjectRow {
    id: u64,
    log: PositionLog,
    /// `None` when the object can never be influenced at the current τ.
    regions: Option<InfluenceRegions>,
    /// Bit `j` set ⇔ candidate slot `j` influences this object.
    influenced_by: Vec<u64>,
}

/// Calls `f` with the index of every set bit.
fn for_each_set_bit(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            f(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Exact, incrementally maintained PRIME-LS state.
///
/// All coordinates are planar kilometres, matching the static solvers.
///
/// ```
/// use pinocchio_core::DynamicPrimeLs;
/// use pinocchio_data::MovingObject;
/// use pinocchio_geo::Point;
/// use pinocchio_prob::PowerLawPf;
///
/// let mut state = DynamicPrimeLs::new(PowerLawPf::paper_default(), 0.7);
/// let kiosk = state.insert_candidate(Point::new(0.0, 0.0));
/// let user = state.insert_object(MovingObject::new(0, vec![Point::new(40.0, 0.0)]));
/// assert_eq!(state.influence(kiosk), 0); // too far away
///
/// // The user checks in right next to the kiosk: PF(0.1) ≈ 0.82 ≥ 0.7.
/// state.append_position(user, Point::new(0.1, 0.0));
/// assert_eq!(state.influence(kiosk), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicPrimeLs<P> {
    pf: P,
    tau: f64,
    mode: MaintenanceMode,
    /// Requested evaluation kernel. Updates validate through the
    /// log-domain chunked path exactly when `log_table` is `Some`.
    kernel: EvalKernel,
    /// Present iff `kernel == LogBlocked` and the PF's log table
    /// converged; the Blocked kernel has no chunked form, so both it
    /// and table-less LogBlocked fall back to the scalar chunked scan.
    log_table: Option<LogPfTable>,
    objects: Vec<Option<ObjectRow>>,
    candidates: Vec<Option<Point>>,
    /// Exact `inf(c)` per candidate slot (0 for freed slots).
    influences: Vec<u32>,
    live_objects: usize,
    live_candidate_count: usize,
    /// Freed candidate slots, smallest first — O(log) slot reuse
    /// instead of the former O(m) `position(Option::is_none)` scan.
    free_candidates: BinaryHeap<Reverse<usize>>,
    /// Live candidates indexed by location; payload `(slot, generation)`
    /// so entries of freed (possibly reused) slots are filtered out at
    /// query time instead of requiring R-tree deletion.
    cand_tree: RTree<(usize, u32)>,
    /// Per-slot generation, bumped on removal.
    cand_gen: Vec<u32>,
    /// Stale entries accumulated in `cand_tree`; rebuild past the
    /// threshold keeps queries O(live) amortised.
    cand_tree_stale: usize,
    /// μ-aggregate index over live object slots (payload = slot).
    obj_tree: MbrTree<usize>,
    /// Object slots `>= obj_indexed_upto` are newer than the last
    /// `obj_tree` build (object slots are never reused, so this single
    /// watermark captures all inserts since then).
    obj_indexed_upto: usize,
    /// Indexed slots whose geometry changed since the build (appends,
    /// removals); their tree verdicts are stale and they are validated
    /// per-row instead.
    obj_dirty: Vec<bool>,
    obj_dirty_list: Vec<usize>,
    /// `minMaxRadius` memo by position count (index `n`; `[0]` unused)
    /// — the HM cache of Algorithm 1, so appends pay a lookup instead
    /// of re-inverting the PF.
    mu_by_n: Vec<Option<f64>>,
    /// Reusable previous-mask buffer for `append_position` (avoids one
    /// allocation per append).
    scratch_mask: Vec<u64>,
    /// Reusable slot buffers for `validate_candidate_delta` (avoids two
    /// allocations per candidate insert).
    delta_influenced: Vec<usize>,
    delta_undecided: Vec<usize>,
    /// Cached argmax slot (always live when any candidate is live;
    /// smallest slot among maxima, matching the static tie-break).
    best_slot: Option<usize>,
    /// Answer-invariance bound: an upper bound on `inf(c)` over every
    /// live candidate other than `best_slot`. The optimum can only
    /// change at a decrement when `inf(best) ≤ challenger_bound`.
    challenger_bound: u32,
}

/// `cand_tree` is rebuilt once more than this many stale entries
/// accumulate (and the live count no longer dwarfs them).
const CAND_TREE_MIN_REBUILD: usize = 32;
/// `obj_tree` is rebuilt when more than `max(this, live/4)` rows have
/// changed since the last build.
const OBJ_TREE_MIN_REBUILD: usize = 64;

impl<P: ProbabilityFunction + Clone> DynamicPrimeLs<P> {
    /// Creates an empty dynamic instance in [`MaintenanceMode::Delta`].
    ///
    /// # Panics
    /// Panics unless `τ ∈ (0, 1)`.
    pub fn new(pf: P, tau: f64) -> Self {
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
        DynamicPrimeLs {
            pf,
            tau,
            mode: MaintenanceMode::Delta,
            kernel: EvalKernel::default(),
            log_table: None,
            objects: Vec::new(),
            candidates: Vec::new(),
            influences: Vec::new(),
            live_objects: 0,
            live_candidate_count: 0,
            free_candidates: BinaryHeap::new(),
            cand_tree: RTree::new(),
            cand_gen: Vec::new(),
            cand_tree_stale: 0,
            obj_tree: MbrTree::bulk_load(Vec::new()),
            obj_indexed_upto: 0,
            obj_dirty: Vec::new(),
            obj_dirty_list: Vec::new(),
            mu_by_n: Vec::new(),
            scratch_mask: Vec::new(),
            delta_influenced: Vec::new(),
            delta_undecided: Vec::new(),
            best_slot: None,
            challenger_bound: 0,
        }
    }

    /// Bootstraps from a static problem description.
    pub fn from_parts(
        pf: P,
        tau: f64,
        objects: Vec<MovingObject>,
        candidates: Vec<Point>,
    ) -> (Self, Vec<ObjectHandle>, Vec<CandidateHandle>) {
        let mut this = Self::new(pf, tau);
        let cands: Vec<CandidateHandle> = candidates
            .into_iter()
            .map(|c| this.insert_candidate(c))
            .collect();
        let objs: Vec<ObjectHandle> = objects.into_iter().map(|o| this.insert_object(o)).collect();
        (this, objs, cands)
    }

    fn evaluator(&self) -> CumulativeProbability<P, pinocchio_geo::Euclidean> {
        CumulativeProbability::new(self.pf.clone(), pinocchio_geo::Euclidean)
    }

    /// Memoised `minMaxRadius(n)` — Algorithm 1's HM cache. Position
    /// counts are dense small integers here (they grow by one per
    /// append), so a vector memo makes the per-append μ lookup O(1).
    fn mu_for(&mut self, n: usize) -> Option<f64> {
        debug_assert!(n >= 1, "objects hold at least one position");
        while self.mu_by_n.len() <= n {
            let k = self.mu_by_n.len();
            self.mu_by_n.push(if k == 0 {
                None // index 0 is padding; no object has zero positions
            } else {
                min_max_radius(&self.pf, self.tau, k)
            });
        }
        self.mu_by_n[n]
    }

    /// The per-object pruning geometry for a log of `n` positions.
    fn regions_for(&mut self, log: &PositionLog) -> Option<InfluenceRegions> {
        self.mu_for(log.len())
            .map(|mu| InfluenceRegions::new(log.mbr(), mu))
    }

    /// The influence threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The active maintenance mode.
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// The requested evaluation kernel (see
    /// [`Self::set_evaluation_kernel`]).
    pub fn evaluation_kernel(&self) -> EvalKernel {
        self.kernel
    }

    /// Switches the evaluation kernel used by subsequent updates. Safe
    /// at any point: verdicts are kernel-independent, so the maintained
    /// state never diverges across a switch.
    ///
    /// [`EvalKernel::LogBlocked`] validates undecided pairs through the
    /// guard-banded log-domain chunked kernel (in-band sums re-resolved
    /// exactly); it builds and caches the PF's [`LogPfTable`] here,
    /// once. [`EvalKernel::Blocked`] has no chunked form — the dynamic
    /// rows live in shared position logs, not the arena — so it (and a
    /// LogBlocked request whose PF defeats the table) behaves like
    /// [`EvalKernel::Scalar`].
    pub fn set_evaluation_kernel(&mut self, kernel: EvalKernel) {
        self.kernel = kernel;
        self.log_table = match kernel {
            EvalKernel::LogBlocked => LogPfTable::try_new(&self.pf),
            _ => None,
        };
    }

    /// Switches the maintenance mode. Safe at any point: both modes
    /// maintain the same bookkeeping (indexes, free lists, argmax
    /// bound), they differ only in how the next updates search for the
    /// pairs to revalidate.
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.mode = mode;
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.live_objects
    }

    /// Number of live candidates (O(1); maintained, not counted).
    pub fn candidate_count(&self) -> usize {
        self.live_candidate_count
    }

    /// Exact influence of a candidate.
    ///
    /// # Panics
    /// Panics on a stale (removed) handle.
    pub fn influence(&self, c: CandidateHandle) -> u32 {
        assert!(self.candidates[c.0].is_some(), "stale candidate handle");
        self.influences[c.0]
    }

    /// Every live candidate as `(handle, location, influence)`, in slot
    /// order — the snapshot hook the serving layer's `top_k` and
    /// `influence_of` queries read. Slot order matches the candidate
    /// order of [`Self::to_prime_ls`], so rankings derived from either
    /// agree on ties.
    pub fn live_candidates(&self) -> Vec<(CandidateHandle, Point, u32)> {
        self.candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|point| (CandidateHandle(j), point, self.influences[j])))
            .collect()
    }

    /// Iterates over the live moving objects (slot order), materialising
    /// each from its shared position log — an O(positions) freeze used
    /// by the from-scratch solve paths, never by the update path.
    pub fn objects(&self) -> impl Iterator<Item = MovingObject> + '_ {
        self.objects
            .iter()
            .flatten()
            .map(|row| row.log.to_object(row.id))
    }

    /// Freezes the current state into a static [`PrimeLs`] problem — the
    /// from-scratch solve entry used by the serving layer's `solve`
    /// requests and exactness gates. The returned handles give, for each
    /// candidate index of the static problem, the corresponding live
    /// slot; index order equals slot order, so the static solvers'
    /// smallest-index tie-break reproduces [`Self::best`]'s
    /// smallest-slot tie-break.
    ///
    /// Fails with [`BuildError::NoObjects`] / [`BuildError::NoCandidates`]
    /// when either live set is empty (`PF` and `τ` were validated at
    /// construction and cannot fail here).
    ///
    /// [`PrimeLs`]: crate::problem::PrimeLs
    /// [`BuildError::NoObjects`]: crate::problem::BuildError::NoObjects
    /// [`BuildError::NoCandidates`]: crate::problem::BuildError::NoCandidates
    pub fn to_prime_ls(
        &self,
    ) -> Result<(crate::problem::PrimeLs<P>, Vec<CandidateHandle>), crate::problem::BuildError>
    {
        let live = self.live_candidates();
        let problem = crate::problem::PrimeLs::builder()
            .objects(self.objects().collect())
            .candidates(live.iter().map(|&(_, p, _)| p).collect())
            .probability_function(self.pf.clone())
            .tau(self.tau)
            .evaluation_kernel(self.kernel)
            .build()?;
        Ok((problem, live.into_iter().map(|(h, _, _)| h).collect()))
    }

    /// The current optimum `(handle, location, influence)`, ties broken
    /// towards the older (smaller-slot) candidate; `None` when no live
    /// candidate exists. O(1): the argmax is maintained incrementally
    /// under the answer-invariance bound (see the module docs).
    pub fn best(&self) -> Option<(CandidateHandle, Point, u32)> {
        let j = self.best_slot?;
        let location = self.candidates.get(j).copied().flatten()?;
        Some((CandidateHandle(j), location, self.influences[j]))
    }

    // ---- bitmask helpers ------------------------------------------------

    fn mask_words(&self) -> usize {
        self.candidates.len().div_ceil(64)
    }

    fn bit(mask: &[u64], j: usize) -> bool {
        mask.get(j / 64).is_some_and(|w| w >> (j % 64) & 1 == 1)
    }

    fn set_bit(mask: &mut Vec<u64>, j: usize) {
        if mask.len() <= j / 64 {
            mask.resize(j / 64 + 1, 0);
        }
        mask[j / 64] |= 1 << (j % 64);
    }

    fn clear_bit(mask: &mut [u64], j: usize) {
        if let Some(w) = mask.get_mut(j / 64) {
            *w &= !(1 << (j % 64));
        }
    }

    // ---- argmax maintenance (answer-invariance bound) -------------------

    /// Whether live slot `j` outranks live slot `best` (higher count,
    /// or equal count in an older slot).
    fn outranks(&self, j: usize, best: usize) -> bool {
        self.influences[j] > self.influences[best]
            || (self.influences[j] == self.influences[best] && j < best)
    }

    /// Records that `influences[j]` grew (or slot `j` just became
    /// live). Keeps `best_slot` the exact argmax and `challenger_bound`
    /// an upper bound on every other live candidate's influence.
    fn note_increased(&mut self, j: usize) {
        match self.best_slot {
            None => {
                self.best_slot = Some(j);
                self.challenger_bound = 0;
            }
            Some(b) if b == j => {}
            Some(b) => {
                if self.outranks(j, b) {
                    // The dethroned leader joins the challengers.
                    self.challenger_bound = self.challenger_bound.max(self.influences[b]);
                    self.best_slot = Some(j);
                } else {
                    self.challenger_bound = self.challenger_bound.max(self.influences[j]);
                }
            }
        }
    }

    /// After decrements: rescan only if the cached leader can be
    /// overtaken. `challenger_bound` upper-bounds every other live
    /// candidate, and decrements never raise anyone, so
    /// `inf(best) > bound` proves the answer unchanged; equality must
    /// rescan because ties break towards the smaller slot.
    fn repair_best(&mut self) {
        if let Some(b) = self.best_slot {
            if self.influences[b] <= self.challenger_bound {
                self.rescan_best();
            }
        }
    }

    /// Full O(m) recomputation of the argmax and the exact runner-up
    /// count (the tightest admissible challenger bound).
    fn rescan_best(&mut self) {
        let mut best: Option<usize> = None;
        let mut second = 0u32;
        for (j, c) in self.candidates.iter().enumerate() {
            if c.is_none() {
                continue;
            }
            match best {
                None => best = Some(j),
                Some(b) => {
                    if self.influences[j] > self.influences[b] {
                        second = self.influences[b];
                        best = Some(j);
                    } else {
                        second = second.max(self.influences[j]);
                    }
                }
            }
        }
        self.best_slot = best;
        self.challenger_bound = second;
    }

    // ---- index bookkeeping ----------------------------------------------

    /// Marks an indexed object row as changed since the last `obj_tree`
    /// build; its build-time verdicts are no longer trusted.
    fn mark_object_changed(&mut self, slot: usize) {
        if slot >= self.obj_indexed_upto {
            return; // newer than the build: already handled as unindexed
        }
        if self.obj_dirty.len() <= slot {
            self.obj_dirty.resize(slot + 1, false);
        }
        if !self.obj_dirty[slot] {
            self.obj_dirty[slot] = true;
            self.obj_dirty_list.push(slot);
        }
    }

    /// Rebuilds `obj_tree` when the changed-row backlog exceeds
    /// `max(OBJ_TREE_MIN_REBUILD, live/4)` — O(live log live) every
    /// Ω(live) updates, O(log) amortised.
    fn maybe_rebuild_object_tree(&mut self) {
        let pending = self.obj_dirty_list.len() + (self.objects.len() - self.obj_indexed_upto);
        if pending <= OBJ_TREE_MIN_REBUILD.max(self.live_objects / 4) {
            return;
        }
        let items: Vec<(Mbr, f64, usize)> = self
            .objects
            .iter()
            .enumerate()
            .filter_map(|(s, row)| {
                let row = row.as_ref()?;
                let regions = row.regions.as_ref()?;
                Some((regions.mbr(), regions.radius(), s))
            })
            .collect();
        self.obj_tree = MbrTree::bulk_load(items);
        self.obj_indexed_upto = self.objects.len();
        for &s in &self.obj_dirty_list {
            self.obj_dirty[s] = false;
        }
        self.obj_dirty_list.clear();
    }

    /// Rebuilds `cand_tree` from the live candidates, dropping the
    /// stale (freed-slot) entries.
    fn rebuild_candidate_tree(&mut self) {
        let items: Vec<(Point, (usize, u32))> = self
            .candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|p| (p, (j, self.cand_gen[j]))))
            .collect();
        self.cand_tree = RTree::bulk_load(items);
        self.cand_tree_stale = 0;
    }

    // ---- object updates -------------------------------------------------

    /// Inserts an object, classifying candidates through the pruning
    /// regions (only the reachable ones in delta mode) and validating
    /// the undecided ones.
    pub fn insert_object(&mut self, object: MovingObject) -> ObjectHandle {
        let log = PositionLog::from_object(&object);
        let regions = self.regions_for(&log);
        let mut row = ObjectRow {
            id: object.id(),
            log,
            regions,
            influenced_by: vec![0; self.mask_words()],
        };
        match self.mode {
            MaintenanceMode::FullScan => self.classify_candidates_into(&mut row, None),
            MaintenanceMode::Delta => self.classify_candidates_delta(&mut row, None),
        }
        let mask = std::mem::take(&mut row.influenced_by);
        for_each_set_bit(&mask, |j| {
            self.influences[j] += 1;
            self.note_increased(j);
        });
        row.influenced_by = mask;
        self.live_objects += 1;
        let handle = ObjectHandle(self.objects.len());
        self.objects.push(Some(row));
        handle
    }

    /// Removes an object, subtracting its influence contributions.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn remove_object(&mut self, handle: ObjectHandle) -> MovingObject {
        // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
        let row = self.objects[handle.0].take().expect("stale object handle");
        for_each_set_bit(&row.influenced_by, |j| {
            self.influences[j] -= 1;
        });
        self.live_objects -= 1;
        self.mark_object_changed(handle.0);
        self.repair_best();
        row.log.to_object(row.id)
    }

    /// Appends a freshly observed position to an object in O(changed):
    /// the position lands in the shared log without copying the
    /// history, and only candidates inside the (grown) non-influence
    /// boundary are reconsidered — by monotonicity the bitmask can only
    /// gain bits, and by Theorem 2 no candidate outside the boundary
    /// can gain one.
    ///
    /// # Panics
    /// Panics on a stale handle or a non-finite position.
    // pinocchio-hot: per-update entry point of the streaming maintenance path
    pub fn append_position(&mut self, handle: ObjectHandle, position: Point) {
        assert!(position.is_finite(), "non-finite position");
        // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
        let mut row = self.objects[handle.0].take().expect("stale object handle");
        row.log.push(position);
        // n changed ⇒ minMaxRadius changed; the MBR may have grown (the
        // log maintains it incrementally).
        row.regions = self.regions_for(&row.log);
        let mut previously = std::mem::take(&mut self.scratch_mask);
        previously.clear();
        previously.extend_from_slice(&row.influenced_by);
        match self.mode {
            MaintenanceMode::FullScan => self.classify_candidates_into(&mut row, Some(&previously)),
            MaintenanceMode::Delta => self.classify_candidates_delta(&mut row, Some(&previously)),
        }
        // Count the newly gained candidates. Classification may have
        // widened the mask (candidates inserted since this row last
        // changed); pad the previous mask so the new words are diffed
        // too, not silently dropped by the zip.
        previously.resize(row.influenced_by.len(), 0);
        for (w, (&now, &before)) in row.influenced_by.iter().zip(&previously).enumerate() {
            debug_assert_eq!(now & before, before, "influence must be monotone");
            let mut gained = now & !before;
            while gained != 0 {
                let j = w * 64 + gained.trailing_zeros() as usize;
                self.influences[j] += 1;
                self.note_increased(j);
                gained &= gained - 1;
            }
        }
        self.scratch_mask = previously;
        self.objects[handle.0] = Some(row);
        self.mark_object_changed(handle.0);
    }

    /// Recomputes `row.influenced_by` by scanning **every** candidate
    /// slot (the [`MaintenanceMode::FullScan`] path). With
    /// `skip_influenced`, bits already set in the given previous mask
    /// are kept without re-validation (the monotone append rule).
    fn classify_candidates_into(&self, row: &mut ObjectRow, skip_influenced: Option<&[u64]>) {
        let eval = self.evaluator();
        let table = self.log_table.as_ref();
        let words = self.mask_words();
        row.influenced_by.resize(words, 0);
        for (j, cand) in self.candidates.iter().enumerate() {
            let Some(c) = cand else { continue };
            if let Some(prev) = skip_influenced {
                if Self::bit(prev, j) {
                    Self::set_bit(&mut row.influenced_by, j);
                    continue;
                }
            }
            let influenced = match &row.regions {
                None => false,
                Some(regions) => match regions.classify(c) {
                    RegionVerdict::Influences => true,
                    RegionVerdict::CannotInfluence => false,
                    RegionVerdict::Undecided => {
                        influenced_chunked(&eval, table, c, &row.log, self.tau)
                    }
                },
            };
            if influenced {
                Self::set_bit(&mut row.influenced_by, j);
            } else {
                Self::clear_bit(&mut row.influenced_by, j);
            }
        }
    }

    /// Delta counterpart of [`Self::classify_candidates_into`]: queries
    /// the candidate R-tree with the object's non-influence boundary and
    /// touches only the candidates inside it.
    ///
    /// **Why skipped candidates cannot change verdict.** The query
    /// predicate is exactly NIB membership, `minDist(c, MBR) ≤ μ`
    /// (node admission uses the containment-monotone rectangle distance,
    /// so no matching candidate is missed). A skipped candidate has
    /// `minDist > μ`, hence cannot influence the object (Theorem 2) —
    /// its bit stays 0, which is what the fresh (insert) or monotone
    /// (append) mask already records. On appends, every
    /// previously-influencing candidate still influences the grown
    /// object (monotonicity) and therefore sits inside the new NIB
    /// (contrapositive of Theorem 2), so the kept bits are all visited
    /// and re-set from `skip_influenced` without re-validation.
    // pinocchio-hot: per-update candidate reclassification
    fn classify_candidates_delta(&self, row: &mut ObjectRow, skip_influenced: Option<&[u64]>) {
        let words = self.mask_words();
        row.influenced_by.resize(words, 0);
        let Some(regions) = row.regions else {
            // No attainable minMaxRadius: nothing can influence this
            // object; the mask is (and stays) all-zero.
            debug_assert!(row.influenced_by.iter().all(|w| *w == 0));
            return;
        };
        let eval = self.evaluator();
        let table = self.log_table.as_ref();
        let tau = self.tau;
        let obj_mbr = regions.mbr();
        let nib_mbr = regions.nib_mbr();
        let mu_sq = regions.radius() * regions.radius();
        let gens = &self.cand_gen;
        let mask = &mut row.influenced_by;
        let log = &row.log;
        self.cand_tree.query_region(
            |node| node.intersects(&nib_mbr) && obj_mbr.min_dist_sq_mbr(node) <= mu_sq,
            |c| obj_mbr.min_dist_sq(c) <= mu_sq,
            &mut |c, &(j, gen)| {
                if gens[j] != gen {
                    return; // freed (possibly reused) slot: stale entry
                }
                if let Some(prev) = skip_influenced {
                    if Self::bit(prev, j) {
                        Self::set_bit(mask, j);
                        return;
                    }
                }
                // Inside the NIB by the query predicate; the remaining
                // split is Theorem 1 (influence arcs) vs exact
                // validation — identical to `InfluenceRegions::classify`.
                let influenced = obj_mbr.max_dist_sq(c) <= mu_sq
                    || influenced_chunked(&eval, table, c, log, tau);
                if influenced {
                    Self::set_bit(mask, j);
                }
            },
        );
    }

    // ---- candidate updates ----------------------------------------------

    /// Inserts a candidate, computing its exact influence — against the
    /// μ-aggregate object index in delta mode (whole subtrees accepted
    /// or skipped in bulk), or against every live object in full-scan
    /// mode.
    ///
    /// # Panics
    /// Panics on a non-finite location.
    pub fn insert_candidate(&mut self, location: Point) -> CandidateHandle {
        assert!(location.is_finite(), "non-finite candidate");
        // Reuse the smallest freed slot so bitmasks stay compact and
        // slot (tie-break) order stays deterministic.
        let j = match self.free_candidates.pop() {
            Some(Reverse(j)) => {
                self.candidates[j] = Some(location);
                j
            }
            None => {
                self.candidates.push(Some(location));
                self.influences.push(0);
                self.cand_gen.push(0);
                self.candidates.len() - 1
            }
        };
        self.live_candidate_count += 1;
        self.cand_tree.insert(location, (j, self.cand_gen[j]));
        let influence = match self.mode {
            MaintenanceMode::FullScan => self.validate_candidate_full(j, &location),
            MaintenanceMode::Delta => self.validate_candidate_delta(j, &location),
        };
        self.influences[j] = influence;
        self.note_increased(j);
        CandidateHandle(j)
    }

    /// Full-scan influence computation for a fresh candidate at slot
    /// `j`: classify + validate against every live row.
    fn validate_candidate_full(&mut self, j: usize, location: &Point) -> u32 {
        let eval = self.evaluator();
        let table = self.log_table.as_ref();
        let tau = self.tau;
        let mut influence = 0u32;
        for row in self.objects.iter_mut().flatten() {
            let influenced = match &row.regions {
                None => false,
                Some(regions) => match regions.classify(location) {
                    RegionVerdict::Influences => true,
                    RegionVerdict::CannotInfluence => false,
                    RegionVerdict::Undecided => {
                        influenced_chunked(&eval, table, location, &row.log, tau)
                    }
                },
            };
            if influenced {
                Self::set_bit(&mut row.influenced_by, j);
                influence += 1;
            } else {
                Self::clear_bit(&mut row.influenced_by, j);
            }
        }
        influence
    }

    /// Delta influence computation for a fresh candidate at slot `j`:
    /// one μ-aggregate join over the object index decides unchanged
    /// rows (bulk-skipping excluded subtrees — their bits are already
    /// 0 because the slot is fresh), and the bounded set of rows
    /// changed since the last index build falls back to the exact
    /// per-row rules.
    // pinocchio-hot: per-insert delta influence computation
    fn validate_candidate_delta(&mut self, j: usize, location: &Point) -> u32 {
        // pinocchio-lint: allow(hot-path-alloc) -- rebuild is amortised: it runs once per max(64, live/4) row changes, not per insert
        self.maybe_rebuild_object_tree();
        let mut influenced_slots = std::mem::take(&mut self.delta_influenced);
        let mut undecided_slots = std::mem::take(&mut self.delta_undecided);
        influenced_slots.clear();
        undecided_slots.clear();
        self.obj_tree.influence_join_entries(
            location,
            |&s| influenced_slots.push(s),
            |&s| undecided_slots.push(s),
        );
        let eval = self.evaluator();
        let table = self.log_table.as_ref();
        let tau = self.tau;
        let mut influence = 0u32;
        let is_dirty = |dirty: &[bool], s: usize| dirty.get(s).copied().unwrap_or(false);
        for &s in &influenced_slots {
            if is_dirty(&self.obj_dirty, s) {
                continue; // build-time verdict stale: re-done below
            }
            let Some(row) = self.objects[s].as_mut() else {
                continue; // removed since the build
            };
            Self::set_bit(&mut row.influenced_by, j);
            influence += 1;
        }
        for &s in &undecided_slots {
            if is_dirty(&self.obj_dirty, s) {
                continue;
            }
            let influenced = match self.objects[s].as_ref() {
                None => continue,
                Some(row) => influenced_chunked(&eval, table, location, &row.log, tau),
            };
            if influenced {
                if let Some(row) = self.objects[s].as_mut() {
                    Self::set_bit(&mut row.influenced_by, j);
                    influence += 1;
                }
            }
        }
        // Rows the index does not speak for: changed since the build,
        // or inserted after it. Bounded by the rebuild threshold.
        let changed: Vec<usize> = self.obj_dirty_list.clone();
        for s in changed
            .into_iter()
            .chain(self.obj_indexed_upto..self.objects.len())
        {
            let Some(row) = self.objects[s].as_mut() else {
                continue;
            };
            debug_assert!(
                !Self::bit(&row.influenced_by, j),
                "fresh slot bit must be clear"
            );
            let influenced = match &row.regions {
                None => false,
                Some(regions) => match regions.classify(location) {
                    RegionVerdict::Influences => true,
                    RegionVerdict::CannotInfluence => false,
                    RegionVerdict::Undecided => {
                        influenced_chunked(&eval, table, location, &row.log, tau)
                    }
                },
            };
            if influenced {
                Self::set_bit(&mut row.influenced_by, j);
                influence += 1;
            }
        }
        self.delta_influenced = influenced_slots;
        self.delta_undecided = undecided_slots;
        influence
    }

    /// Removes a candidate.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn remove_candidate(&mut self, handle: CandidateHandle) -> Point {
        let location = self.candidates[handle.0]
            .take()
            // pinocchio-lint: allow(panic-path) -- documented `# Panics` contract: a stale handle is caller error, not a recoverable state
            .expect("stale candidate handle");
        self.influences[handle.0] = 0;
        for row in self.objects.iter_mut().flatten() {
            Self::clear_bit(&mut row.influenced_by, handle.0);
        }
        self.live_candidate_count -= 1;
        self.free_candidates.push(Reverse(handle.0));
        // Invalidate the slot's R-tree entries; rebuild once stale
        // entries stop being dominated by live ones.
        self.cand_gen[handle.0] = self.cand_gen[handle.0].wrapping_add(1);
        self.cand_tree_stale += 1;
        if self.cand_tree_stale > CAND_TREE_MIN_REBUILD.max(self.live_candidate_count) {
            self.rebuild_candidate_tree();
        }
        if self.best_slot == Some(handle.0) {
            self.rescan_best();
        }
        location
    }

    // ---- verification -----------------------------------------------

    /// Rebuilds the influence counts from scratch with the static solver
    /// and asserts they match the incremental state — including the
    /// cached optimum against a brute-force argmax (the answer-
    /// invariance bound's accounting). Test/debug aid; O(full solve).
    pub fn verify_against_static(&self) {
        // The cached argmax must equal a from-scratch scan (max count,
        // ties to the smaller slot) in every state, including empty.
        let expected_best = self
            .candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|point| (j, point)))
            .max_by(|a, b| {
                self.influences[a.0]
                    .cmp(&self.influences[b.0])
                    .then(b.0.cmp(&a.0))
            })
            .map(|(j, point)| (CandidateHandle(j), point, self.influences[j]));
        assert_eq!(self.best(), expected_best, "cached optimum diverged");
        if let Some(b) = self.best_slot {
            for (j, c) in self.candidates.iter().enumerate() {
                if j != b && c.is_some() {
                    assert!(
                        self.influences[j] <= self.challenger_bound,
                        "challenger bound {} misses slot {j} at {}",
                        self.challenger_bound,
                        self.influences[j]
                    );
                }
            }
        }

        let objects: Vec<MovingObject> = self.objects().collect();
        let live: Vec<(usize, Point)> = self
            .candidates
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|p| (j, p)))
            .collect();
        assert_eq!(live.len(), self.live_candidate_count, "live count drifted");
        if objects.is_empty() || live.is_empty() {
            for (j, _) in &live {
                assert_eq!(self.influences[*j], 0, "slot {j}");
            }
            return;
        }
        let problem = crate::problem::PrimeLs::builder()
            .objects(objects)
            .candidates(live.iter().map(|&(_, p)| p).collect())
            .probability_function(self.pf.clone())
            .tau(self.tau)
            .build()
            // pinocchio-lint: allow(panic-path) -- self-check helper: the live sets are non-empty (guarded above) and pf/tau were validated at construction
            .expect("well-formed");
        let reference = problem
            .solve(Algorithm::Pinocchio)
            .influences
            // pinocchio-lint: allow(panic-path) -- pinocchio::solve always populates `influences`; this whole fn is an assert-based debugging aid
            .expect("PIN reports all influences");
        for (k, (j, _)) in live.iter().enumerate() {
            assert_eq!(
                self.influences[*j], reference[k],
                "influence mismatch at slot {j}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_prob::PowerLawPf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng_object(rng: &mut StdRng, id: u64) -> MovingObject {
        let n = rng.gen_range(1..12);
        MovingObject::new(
            id,
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)))
                .collect(),
        )
    }

    fn fresh(tau: f64) -> DynamicPrimeLs<PowerLawPf> {
        DynamicPrimeLs::new(PowerLawPf::paper_default(), tau)
    }

    #[test]
    fn empty_state() {
        let d = fresh(0.7);
        assert_eq!(d.object_count(), 0);
        assert_eq!(d.candidate_count(), 0);
        assert_eq!(d.best(), None);
        assert_eq!(d.maintenance_mode(), MaintenanceMode::Delta);
        d.verify_against_static();
    }

    #[test]
    fn insertions_match_static_solver() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = fresh(0.7);
        for k in 0..10 {
            d.insert_candidate(Point::new(
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..20.0),
            ));
            if k % 2 == 0 {
                d.verify_against_static();
            }
        }
        for i in 0..25 {
            d.insert_object(rng_object(&mut rng, i));
            if i % 5 == 0 {
                d.verify_against_static();
            }
        }
        d.verify_against_static();
        assert_eq!(d.object_count(), 25);
        assert_eq!(d.candidate_count(), 10);
    }

    #[test]
    fn removals_match_static_solver() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = fresh(0.5);
        let cands: Vec<_> = (0..8)
            .map(|_| {
                d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                ))
            })
            .collect();
        let objs: Vec<_> = (0..20)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        d.verify_against_static();

        for &h in objs.iter().step_by(3) {
            d.remove_object(h);
        }
        d.verify_against_static();
        d.remove_candidate(cands[2]);
        d.remove_candidate(cands[5]);
        d.verify_against_static();
        assert_eq!(d.candidate_count(), 6);
    }

    #[test]
    fn append_position_is_monotone_and_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = fresh(0.7);
        for _ in 0..6 {
            d.insert_candidate(Point::new(
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..20.0),
            ));
        }
        let handles: Vec<_> = (0..10)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        d.verify_against_static();

        for step in 0..30 {
            let h = handles[step % handles.len()];
            d.append_position(
                h,
                Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            );
            if step % 6 == 0 {
                d.verify_against_static();
            }
        }
        d.verify_against_static();
    }

    #[test]
    fn appending_near_a_candidate_gains_influence() {
        let mut d = fresh(0.7);
        let c = d.insert_candidate(Point::new(0.0, 0.0));
        let o = d.insert_object(MovingObject::new(0, vec![Point::new(50.0, 50.0)]));
        assert_eq!(d.influence(c), 0);
        // One position right on the candidate: PF(0) = 0.9 ≥ 0.7.
        d.append_position(o, Point::new(0.0, 0.0));
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn slot_reuse_after_candidate_removal() {
        let mut d = fresh(0.7);
        let a = d.insert_candidate(Point::new(0.0, 0.0));
        let _b = d.insert_candidate(Point::new(10.0, 0.0));
        d.insert_object(MovingObject::new(0, vec![Point::new(0.1, 0.0)]));
        assert_eq!(d.influence(a), 1);
        d.remove_candidate(a);
        // New candidate reuses slot 0 and must get a fresh, correct count.
        let c = d.insert_candidate(Point::new(0.2, 0.0));
        assert_eq!(c, CandidateHandle(0));
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn free_list_hands_out_smallest_slot_first() {
        let mut d = fresh(0.7);
        let handles: Vec<_> = (0..6)
            .map(|i| d.insert_candidate(Point::new(i as f64, 0.0)))
            .collect();
        // Free slots 4, 1, 3 in scrambled order.
        d.remove_candidate(handles[4]);
        d.remove_candidate(handles[1]);
        d.remove_candidate(handles[3]);
        assert_eq!(d.candidate_count(), 3);
        // Reinsertion fills the smallest hole first, like the old
        // linear `position(Option::is_none)` scan did.
        assert_eq!(
            d.insert_candidate(Point::new(10.0, 0.0)),
            CandidateHandle(1)
        );
        assert_eq!(
            d.insert_candidate(Point::new(11.0, 0.0)),
            CandidateHandle(3)
        );
        assert_eq!(
            d.insert_candidate(Point::new(12.0, 0.0)),
            CandidateHandle(4)
        );
        assert_eq!(
            d.insert_candidate(Point::new(13.0, 0.0)),
            CandidateHandle(6)
        );
        d.verify_against_static();
    }

    #[test]
    fn best_tracks_updates() {
        let mut d = fresh(0.6);
        let west = d.insert_candidate(Point::new(0.0, 0.0));
        let east = d.insert_candidate(Point::new(20.0, 0.0));
        for i in 0..3 {
            d.insert_object(MovingObject::new(i, vec![Point::new(0.1 * i as f64, 0.0)]));
        }
        let (h, _, inf) = d.best().unwrap();
        assert_eq!(h, west);
        assert_eq!(inf, 3);
        // Shift the world east.
        let handles: Vec<_> = (3..8)
            .map(|i| {
                // y ∈ {0.0 .. 0.4}: PF(0.4) = 0.9/1.4 ≈ 0.64 ≥ 0.6.
                d.insert_object(MovingObject::new(
                    i,
                    vec![Point::new(20.0, 0.1 * (i - 3) as f64)],
                ))
            })
            .collect();
        let (h, _, inf) = d.best().unwrap();
        assert_eq!(h, east);
        assert_eq!(inf, 5);
        for h in handles {
            d.remove_object(h);
        }
        assert_eq!(d.best().unwrap().0, west);
        d.verify_against_static();
    }

    #[test]
    fn uninfluenceable_objects_can_become_influenceable() {
        // τ = 0.95 > PF(0): a single-position object can never be
        // influenced, but appending a second position changes that.
        let mut d = fresh(0.95);
        let c = d.insert_candidate(Point::new(0.0, 0.0));
        let o = d.insert_object(MovingObject::new(0, vec![Point::new(0.0, 0.1)]));
        assert_eq!(d.influence(c), 0);
        d.append_position(o, Point::new(0.1, 0.0));
        // Two positions at ~0.1 km: 1 − (1 − 0.9/1.1)² ≈ 0.967 ≥ 0.95.
        assert_eq!(d.influence(c), 1);
        d.verify_against_static();
    }

    #[test]
    fn append_gain_across_new_mask_words_is_counted() {
        // Regression: a row whose mask predates newer candidates has
        // fewer words than the current mask width. An append that gains
        // a candidate in one of the new words must still count it (the
        // gained-bit diff used to truncate at the old width).
        let mut d = fresh(0.7);
        let o = d.insert_object(MovingObject::new(0, vec![Point::new(500.0, 500.0)]));
        let handles: Vec<_> = (0..70)
            .map(|i| d.insert_candidate(Point::new(i as f64, 0.0)))
            .collect();
        let target = handles[69]; // slot 69: second mask word
        assert_eq!(d.influence(target), 0);
        d.append_position(o, Point::new(69.0, 0.0));
        assert_eq!(d.influence(target), 1);
        d.verify_against_static();
    }

    #[test]
    fn delta_and_full_scan_agree_op_for_op() {
        // The two maintenance modes must stay bit-identical through an
        // interleaving of all five update kinds, including candidate
        // slot reuse and a mid-stream mode switch.
        let mut rng = StdRng::seed_from_u64(21);
        let mut delta = fresh(0.7);
        let mut full = fresh(0.7);
        full.set_maintenance_mode(MaintenanceMode::FullScan);
        assert_eq!(full.maintenance_mode(), MaintenanceMode::FullScan);

        let mut objs: Vec<ObjectHandle> = Vec::new();
        let mut cands: Vec<CandidateHandle> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..240 {
            match rng.gen_range(0..10) {
                0..=2 if !objs.is_empty() => {
                    let h = objs[rng.gen_range(0..objs.len())];
                    let p = Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0));
                    delta.append_position(h, p);
                    full.append_position(h, p);
                }
                3..=4 => {
                    let o = rng_object(&mut rng, next_id);
                    next_id += 1;
                    let h = delta.insert_object(o.clone());
                    assert_eq!(full.insert_object(o), h);
                    objs.push(h);
                }
                5 if !objs.is_empty() => {
                    let h = objs.swap_remove(rng.gen_range(0..objs.len()));
                    assert_eq!(delta.remove_object(h), full.remove_object(h));
                }
                6..=8 => {
                    let p = Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0));
                    let h = delta.insert_candidate(p);
                    assert_eq!(full.insert_candidate(p), h);
                    cands.push(h);
                }
                _ if !cands.is_empty() => {
                    let h = cands.swap_remove(rng.gen_range(0..cands.len()));
                    assert_eq!(delta.remove_candidate(h), full.remove_candidate(h));
                }
                _ => {}
            }
            assert_eq!(delta.best(), full.best(), "step {step}");
            assert_eq!(
                delta.live_candidates(),
                full.live_candidates(),
                "step {step}"
            );
            if step == 120 {
                // Mode switches are safe mid-stream: the bookkeeping is
                // maintained in both modes.
                delta.set_maintenance_mode(MaintenanceMode::FullScan);
                full.set_maintenance_mode(MaintenanceMode::Delta);
            }
            if step % 40 == 0 {
                delta.verify_against_static();
                full.verify_against_static();
            }
        }
        delta.verify_against_static();
        full.verify_against_static();
    }

    #[test]
    fn candidate_tree_survives_heavy_slot_churn() {
        // Enough removals to trip the stale-entry rebuild threshold,
        // with reused slots landing at new locations — stale R-tree
        // entries must never resurrect an old candidate position.
        let mut rng = StdRng::seed_from_u64(33);
        let mut d = fresh(0.6);
        let objs: Vec<_> = (0..10)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        let mut live: Vec<CandidateHandle> = (0..40)
            .map(|_| {
                d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                ))
            })
            .collect();
        for round in 0..6 {
            // Churn: remove half, reinsert elsewhere, stream positions.
            for _ in 0..live.len() / 2 {
                let h = live.swap_remove(rng.gen_range(0..live.len()));
                d.remove_candidate(h);
            }
            for _ in 0..18 {
                live.push(d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                )));
            }
            for _ in 0..10 {
                let h = objs[rng.gen_range(0..objs.len())];
                d.append_position(
                    h,
                    Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
                );
            }
            d.verify_against_static();
            assert!(d.candidate_count() >= 18, "round {round}");
        }
    }

    #[test]
    fn log_blocked_kernel_agrees_through_update_stream() {
        // The log-domain chunked verdict (with its guard-band fallback)
        // must reproduce the scalar verdicts across all five update
        // kinds, including a mid-stream kernel switch in both
        // directions. `verify_against_static` additionally freezes the
        // LogBlocked instance into a static problem that solves under
        // the same kernel.
        let mut rng = StdRng::seed_from_u64(57);
        let mut log = fresh(0.7);
        let mut scalar = fresh(0.7);
        log.set_evaluation_kernel(EvalKernel::LogBlocked);
        assert_eq!(log.evaluation_kernel(), EvalKernel::LogBlocked);
        assert_eq!(scalar.evaluation_kernel(), EvalKernel::Scalar);

        let mut objs: Vec<ObjectHandle> = Vec::new();
        let mut cands: Vec<CandidateHandle> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..200 {
            match rng.gen_range(0..10) {
                0..=2 if !objs.is_empty() => {
                    let h = objs[rng.gen_range(0..objs.len())];
                    let p = Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0));
                    log.append_position(h, p);
                    scalar.append_position(h, p);
                }
                3..=4 => {
                    let o = rng_object(&mut rng, next_id);
                    next_id += 1;
                    let h = log.insert_object(o.clone());
                    assert_eq!(scalar.insert_object(o), h);
                    objs.push(h);
                }
                5 if !objs.is_empty() => {
                    let h = objs.swap_remove(rng.gen_range(0..objs.len()));
                    assert_eq!(log.remove_object(h), scalar.remove_object(h));
                }
                6..=8 => {
                    let p = Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0));
                    let h = log.insert_candidate(p);
                    assert_eq!(scalar.insert_candidate(p), h);
                    cands.push(h);
                }
                _ if !cands.is_empty() => {
                    let h = cands.swap_remove(rng.gen_range(0..cands.len()));
                    assert_eq!(log.remove_candidate(h), scalar.remove_candidate(h));
                }
                _ => {}
            }
            assert_eq!(log.best(), scalar.best(), "step {step}");
            assert_eq!(
                log.live_candidates(),
                scalar.live_candidates(),
                "step {step}"
            );
            if step == 100 {
                // Kernel switches are safe mid-stream: the verdict
                // contract is kernel-independent.
                log.set_evaluation_kernel(EvalKernel::Scalar);
                scalar.set_evaluation_kernel(EvalKernel::LogBlocked);
            }
            if step % 40 == 0 {
                log.verify_against_static();
                scalar.verify_against_static();
            }
        }
        log.verify_against_static();
        scalar.verify_against_static();
    }

    #[test]
    fn to_prime_ls_freezes_current_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = fresh(0.7);
        let cands: Vec<_> = (0..6)
            .map(|_| {
                d.insert_candidate(Point::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..20.0),
                ))
            })
            .collect();
        let objs: Vec<_> = (0..15)
            .map(|i| d.insert_object(rng_object(&mut rng, i)))
            .collect();
        // Punch holes so slot order and index order genuinely differ
        // from insertion order.
        d.remove_candidate(cands[1]);
        d.remove_object(objs[3]);

        let (problem, slots) = d.to_prime_ls().expect("non-empty live sets");
        assert_eq!(problem.candidates().len(), 5);
        assert_eq!(problem.objects().len(), 14);
        let influences = problem.all_influences();
        for (k, h) in slots.iter().enumerate() {
            assert_eq!(influences[k], d.influence(*h), "candidate index {k}");
        }
        // The static winner maps back to the incremental optimum, ties
        // included (index order == slot order).
        let r = problem.solve(Algorithm::PinocchioVo);
        let (bh, _, bi) = d.best().expect("live candidates");
        assert_eq!(slots[r.best_candidate], bh);
        assert_eq!(r.max_influence, bi);
        // live_candidates mirrors the same slot order and counts.
        let live = d.live_candidates();
        assert_eq!(live.len(), slots.len());
        for ((h, _, inf), slot) in live.iter().zip(&slots) {
            assert_eq!(h, slot);
            assert_eq!(*inf, d.influence(*h));
        }
    }

    #[test]
    fn to_prime_ls_rejects_empty_live_sets() {
        let mut d = fresh(0.7);
        assert!(d.to_prime_ls().is_err(), "empty state");
        d.insert_candidate(Point::ORIGIN);
        assert!(d.to_prime_ls().is_err(), "candidates but no objects");
        let o = d.insert_object(MovingObject::new(0, vec![Point::ORIGIN]));
        assert!(d.to_prime_ls().is_ok());
        assert_eq!(d.objects().count(), 1);
        d.remove_object(o);
        assert!(d.to_prime_ls().is_err(), "objects all removed again");
    }

    #[test]
    #[should_panic(expected = "stale object handle")]
    fn stale_object_handle_rejected() {
        let mut d = fresh(0.7);
        let o = d.insert_object(MovingObject::new(0, vec![Point::ORIGIN]));
        d.remove_object(o);
        d.remove_object(o);
    }

    #[test]
    #[should_panic(expected = "stale candidate handle")]
    fn stale_candidate_handle_rejected() {
        let mut d = fresh(0.7);
        let c = d.insert_candidate(Point::ORIGIN);
        d.remove_candidate(c);
        let _ = d.influence(c);
    }
}
