//! Distance metrics.
//!
//! The paper computes influence probabilities from the *geographic
//! spherical distance* between a candidate and a position (§3.1,
//! footnote 5), while all of its geometric pruning machinery
//! (`minDist`/`maxDist`, MBRs) is planar. This crate therefore offers both:
//!
//! * [`Euclidean`] — planar distance over points expressed in kilometres in
//!   a local projection; this is the metric the solvers run with after the
//!   dataset has been projected (see [`crate::projection`]), and
//! * [`Haversine`] — great-circle distance over points expressed as
//!   `(longitude, latitude)` degrees, used when working directly with raw
//!   check-in coordinates.
//!
//! Both metrics report kilometres so probability functions can be shared.

use crate::point::Point;

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A distance metric over [`Point`]s, reporting kilometres.
///
/// Implementations must satisfy the metric axioms on their advertised
/// domain (identity, symmetry, triangle inequality); the pruning rules in
/// `pinocchio-core` rely on them.
pub trait DistanceMetric: Send + Sync {
    /// Distance between `a` and `b` in kilometres.
    fn distance(&self, a: &Point, b: &Point) -> f64;

    /// A human-readable name for diagnostics and experiment logs.
    fn name(&self) -> &'static str;
}

/// Planar Euclidean distance (kilometres in a local projected frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl DistanceMetric for Euclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        a.euclidean(b)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Great-circle (haversine) distance over `(longitude, latitude)` degrees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Haversine;

impl Haversine {
    /// Haversine distance in kilometres between two lon/lat points.
    ///
    /// Numerically stable for both antipodal and very close points: the
    /// formula is based on `sin²` of half-angles and a clamped `asin`.
    pub fn distance_km(a: &Point, b: &Point) -> f64 {
        let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
        let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * h.sqrt().clamp(0.0, 1.0).asin()
    }
}

impl DistanceMetric for Haversine {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        Haversine::distance_km(a, b)
    }

    fn name(&self) -> &'static str {
        "haversine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn euclidean_basic() {
        let m = Euclidean;
        assert_eq!(
            m.distance(&Point::new(0.0, 0.0), &Point::new(0.0, 2.0)),
            2.0
        );
        assert_eq!(m.name(), "euclidean");
    }

    #[test]
    fn haversine_zero_for_identical_points() {
        let p = Point::new(103.8, 1.35); // Singapore
        assert_eq!(Haversine::distance_km(&p, &p), 0.0);
    }

    #[test]
    fn haversine_one_degree_latitude_is_about_111km() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let d = Haversine::distance_km(&a, &b);
        assert!(close(d, 111.195, 0.05), "got {d}");
    }

    #[test]
    fn haversine_longitude_shrinks_with_latitude() {
        let eq = Haversine::distance_km(&Point::new(0.0, 0.0), &Point::new(1.0, 0.0));
        let at60 = Haversine::distance_km(&Point::new(0.0, 60.0), &Point::new(1.0, 60.0));
        // cos(60°) = 0.5
        assert!(close(at60 / eq, 0.5, 1e-3), "ratio {}", at60 / eq);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = Point::new(103.85, 1.29);
        let b = Point::new(-122.42, 37.77);
        assert!(close(
            Haversine::distance_km(&a, &b),
            Haversine::distance_km(&b, &a),
            1e-9
        ));
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(180.0, 0.0);
        let d = Haversine::distance_km(&a, &b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!(close(d, half, 1e-6), "got {d}, want {half}");
    }

    #[test]
    fn haversine_triangle_inequality_spot_check() {
        let a = Point::new(103.8, 1.3);
        let b = Point::new(104.0, 1.4);
        let c = Point::new(103.9, 1.5);
        let ab = Haversine::distance_km(&a, &b);
        let bc = Haversine::distance_km(&b, &c);
        let ac = Haversine::distance_km(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
