//! Fig. 15 — effect of the behaviour factor ρ.
//!
//! PIN-VO running time and maximum influence for ρ ∈ {0.5, 0.7, 0.9} on
//! both datasets (λ = 1.0, τ = 0.7).
//!
//! Expected shape (paper): performance improves as ρ grows; the maximum
//! influence falls quickly as ρ declines (near positions contribute the
//! bulk of the cumulative probability), with Gowalla less sensitive than
//! Foursquare.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_prob::PowerLawPf;

fn main() {
    let rhos = [0.5, 0.7, 0.9];
    let mut record = serde_json::Map::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        let (_, candidates) =
            sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 15);
        let total = d.objects().len() as f64;
        let mut table = Table::new(
            format!("Fig. 15 ({}): effect of rho", kind.letter()),
            &["rho", "PIN-VO", "max inf", "inf %"],
        );
        let mut per_kind = Vec::new();
        for &rho in &rhos {
            let p = problem(
                &d,
                candidates.clone(),
                PowerLawPf::with_rho(rho),
                defaults::TAU,
            );
            let (r, secs) = timed_solve(&p, Algorithm::PinocchioVo);
            table.push_row(vec![
                format!("{rho:.1}"),
                fmt_secs(secs),
                r.max_influence.to_string(),
                format!("{:.1}", r.max_influence as f64 / total * 100.0),
            ]);
            per_kind.push(serde_json::json!({
                "rho": rho, "vo_secs": secs, "max_influence": r.max_influence,
            }));
        }
        println!("{table}");
        record.insert(kind.letter().to_string(), serde_json::json!(per_kind));
    }
    write_record("fig15_effect_rho", &serde_json::Value::Object(record));
}
