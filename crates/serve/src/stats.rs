//! `ServeStats` — the server's observability counter block.
//!
//! The serving layer obeys the same accounting discipline as the
//! solvers' [`SolveStats`](pinocchio_core::SolveStats): every request
//! line the server reads ends up in exactly one counter, mergeable
//! partials via `AddAssign`, and the invariants are asserted by tests
//! (and by the soak suite after every graceful shutdown). The block is
//! queryable in-band through the wire protocol's `stats` request.

use serde_json::{json, Value};

/// Upper bounds (microseconds, inclusive) of the queue-to-response
/// latency histogram buckets; one implicit overflow bucket follows.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 7] = [50, 100, 250, 500, 1_000, 5_000, 25_000];

/// Number of latency buckets (the bounds plus the overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Counters collected while serving.
///
/// ## Accounting invariant
///
/// Once the server has shut down gracefully, every request line it ever
/// read is accounted exactly once:
///
/// ```text
/// lines_received = malformed + shed + rejected_shutdown + control
///                + queries_completed() + updates_applied + update_errors
/// ```
///
/// and every completed query landed in exactly one latency bucket:
/// `queries_completed() == latency histogram total`. Mid-flight the
/// right-hand side lags `lines_received` by the requests still queued —
/// the `stats` endpoint reports live values, the invariant is asserted
/// at quiescence (see `accounting_is_complete_after_shutdown` in the
/// soak suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines read off all connections (every parse attempt).
    pub lines_received: u64,
    /// Lines rejected by the wire layer before admission (bad JSON,
    /// unknown op, unsupported version, invalid arguments).
    pub malformed: u64,
    /// Requests shed by the bounded admission/ingest queues (the typed
    /// `Overloaded` rejection — explicit backpressure, never blocking).
    pub shed: u64,
    /// Requests rejected because the server was already draining.
    pub rejected_shutdown: u64,
    /// Control commands honoured (`shutdown`).
    pub control: u64,
    /// Completed `best` queries.
    pub queries_best: u64,
    /// Completed `top_k` queries.
    pub queries_top_k: u64,
    /// Completed `influence_of` queries.
    pub queries_influence_of: u64,
    /// Completed `solve` queries (from-scratch solver dispatch).
    pub queries_solve: u64,
    /// Completed `heatmap` queries (each counted once, however many
    /// tile batches it streamed).
    pub queries_heatmap: u64,
    /// Completed `top_region` queries.
    pub queries_top_region: u64,
    /// Completed `stats` queries.
    pub queries_stats: u64,
    /// Completed `ping` queries.
    pub queries_ping: u64,
    /// Updates applied by the writer thread (each advanced the state).
    pub updates_applied: u64,
    /// Updates that failed validation (unknown id, duplicate id, …).
    pub update_errors: u64,
    /// Batches dispatched by the worker pool.
    pub batches: u64,
    /// Jobs carried by those batches (`>= batches`; the surplus is the
    /// batching win).
    pub batched_jobs: u64,
    /// From-scratch solver runs. `queries_solve - solve_runs` solves
    /// were answered from a batch-mate's shared result.
    pub solve_runs: u64,
    /// Snapshots published by the writer (monotone epoch count).
    pub epochs_published: u64,
    /// High-water mark of the admission queue depth (merge takes the
    /// max, not the sum — it is a level, not a flow).
    pub queue_high_water: u64,
    /// Queue-to-response latency histogram; bucket `i` counts completed
    /// queries with latency `<= LATENCY_BUCKET_BOUNDS_US[i]` (last
    /// bucket: everything slower).
    pub latency_us: [u64; LATENCY_BUCKETS],
}

impl std::ops::AddAssign for ServeStats {
    /// Merges a partial counter block (e.g. one worker's) into `self`.
    /// Every flow counter is a sum; the one level counter
    /// (`queue_high_water`) merges via `max`, so merging partials in any
    /// order reproduces the global totals.
    fn add_assign(&mut self, rhs: ServeStats) {
        self.lines_received += rhs.lines_received;
        self.malformed += rhs.malformed;
        self.shed += rhs.shed;
        self.rejected_shutdown += rhs.rejected_shutdown;
        self.control += rhs.control;
        self.queries_best += rhs.queries_best;
        self.queries_top_k += rhs.queries_top_k;
        self.queries_influence_of += rhs.queries_influence_of;
        self.queries_solve += rhs.queries_solve;
        self.queries_heatmap += rhs.queries_heatmap;
        self.queries_top_region += rhs.queries_top_region;
        self.queries_stats += rhs.queries_stats;
        self.queries_ping += rhs.queries_ping;
        self.updates_applied += rhs.updates_applied;
        self.update_errors += rhs.update_errors;
        self.batches += rhs.batches;
        self.batched_jobs += rhs.batched_jobs;
        self.solve_runs += rhs.solve_runs;
        self.epochs_published += rhs.epochs_published;
        self.queue_high_water = self.queue_high_water.max(rhs.queue_high_water);
        for (acc, v) in self.latency_us.iter_mut().zip(rhs.latency_us) {
            *acc += v;
        }
    }
}

impl ServeStats {
    /// Total queries completed by the worker pool.
    pub fn queries_completed(&self) -> u64 {
        self.queries_best
            + self.queries_top_k
            + self.queries_influence_of
            + self.queries_solve
            + self.queries_heatmap
            + self.queries_top_region
            + self.queries_stats
            + self.queries_ping
    }

    /// Total entries in the latency histogram.
    pub fn latency_total(&self) -> u64 {
        self.latency_us.iter().sum()
    }

    /// Request lines accounted for by some terminal outcome — at
    /// quiescence this must equal [`Self::lines_received`].
    pub fn accounted_lines(&self) -> u64 {
        self.malformed
            + self.shed
            + self.rejected_shutdown
            + self.control
            + self.queries_completed()
            + self.updates_applied
            + self.update_errors
    }

    /// Records one completed query's latency into the histogram.
    pub fn record_latency(&mut self, micros: u64) {
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.latency_us[bucket] += 1;
    }

    /// The block as a JSON object — the body of a `stats` response.
    pub fn to_json(&self) -> Value {
        let mut buckets = serde_json::Map::new();
        for (i, &count) in self.latency_us.iter().enumerate() {
            let label = match LATENCY_BUCKET_BOUNDS_US.get(i) {
                Some(bound) => format!("le_{bound}us"),
                None => "overflow".to_string(),
            };
            buckets.insert(label, json!(count));
        }
        json!({
            "lines_received": self.lines_received,
            "malformed": self.malformed,
            "shed": self.shed,
            "rejected_shutdown": self.rejected_shutdown,
            "control": self.control,
            "queries_best": self.queries_best,
            "queries_top_k": self.queries_top_k,
            "queries_influence_of": self.queries_influence_of,
            "queries_solve": self.queries_solve,
            "queries_heatmap": self.queries_heatmap,
            "queries_top_region": self.queries_top_region,
            "queries_stats": self.queries_stats,
            "queries_ping": self.queries_ping,
            "updates_applied": self.updates_applied,
            "update_errors": self.update_errors,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "solve_runs": self.solve_runs,
            "epochs_published": self.epochs_published,
            "queue_high_water": self.queue_high_water,
            "latency_us": Value::Object(buckets),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(step: u64) -> ServeStats {
        let mut s = ServeStats {
            lines_received: step,
            malformed: step + 1,
            shed: step + 2,
            rejected_shutdown: step + 3,
            control: step + 4,
            queries_best: step + 5,
            queries_top_k: step + 6,
            queries_influence_of: step + 7,
            queries_solve: step + 8,
            queries_stats: step + 9,
            queries_ping: step + 10,
            updates_applied: step + 11,
            update_errors: step + 12,
            batches: step + 13,
            batched_jobs: step + 14,
            solve_runs: step + 15,
            epochs_published: step + 16,
            queue_high_water: step + 17,
            queries_heatmap: step + 18,
            queries_top_region: step + 19,
            ..Default::default()
        };
        for (i, b) in s.latency_us.iter_mut().enumerate() {
            *b = step + i as u64;
        }
        s
    }

    #[test]
    fn merge_is_fieldwise_sum_with_max_high_water() {
        let a = filled(1);
        let b = filled(100);
        let mut merged = a;
        merged += b;
        assert_eq!(merged.lines_received, a.lines_received + b.lines_received);
        assert_eq!(merged.malformed, a.malformed + b.malformed);
        assert_eq!(merged.queries_solve, a.queries_solve + b.queries_solve);
        assert_eq!(merged.solve_runs, a.solve_runs + b.solve_runs);
        assert_eq!(
            merged.queue_high_water,
            a.queue_high_water.max(b.queue_high_water),
            "high-water is a level: merge takes the max"
        );
        for i in 0..LATENCY_BUCKETS {
            assert_eq!(merged.latency_us[i], a.latency_us[i] + b.latency_us[i]);
        }
        // Merging in either order agrees (commutative).
        let mut other = b;
        other += a;
        assert_eq!(merged, other);
    }

    #[test]
    fn accounting_identity_is_structural() {
        // A block built exclusively through terminal outcomes satisfies
        // the identity by construction.
        let mut s = ServeStats::default();
        for _ in 0..7 {
            s.lines_received += 1;
            s.malformed += 1;
        }
        for _ in 0..5 {
            s.lines_received += 1;
            s.shed += 1;
        }
        for _ in 0..11 {
            s.lines_received += 1;
            s.queries_best += 1;
            s.record_latency(40);
        }
        for _ in 0..3 {
            s.lines_received += 1;
            s.updates_applied += 1;
        }
        s.lines_received += 1;
        s.control += 1;
        assert_eq!(s.accounted_lines(), s.lines_received);
        assert_eq!(s.queries_completed(), s.latency_total());
    }

    #[test]
    fn latency_buckets_cover_the_full_range() {
        let mut s = ServeStats::default();
        s.record_latency(0);
        s.record_latency(50); // inclusive upper bound
        s.record_latency(51);
        s.record_latency(25_000);
        s.record_latency(25_001); // overflow
        s.record_latency(u64::MAX);
        assert_eq!(s.latency_us[0], 2);
        assert_eq!(s.latency_us[1], 1);
        assert_eq!(s.latency_us[LATENCY_BUCKETS - 2], 1);
        assert_eq!(s.latency_us[LATENCY_BUCKETS - 1], 2);
        assert_eq!(s.latency_total(), 6);
    }

    #[test]
    fn json_shape_is_stable() {
        let s = filled(3);
        let v = s.to_json();
        assert_eq!(v.get("lines_received").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("queue_high_water").and_then(Value::as_u64), Some(20));
        assert_eq!(v.get("queries_heatmap").and_then(Value::as_u64), Some(21));
        assert_eq!(
            v.get("queries_top_region").and_then(Value::as_u64),
            Some(22)
        );
        let buckets = v
            .get("latency_us")
            .and_then(Value::as_object)
            .expect("histogram object");
        assert_eq!(buckets.len(), LATENCY_BUCKETS);
        assert!(buckets.get("le_50us").is_some());
        assert!(buckets.get("overflow").is_some());
    }
}
