//! Fixture: a fallible shard coordinator wired into `SolveStats`.
//!
//! Mirrors the real coordinator's discipline: each shard worker returns
//! its own counter block and the coordinator merges them with
//! `AddAssign`, so the accounting identity (`accounted_pairs` equals
//! the sum over shards) survives the merge.

use crate::result::SolveStats;

/// Coordinates shard partials and returns the merged counters.
pub fn try_solve_sharded(partials: &[SolveStats]) -> SolveStats {
    let mut merged = SolveStats::default();
    for partial in partials {
        merged += *partial;
    }
    merged
}
