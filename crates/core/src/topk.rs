//! Top-k PRIME-LS — an extension in the spirit of the top-t most
//! influential facility literature the paper builds on (Xia et al.,
//! VLDB 2005; Zhan et al., CIKM 2012): return the `k` candidates with
//! the highest influence, not just the single optimum.
//!
//! The PINOCCHIO-VO machinery generalises directly: Strategy 1's global
//! cut-off becomes the *k-th best* certified influence instead of the
//! best one. Candidates are still popped in descending `maxInf` order;
//! once the heap's top `maxInf` falls strictly below the cut-off, no
//! remaining candidate can enter the top-k (ties cannot be lost either —
//! a skipped candidate's influence is strictly below the cut-off).

use crate::problem::PrimeLs;
use crate::result::{SolveError, SolveStats};
use crate::vo::{prepare, validate_candidate};
use pinocchio_geo::Point;
use pinocchio_prob::ProbabilityFunction;
use std::collections::BinaryHeap;

/// One entry of a top-k result, ranked by `(influence desc, index asc)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// Candidate index into the problem's candidate slice.
    pub candidate: usize,
    /// The candidate's location.
    pub location: Point,
    /// Exact influence `inf(c)`.
    pub influence: u32,
}

/// The outcome of a top-k solve: the ranked entries plus the same cost
/// counters every other solver reports, so the pruning/validation
/// economics of the k-th-best cut-off are measurable.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The top-`k` candidates, ranked `(influence desc, index asc)`.
    pub entries: Vec<TopKEntry>,
    /// Cost counters; pair accounting is complete (see
    /// `top_k_accounting_is_complete`).
    pub stats: SolveStats,
}

/// Computes the exact top-`k` candidates by influence using the
/// bound-driven validation of PINOCCHIO-VO.
///
/// Returns fewer than `k` entries only when the problem has fewer than
/// `k` candidates. The ranking convention matches
/// `SolveResult::ranking`: descending influence, ties towards the
/// smaller candidate index.
///
/// ```
/// use pinocchio_core::{solve_top_k, PrimeLs};
/// use pinocchio_data::MovingObject;
/// use pinocchio_geo::Point;
/// use pinocchio_prob::PowerLawPf;
///
/// let problem = PrimeLs::builder()
///     .objects(vec![
///         MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
///         MovingObject::new(1, vec![Point::new(0.2, 0.0)]),
///         MovingObject::new(2, vec![Point::new(30.0, 0.0)]),
///     ])
///     .candidates(vec![Point::new(0.1, 0.0), Point::new(30.1, 0.0), Point::new(99.0, 0.0)])
///     .probability_function(PowerLawPf::paper_default())
///     .tau(0.7)
///     .build()
///     .unwrap();
/// let top2 = solve_top_k(&problem, 2);
/// assert_eq!(top2[0].candidate, 0); // influences both downtown users
/// assert_eq!(top2[0].influence, 2);
/// assert_eq!(top2[1].candidate, 1);
/// assert_eq!(top2[1].influence, 1);
/// ```
///
/// # Panics
/// Panics if `k == 0`.
pub fn solve_top_k<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    k: usize,
) -> Vec<TopKEntry> {
    assert!(k > 0, "top-k needs k >= 1");
    match try_solve_top_k(problem, k) {
        Ok(result) => result.entries,
        // pinocchio-lint: allow(panic-path) -- ZeroK is asserted away above and try_solve_top_k has no other error path; kept panicking for signature stability
        Err(e) => panic!("top-k invariant violated: {e}"),
    }
}

/// Fallible form of [`solve_top_k`] that also reports [`SolveStats`]:
/// returns [`SolveError::ZeroK`] instead of panicking on `k == 0`.
///
/// The validation core is shared with PINOCCHIO-VO
/// (`vo::validate_candidate`); only the cut-off differs — the k-th best
/// certified influence instead of the single best — so the pair
/// accounting identity (`accounted_pairs()` equals the influenceable
/// pair space) holds for every `k`.
pub fn try_solve_top_k<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    k: usize,
) -> Result<TopKResult, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroK);
    }
    let mut pair = problem.pair_eval();
    let m = problem.candidates().len();

    let mut prep = prepare(problem, true);
    let vs_store = std::mem::take(&mut prep.vs_store);
    let min_inf = std::mem::take(&mut prep.min_inf);
    let max_inf = std::mem::take(&mut prep.max_inf);
    let mut stats = prep.stats;

    let mut heap: BinaryHeap<(u32, u32, std::cmp::Reverse<usize>)> = (0..m)
        .map(|j| (max_inf[j], min_inf[j], std::cmp::Reverse(j)))
        .collect();

    // Exact influences of fully validated candidates.
    let mut validated: Vec<(u32, usize)> = Vec::new();
    // Min-heap over the current best-k exact influences; its top is the
    // Strategy-1 cut-off once k candidates are in.
    let mut best_k: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let cutoff = |best_k: &BinaryHeap<std::cmp::Reverse<u32>>| -> u32 {
        if best_k.len() < k {
            0
        } else {
            best_k.peek().map_or(0, |r| r.0)
        }
    };

    while let Some((top_max, _, std::cmp::Reverse(j))) = heap.pop() {
        if top_max < cutoff(&best_k) {
            // Nobody left can reach the current top-k. Account for the
            // popped candidate and the drained remainder, exactly like
            // the single-optimum driver's cut-off.
            stats.candidates_skipped_by_bounds += 1 + heap.len() as u64;
            stats.pairs_skipped_by_bounds += vs_store[j].len() as u64
                + heap
                    .iter()
                    .map(|&(_, _, std::cmp::Reverse(r))| vs_store[r].len() as u64)
                    .sum::<u64>();
            break;
        }
        let candidate = problem.candidates()[j];
        let Some(exact) = validate_candidate(
            &mut pair,
            &candidate,
            &vs_store[j],
            (min_inf[j], max_inf[j]),
            true,
            || cutoff(&best_k),
            &mut stats,
        ) else {
            continue;
        };
        validated.push((exact, j));
        best_k.push(std::cmp::Reverse(exact));
        if best_k.len() > k {
            best_k.pop();
        }
    }

    validated.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    validated.truncate(k);
    let entries = validated
        .into_iter()
        .map(|(influence, candidate)| TopKEntry {
            candidate,
            location: problem.candidates()[candidate],
            influence,
        })
        .collect();
    Ok(TopKResult { entries, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Algorithm;
    use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn problem(seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(80, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, 40, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn top_k_matches_full_ranking() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let full = p.solve(Algorithm::Pinocchio);
            let ranking = full.ranking().unwrap();
            let influences = full.influences.unwrap();
            for k in [1usize, 3, 10, 40] {
                let top = solve_top_k(&p, k);
                assert_eq!(top.len(), k.min(p.candidates().len()), "seed {seed} k {k}");
                for (entry, &expect) in top.iter().zip(&ranking) {
                    assert_eq!(entry.candidate, expect, "seed {seed} k {k}");
                    assert_eq!(entry.influence, influences[expect]);
                }
            }
        }
    }

    #[test]
    fn top_1_matches_solve() {
        let p = problem(9);
        let top = solve_top_k(&p, 1);
        let best = p.solve(Algorithm::PinocchioVo);
        assert_eq!(top[0].candidate, best.best_candidate);
        assert_eq!(top[0].influence, best.max_influence);
    }

    #[test]
    fn k_larger_than_m_returns_everything_sorted() {
        let p = problem(11);
        let top = solve_top_k(&p, 1000);
        assert_eq!(top.len(), p.candidates().len());
        for w in top.windows(2) {
            assert!(
                w[0].influence > w[1].influence
                    || (w[0].influence == w[1].influence && w[0].candidate < w[1].candidate)
            );
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let p = problem(13);
        let _ = solve_top_k(&p, 0);
    }

    #[test]
    fn try_solve_reports_zero_k_as_error() {
        let p = problem(13);
        assert_eq!(try_solve_top_k(&p, 0).err(), Some(SolveError::ZeroK));
    }

    #[test]
    fn top_k_accounting_is_complete() {
        let p = problem(5);
        let a2d = crate::state::A2d::build(p.objects(), p.pf(), p.tau());
        let influenceable_pairs = (a2d.influenceable() * p.candidates().len()) as u64;
        for k in [1usize, 5, 40] {
            let r = try_solve_top_k(&p, k).expect("k >= 1");
            assert_eq!(r.stats.accounted_pairs(), influenceable_pairs, "k={k}");
        }
    }
}
