//! Bounded-io fixture: the two sanctioned shapes — a `read_bounded_*`
//! helper, and a growth loop whose every extension is capped.

use std::io::BufRead;

pub fn read_bounded_frame(reader: &mut impl BufRead, max: usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let taken = match reader.fill_buf() {
            Ok(chunk) if !chunk.is_empty() => {
                if out.len() + chunk.len() > max {
                    return None;
                }
                out.extend_from_slice(chunk);
                chunk.len()
            }
            _ => break,
        };
        reader.consume(taken);
    }
    Some(out)
}

pub fn copy_capped(reader: &mut impl BufRead, max: usize) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let taken = match reader.fill_buf() {
            Ok(chunk) if !chunk.is_empty() => {
                if out.len() + chunk.len() > max {
                    break;
                }
                out.extend_from_slice(chunk);
                chunk.len()
            }
            _ => break,
        };
        reader.consume(taken);
    }
    out
}
