//! A line-oriented model of one Rust source file.
//!
//! Rules never see raw text: each line is split into *code* (with
//! comment text and string/char-literal contents blanked out) and
//! *comment* (the text of any `//` / `/* */` / doc comment on that
//! line). Blanking rather than deleting keeps byte offsets stable, so a
//! finding's column context still lines up with the file on disk.
//!
//! The model also tracks which lines belong to `#[cfg(test)]` regions
//! (by brace counting from the attribute) and parses
//! `pinocchio-lint: allow(<rule>) -- <justification>` suppressions.

use crate::diag::{is_known_rule, Diagnostic, SUPPRESSION_RULE};

/// One source line after lexical classification.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// blanked (quotes kept, contents replaced by spaces).
    pub code: String,
    /// The concatenated comment text of the line (without `//`, `/*`).
    pub comment: String,
    /// Whether this line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Whether the line's comment is a doc comment (`///` or `//!`).
    /// Doc comments describe code — they never carry live suppressions.
    pub doc_comment: bool,
}

/// A parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// The 1-based line the suppression applies to.
    pub target_line: usize,
    /// The 1-based line the comment itself is on.
    pub comment_line: usize,
    /// Whether a non-empty `-- <justification>` was given. Unjustified
    /// suppressions suppress nothing.
    pub justified: bool,
}

/// One fully classified source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Lines in order; index 0 is line 1.
    pub lines: Vec<Line>,
    /// All suppression comments found in the file.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes `text` into the line model. `path` is stored verbatim and
    /// used by rules for scoping decisions.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lexer = Lexer::default();
        let mut lines: Vec<Line> = text
            .lines()
            .map(|raw| {
                let (code, comment, doc_comment) = lexer.strip_line(raw);
                Line {
                    code,
                    comment,
                    in_test: false,
                    doc_comment,
                }
            })
            .collect();
        mark_test_regions(&mut lines);
        let suppressions = parse_suppressions(&lines);
        SourceFile {
            path: path.to_string(),
            lines,
            suppressions,
        }
    }

    /// Whether `rule` is validly suppressed at 1-based `line`.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.justified && s.target_line == line && s.rule == rule)
    }

    /// Diagnostics for malformed suppressions: missing justification or
    /// unknown rule id. These are deny-severity — a suppression that
    /// does not explain itself defeats the audit trail it exists for.
    pub fn suppression_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for s in &self.suppressions {
            if !s.justified {
                out.push(
                    Diagnostic::deny(
                        SUPPRESSION_RULE,
                        &self.path,
                        s.comment_line,
                        format!("suppression of `{}` has no justification", s.rule),
                    )
                    .with_suggestion(
                        "write `// pinocchio-lint: allow(<rule>) -- <why this is sound>`",
                    ),
                );
            }
            if !is_known_rule(&s.rule) {
                out.push(Diagnostic::deny(
                    SUPPRESSION_RULE,
                    &self.path,
                    s.comment_line,
                    format!("suppression names unknown rule `{}`", s.rule),
                ));
            }
        }
        out
    }

    /// Whether any code line contains `needle` (comments and literal
    /// contents excluded).
    pub fn code_contains(&self, needle: &str) -> bool {
        self.lines.iter().any(|l| l.code.contains(needle))
    }
}

/// Lexer state carried across lines: block-comment nesting (Rust block
/// comments nest) and raw-string continuation.
#[derive(Default)]
struct Lexer {
    block_depth: usize,
    /// `Some(hashes)` while inside a raw string `r#…"…"#…`.
    raw_string: Option<usize>,
    /// Inside an ordinary `"…"` literal that continues past a newline
    /// (e.g. a `\`-continuation string).
    in_string: bool,
}

impl Lexer {
    /// Splits one raw line into (code, comment, is-doc-comment),
    /// blanking literal contents. State persists across calls for
    /// multi-line constructs.
    fn strip_line(&mut self, raw: &str) -> (String, String, bool) {
        let bytes = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut doc_comment = false;
        let mut i = 0usize;
        if self.in_string {
            self.in_string = false;
            self.scan_string(raw, &mut code, &mut i);
        }
        while i < bytes.len() {
            if self.block_depth > 0 {
                // Inside /* … */ — collect as comment text.
                if bytes[i..].starts_with(b"*/") {
                    self.block_depth -= 1;
                    i += 2;
                } else if bytes[i..].starts_with(b"/*") {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    push_char(raw, &mut comment, &mut i);
                }
                continue;
            }
            if let Some(hashes) = self.raw_string {
                // Inside a raw string literal — blank until `"###`.
                let mut close = String::from("\"");
                close.push_str(&"#".repeat(hashes));
                if raw[i..].starts_with(&close) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += close.len();
                    self.raw_string = None;
                } else {
                    code.push(' ');
                    skip_char(raw, &mut i);
                }
                continue;
            }
            if bytes[i..].starts_with(b"//") {
                doc_comment = bytes[i..].starts_with(b"///") || bytes[i..].starts_with(b"//!");
                comment.push_str(raw[i + 2..].trim());
                break;
            }
            if bytes[i..].starts_with(b"/*") {
                self.block_depth += 1;
                i += 2;
                continue;
            }
            match bytes[i] {
                b'"' => {
                    code.push('"');
                    i += 1;
                    self.scan_string(raw, &mut code, &mut i);
                }
                b'r' if is_raw_string_start(raw, i) => {
                    let hashes = raw_string_hashes(raw, i).unwrap_or(0);
                    code.push('r');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    code.push('"');
                    i += 1 + hashes + 1;
                    self.raw_string = Some(hashes);
                }
                b'b' if is_byte_raw_string_start(raw, i) => {
                    // `br#"…"#` — a byte raw string. Without this arm the
                    // `b` prefix defeats the identifier check on the `r`
                    // and the contents get scanned as a *normal* string,
                    // where a lone `"` or `\` corrupts the rest of the
                    // lex.
                    let hashes = raw_string_hashes(raw, i + 1).unwrap_or(0);
                    code.push('b');
                    code.push('r');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    code.push('"');
                    i += 2 + hashes + 1;
                    self.raw_string = Some(hashes);
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if let Some(len) = char_literal_len(raw, i) {
                        code.push('\'');
                        for _ in 0..len.saturating_sub(2) {
                            code.push(' ');
                        }
                        code.push('\'');
                        i += len;
                    } else {
                        push_char(raw, &mut code, &mut i);
                    }
                }
                _ => push_char(raw, &mut code, &mut i),
            }
        }
        (code, comment, doc_comment)
    }

    /// Consumes a normal string literal body (opening quote already
    /// emitted), blanking its contents. A literal still open at the end
    /// of the line (a `\`-continuation string) sets `in_string` so the
    /// next line resumes inside it.
    fn scan_string(&mut self, raw: &str, code: &mut String, i: &mut usize) {
        let bytes = raw.as_bytes();
        while *i < bytes.len() {
            match bytes[*i] {
                b'\\' => {
                    code.push(' ');
                    *i += 1;
                    if *i < bytes.len() {
                        code.push(' ');
                        skip_char(raw, i);
                    }
                }
                b'"' => {
                    code.push('"');
                    *i += 1;
                    return;
                }
                _ => {
                    code.push(' ');
                    skip_char(raw, i);
                }
            }
        }
        self.in_string = true;
    }
}

fn push_char(raw: &str, out: &mut String, i: &mut usize) {
    if let Some(c) = raw[*i..].chars().next() {
        out.push(c);
        *i += c.len_utf8();
    } else {
        *i += 1;
    }
}

fn skip_char(raw: &str, i: &mut usize) {
    if let Some(c) = raw[*i..].chars().next() {
        *i += c.len_utf8();
    } else {
        *i += 1;
    }
}

/// The hash count of a raw-string opener whose `r` sits at byte
/// `r_pos` (`r"` → 0, `r##"` → 2), or `None` when no `"` follows the
/// hashes (e.g. a raw identifier like `r#type`).
fn raw_string_hashes(raw: &str, r_pos: usize) -> Option<usize> {
    let bytes = raw.as_bytes();
    let mut j = r_pos + 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Is the `r` at byte `i` the start of a raw string (`r"` or `r#…"`)
/// rather than part of an identifier?
fn is_raw_string_start(raw: &str, i: usize) -> bool {
    let bytes = raw.as_bytes();
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    raw_string_hashes(raw, i).is_some()
}

/// Is the `b` at byte `i` the start of a byte raw string (`br"…"` /
/// `br#…"`)?
fn is_byte_raw_string_start(raw: &str, i: usize) -> bool {
    let bytes = raw.as_bytes();
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    bytes.get(i + 1) == Some(&b'r') && raw_string_hashes(raw, i + 1).is_some()
}

/// Byte length of a char literal starting at `i`, or `None` if this is
/// a lifetime / loop label.
fn char_literal_len(raw: &str, i: usize) -> Option<usize> {
    let rest = &raw[i + 1..];
    let mut chars = rest.char_indices();
    let (_, first) = chars.next()?;
    if first == '\\' {
        // Escaped literal: find the closing quote. Length is the opening
        // quote + the body up to and including the closing quote.
        for (off, c) in chars {
            if c == '\'' {
                return Some(off + 2);
            }
        }
        None
    } else {
        let (off, second) = chars.next()?;
        (second == '\'').then(|| 1 + off + second.len_utf8())
    }
}

/// Marks lines inside `#[cfg(test)]` items by brace counting.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // (depth the region closes at) for each open test item.
    let mut test_entry: Option<i64> = None;

    for line in lines.iter_mut() {
        let code = line.code.trim();
        if test_entry.is_some() {
            line.in_test = true;
        }
        let starts_test = pending_attr && !code.is_empty() && !code.starts_with("#[");
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
        } else if starts_test {
            pending_attr = false;
        }
        if starts_test && test_entry.is_none() {
            line.in_test = true;
            test_entry = Some(depth);
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(entry) = test_entry {
            // The item closed on this line (brace depth back at the
            // attribute's level); the closing line itself was already
            // marked. A brace-less item (`#[cfg(test)] use …;`) closes
            // immediately.
            if depth <= entry {
                test_entry = None;
            }
        }
    }
}

/// Extracts `pinocchio-lint: allow(<rule>) -- <reason>` suppressions.
///
/// A trailing suppression applies to its own line; a suppression on a
/// comment-only line applies to the next line that carries code
/// (allowing several stacked suppression comments above one statement).
fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.doc_comment {
            continue; // docs may quote the syntax without enacting it
        }
        let Some(pos) = line.comment.find("pinocchio-lint:") else {
            continue;
        };
        let directive = line.comment[pos + "pinocchio-lint:".len()..].trim();
        let Some(rest) = directive.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let justified = tail
            .strip_prefix("--")
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        let target_line = if line.code.trim().is_empty() {
            // Comment-only line: target the next code-bearing line.
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(idx + 1)
        } else {
            idx + 1
        };
        out.push(Suppression {
            rule,
            target_line,
            comment_line: idx + 1,
            justified,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_strings() {
        let f = SourceFile::parse("x.rs", "let a = \"x.unwrap()\"; // c.unwrap()\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("c.unwrap()"));
        // Quotes survive so string boundaries remain visible.
        assert!(f.lines[0].code.contains('"'));
    }

    #[test]
    fn strips_block_comments_across_lines() {
        let f = SourceFile::parse("x.rs", "a /* x\ny.unwrap()\nz */ b\n");
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[1].comment.contains("unwrap"));
        assert!(f.lines[2].code.contains('b'));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse("x.rs", "/* a /* b */ still */ code\n");
        assert!(f.lines[0].code.contains("code"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("x.rs", "let p = r#\".unwrap()\"#;\nlet q = 1;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("let q"));
    }

    #[test]
    fn byte_raw_strings_are_blanked() {
        // Regression: `br#"…"#` used to be lexed as identifier `br`, a
        // stray `#`, then a *normal* string — so the lone `"` inside
        // closed it early and `.unwrap()` leaked into code.
        let f = SourceFile::parse(
            "x.rs",
            "let p = br#\"say \" then .unwrap()\"#;\nlet q = 2;\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"), "{}", f.lines[0].code);
        assert!(f.lines[0].code.contains("br"));
        assert!(f.lines[1].code.contains("let q"), "{}", f.lines[1].code);
    }

    #[test]
    fn raw_strings_may_contain_quotes_comments_and_braces() {
        let text = "let a = r#\"quote \" and // comment and /* block and { brace\"#;\nlet b = 3;\n";
        let f = SourceFile::parse("x.rs", text);
        let code = &f.lines[0].code;
        assert!(!code.contains("comment"), "{code}");
        assert!(!code.contains('{'), "braces in literals must blank: {code}");
        assert!(f.lines[0].comment.is_empty(), "{:?}", f.lines[0].comment);
        assert!(f.lines[1].code.contains("let b"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let f = SourceFile::parse("x.rs", "let r#type = r#fn + 1;\nlet s = \"x\";\n");
        assert!(f.lines[0].code.contains("r#type"), "{}", f.lines[0].code);
        assert!(f.lines[1].code.contains("let s"));
    }

    #[test]
    fn multi_hash_raw_strings_ignore_shorter_closers() {
        let text = "let a = r##\"inner \"# not closed .unwrap()\"##;\nlet b = 4;\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(!f.lines[0].code.contains("unwrap"), "{}", f.lines[0].code);
        assert!(f.lines[1].code.contains("let b"));
    }

    #[test]
    fn suppressions_inside_raw_strings_do_not_enact() {
        let text =
            "let doc = r#\"// pinocchio-lint: allow(panic-path) -- quoted\"#;\nx.unwrap();\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
    }

    #[test]
    fn nested_block_comment_depth_spans_lines() {
        let text = "/* outer /* inner\nstill /* deeper */ inner */ comment */ code();\nafter();\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].code.contains("code()"), "{}", f.lines[1].code);
        assert!(!f.lines[1].code.contains("inner"), "{}", f.lines[1].code);
        assert!(f.lines[2].code.contains("after"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) { let c = '\"'; }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("'a"), "lifetime must survive: {code}");
        // The quote char literal must not open a string.
        assert!(code.contains("fn f"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = SourceFile::parse("x.rs", "/// x.unwrap()\nfn real() {}\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[0].comment.contains("unwrap"));
    }

    #[test]
    fn test_region_marking() {
        let text = "fn lib() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    fn t() { x.unwrap(); }\n\
                    }\n\
                    fn lib2() {}\n";
        let f = SourceFile::parse("x.rs", text);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn suppression_parsing_trailing_and_preceding() {
        let text =
            "x.unwrap(); // pinocchio-lint: allow(panic-path) -- invariant: built non-empty\n\
                    // pinocchio-lint: allow(atomic-ordering) -- single-threaded\n\
                    y.load(O);\n\
                    z.unwrap(); // pinocchio-lint: allow(panic-path)\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.is_suppressed("panic-path", 1));
        assert!(f.is_suppressed("atomic-ordering", 3));
        // No justification: parses, but suppresses nothing and is itself
        // a deny diagnostic.
        assert!(!f.is_suppressed("panic-path", 4));
        let diags = f.suppression_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "suppression-hygiene");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn doc_comments_never_enact_suppressions() {
        let f = SourceFile::parse(
            "x.rs",
            "/// Use `// pinocchio-lint: allow(panic-path)` to silence.\nx.unwrap();\n",
        );
        assert!(f.suppressions.is_empty());
        assert!(f.suppression_diagnostics().is_empty());
    }

    #[test]
    fn continuation_strings_stay_strings() {
        // A `\`-continued string spanning lines: its second line must not
        // be parsed as code or comments.
        let text = "let s = \"first \\\n    // pinocchio-lint: allow(panic-path) and .unwrap()\";\nlet t = 1;\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.suppressions.is_empty());
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("let t"));
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let f = SourceFile::parse(
            "x.rs",
            "a(); // pinocchio-lint: allow(no-such-rule) -- because\n",
        );
        let diags = f.suppression_diagnostics();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no-such-rule"));
    }
}
