//! Solver results and cost instrumentation.

use pinocchio_geo::Point;
use std::fmt;
use std::time::Duration;

/// The four solvers evaluated in §6, plus this repo's candidate-centric
/// join extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// NA — exhaustive evaluation of all object–candidate pairs.
    Naive,
    /// PIN — Algorithm 2 (pruning + plain validation).
    Pinocchio,
    /// PIN-VO — Algorithm 3 (pruning + Strategy 1 + Strategy 2).
    PinocchioVo,
    /// PIN-VO* — validation optimizations without the pruning phase.
    PinocchioVoStar,
    /// PIN-JOIN — candidate-centric object join over the μ-aggregate
    /// `MbrTree` (hierarchical subtree-IA/NIB pruning), an extension
    /// beyond the paper.
    PinocchioJoin,
}

impl Algorithm {
    /// The paper's four algorithms, in its comparison order — the figure
    /// reproductions iterate exactly these, so the extension solvers are
    /// deliberately *not* included here.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Naive,
        Algorithm::Pinocchio,
        Algorithm::PinocchioVo,
        Algorithm::PinocchioVoStar,
    ];

    /// The paper's four algorithms plus this repo's extensions — what
    /// the cross-solver exactness suites iterate.
    pub const WITH_EXTENSIONS: [Algorithm; 5] = [
        Algorithm::Naive,
        Algorithm::Pinocchio,
        Algorithm::PinocchioVo,
        Algorithm::PinocchioVoStar,
        Algorithm::PinocchioJoin,
    ];

    /// The label used in the paper's plots (and this repo's extensions).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Naive => "NA",
            Algorithm::Pinocchio => "PIN",
            Algorithm::PinocchioVo => "PIN-VO",
            Algorithm::PinocchioVoStar => "PIN-VO*",
            Algorithm::PinocchioJoin => "PIN-JOIN",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost counters collected during a solve.
///
/// These power the pruning-effect (Fig. 10) and strategy-ablation
/// experiments; wall-clock time alone would hide *why* a solver wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Object–candidate pairs decided by the influence-arcs rule.
    pub decided_by_ia: u64,
    /// Object–candidate pairs decided by the non-influence boundary.
    pub decided_by_nib: u64,
    /// Object–candidate pairs that required probability evaluation.
    pub validated_pairs: u64,
    /// Individual position probabilities evaluated (`PF(dist)` calls).
    pub positions_evaluated: u64,
    /// Candidates whose validation ran to completion (VO only).
    pub candidates_fully_validated: u64,
    /// Candidates skipped entirely by Strategy 1 (VO only).
    pub candidates_skipped_by_bounds: u64,
    /// Object–candidate pairs never evaluated because Strategy 1 killed
    /// or skipped the candidate (VO only). Together with the decided and
    /// validated counters this accounts for every influenceable pair.
    pub pairs_skipped_by_bounds: u64,
    /// Objects that can never be influenced (`minMaxRadius` undefined).
    pub uninfluenceable_objects: u64,
    /// Position blocks whose contribution was bounded from the block MBR
    /// and never refined (blocked kernel only; zero on the scalar path).
    pub blocks_pruned: u64,
    /// Positions inside pruned blocks — decided without a `PF(dist)`
    /// evaluation. For every validated pair the identity
    /// `positions_evaluated + positions_skipped_by_blocks = total
    /// positions of the pair's object` holds, mirroring the scalar
    /// path's accounting where the two terms are `n'` and `n − n'`.
    pub positions_skipped_by_blocks: u64,
    /// Subtrees of the object μ-aggregate tree accepted wholesale by the
    /// node-level IA rule (join solver only). The objects below are
    /// counted in `decided_by_ia` in bulk, so `decided_by_ia +
    /// decided_by_nib + validated_pairs + pairs_skipped_by_bounds` still
    /// equals the influenceable pair space.
    pub subtrees_pruned_ia: u64,
    /// Subtrees excluded wholesale by the node-level NIB rule (join
    /// solver only); the objects below land in `decided_by_nib` in bulk.
    pub subtrees_pruned_nib: u64,
    /// Aggregate-tree nodes popped during join traversals (join solver
    /// only) — the join-phase analogue of the R-tree query counters.
    pub join_nodes_visited: u64,
    /// Pairs whose log-domain accumulator landed inside the guard band
    /// and were re-resolved by the exact product-space fallback
    /// (log-blocked kernel only; zero elsewhere). Each such pair is
    /// already counted in `validated_pairs` — this counter only measures
    /// how often the band was too tight, not extra pairs.
    pub log_band_fallbacks: u64,
    /// Heat-map quadtree cells whose descent terminated fully resolved
    /// with at least one cell-level IA verdict (`lo == hi > 0`): the
    /// influence count is constant over the whole cell and no position
    /// was ever touched (heat-map descent only; zero elsewhere). The
    /// three `cells_*` counters partition the terminal cells of a
    /// descent, so `Σ span² over cells_resolved_ia +
    /// cells_resolved_nib + cells_refined = resolution²` — the
    /// tile-coverage accounting identity.
    pub cells_resolved_ia: u64,
    /// Heat-map cells resolved with every object excluded
    /// (`lo == hi == 0`) — the cell-level NIB analogue.
    pub cells_resolved_nib: u64,
    /// Heat-map leaf cells (single tiles) that stayed ambiguous and
    /// were refined by exact evaluation at the tile's sample point;
    /// those evaluations land in `validated_pairs` as usual.
    pub cells_refined: u64,
}

impl std::ops::AddAssign for SolveStats {
    /// Merges the counters of a partial solve (e.g. one worker thread's
    /// stripe) into `self`; every field is a sum, so merging partials in
    /// any order reproduces the sequential totals.
    fn add_assign(&mut self, rhs: SolveStats) {
        self.decided_by_ia += rhs.decided_by_ia;
        self.decided_by_nib += rhs.decided_by_nib;
        self.validated_pairs += rhs.validated_pairs;
        self.positions_evaluated += rhs.positions_evaluated;
        self.candidates_fully_validated += rhs.candidates_fully_validated;
        self.candidates_skipped_by_bounds += rhs.candidates_skipped_by_bounds;
        self.pairs_skipped_by_bounds += rhs.pairs_skipped_by_bounds;
        self.uninfluenceable_objects += rhs.uninfluenceable_objects;
        self.blocks_pruned += rhs.blocks_pruned;
        self.positions_skipped_by_blocks += rhs.positions_skipped_by_blocks;
        self.subtrees_pruned_ia += rhs.subtrees_pruned_ia;
        self.subtrees_pruned_nib += rhs.subtrees_pruned_nib;
        self.join_nodes_visited += rhs.join_nodes_visited;
        self.log_band_fallbacks += rhs.log_band_fallbacks;
        self.cells_resolved_ia += rhs.cells_resolved_ia;
        self.cells_resolved_nib += rhs.cells_resolved_nib;
        self.cells_refined += rhs.cells_refined;
    }
}

impl SolveStats {
    /// Pairs accounted for by pruning, validation, or a Strategy 1 skip —
    /// for every solver this must equal its share of the pair space (see
    /// the `accounting_is_complete` tests).
    pub fn accounted_pairs(&self) -> u64 {
        self.decided_by_ia
            + self.decided_by_nib
            + self.validated_pairs
            + self.pairs_skipped_by_bounds
    }

    /// Total object–candidate pairs decided without exact validation.
    pub fn pruned_pairs(&self) -> u64 {
        self.decided_by_ia + self.decided_by_nib
    }

    /// Fraction of decided pairs that never needed validation.
    ///
    /// Returns `None` when nothing was decided (degenerate input).
    pub fn pruned_fraction(&self) -> Option<f64> {
        let total = self.pruned_pairs() + self.validated_pairs;
        (total > 0).then(|| self.pruned_pairs() as f64 / total as f64)
    }
}

/// Errors surfaced by the fallible (`try_*`) solver entry points.
///
/// The panicking entry points keep their historical signatures by
/// wrapping these; callers that prefer to handle degenerate inputs
/// themselves use the `try_*` variants instead.
///
/// `#[non_exhaustive]`: downstream layers (the wire protocol in
/// `pinocchio-serve` in particular) must translate through [`fmt::Display`]
/// or a wildcard arm, so adding a solver error variant is never a
/// breaking change and never leaks a `Debug` rendering onto the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// A parallel driver was asked to run with zero worker threads.
    ZeroThreads,
    /// A top-k query asked for an empty ranking (`k == 0`).
    ZeroK,
    /// No candidate was ever fully validated. Impossible for a problem
    /// built through [`PrimeLsBuilder`](crate::PrimeLsBuilder), which
    /// rejects empty candidate sets, but surfaced as an error so that
    /// drivers need not trust that invariant with a panic.
    NoValidatedCandidate,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::ZeroThreads => f.write_str("need at least one thread"),
            SolveError::ZeroK => f.write_str("top-k requires k >= 1"),
            SolveError::NoValidatedCandidate => {
                f.write_str("no candidate was fully validated (empty candidate set?)")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Index and value of the maximum element, ties broken towards the
/// smallest index.
///
/// Every solver must pick its winner through this one helper so the
/// smallest-index tie-break — the contract that makes all algorithms
/// return bit-identical results — lives in exactly one place. Returns
/// `None` on an empty slice.
pub fn argmax_smallest_index(values: &[u32]) -> Option<(usize, u32)> {
    let mut best: Option<(usize, u32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// The outcome of one PRIME-LS solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Which algorithm produced this result.
    pub algorithm: Algorithm,
    /// Index (into the candidate slice) of the optimal candidate; ties
    /// broken towards the smallest index, so all algorithms agree.
    pub best_candidate: usize,
    /// The optimal candidate's location.
    pub best_location: Point,
    /// `inf(best)` — the maximum influence (Definition 2).
    pub max_influence: u32,
    /// Exact influence of every candidate, when the algorithm computes
    /// it (NA and PIN do; the VO variants stop early by design and only
    /// certify the winner).
    pub influences: Option<Vec<u32>>,
    /// Cost counters.
    pub stats: SolveStats,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

impl SolveResult {
    /// Candidate indices ranked by descending influence (ties by index),
    /// available when `influences` is present. Used by the Top-K
    /// effectiveness experiments.
    pub fn ranking(&self) -> Option<Vec<usize>> {
        let inf = self.influences.as_ref()?;
        let mut idx: Vec<usize> = (0..inf.len()).collect();
        idx.sort_by(|&a, &b| inf[b].cmp(&inf[a]).then(a.cmp(&b)));
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Naive.label(), "NA");
        assert_eq!(Algorithm::PinocchioVo.to_string(), "PIN-VO");
        assert_eq!(Algorithm::PinocchioJoin.label(), "PIN-JOIN");
        assert_eq!(Algorithm::ALL.len(), 4, "the paper's comparison set");
        assert_eq!(Algorithm::WITH_EXTENSIONS.len(), 5);
        assert!(Algorithm::WITH_EXTENSIONS.starts_with(&Algorithm::ALL));
    }

    #[test]
    fn stats_fractions() {
        let s = SolveStats {
            decided_by_ia: 30,
            decided_by_nib: 30,
            validated_pairs: 40,
            ..Default::default()
        };
        assert_eq!(s.pruned_pairs(), 60);
        assert!((s.pruned_fraction().unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(SolveStats::default().pruned_fraction(), None);
    }

    #[test]
    fn argmax_breaks_ties_towards_smallest_index() {
        assert_eq!(argmax_smallest_index(&[]), None);
        assert_eq!(argmax_smallest_index(&[7]), Some((0, 7)));
        assert_eq!(argmax_smallest_index(&[1, 3, 2]), Some((1, 3)));
        // Tie on the maximum: the earlier index must win.
        assert_eq!(argmax_smallest_index(&[2, 5, 5, 1]), Some((1, 5)));
        // All-tied input (the all-uninfluenceable world): index 0 wins.
        assert_eq!(argmax_smallest_index(&[0, 0, 0]), Some((0, 0)));
        // Maximum at the last index, no tie.
        assert_eq!(argmax_smallest_index(&[1, 2, 9]), Some((2, 9)));
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let a = SolveStats {
            decided_by_ia: 1,
            decided_by_nib: 2,
            validated_pairs: 3,
            positions_evaluated: 4,
            candidates_fully_validated: 5,
            candidates_skipped_by_bounds: 6,
            pairs_skipped_by_bounds: 7,
            uninfluenceable_objects: 8,
            blocks_pruned: 9,
            positions_skipped_by_blocks: 10,
            subtrees_pruned_ia: 11,
            subtrees_pruned_nib: 12,
            join_nodes_visited: 13,
            log_band_fallbacks: 14,
            cells_resolved_ia: 15,
            cells_resolved_nib: 16,
            cells_refined: 17,
        };
        let mut merged = a;
        merged += a;
        assert_eq!(
            merged,
            SolveStats {
                decided_by_ia: 2,
                decided_by_nib: 4,
                validated_pairs: 6,
                positions_evaluated: 8,
                candidates_fully_validated: 10,
                candidates_skipped_by_bounds: 12,
                pairs_skipped_by_bounds: 14,
                uninfluenceable_objects: 16,
                blocks_pruned: 18,
                positions_skipped_by_blocks: 20,
                subtrees_pruned_ia: 22,
                subtrees_pruned_nib: 24,
                join_nodes_visited: 26,
                log_band_fallbacks: 28,
                cells_resolved_ia: 30,
                cells_resolved_nib: 32,
                cells_refined: 34,
            }
        );
        assert_eq!(merged.accounted_pairs(), 2 + 4 + 6 + 14);
    }

    #[test]
    fn ranking_sorts_descending_with_index_ties() {
        let r = SolveResult {
            algorithm: Algorithm::Naive,
            best_candidate: 2,
            best_location: Point::ORIGIN,
            max_influence: 9,
            influences: Some(vec![3, 9, 9, 1]),
            stats: SolveStats::default(),
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.ranking().unwrap(), vec![1, 2, 0, 3]);
    }
}
