//! End-to-end tests of the `pinocchio-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pinocchio-cli"))
}

#[test]
fn stats_prints_dataset_summary() {
    let out = cli()
        .args(["stats", "--dataset", "small"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("user count"), "{text}");
    assert!(
        text.contains("300"),
        "default small world has 300 users: {text}"
    );
}

#[test]
fn solve_reports_best_candidate() {
    let out = cli()
        .args([
            "solve",
            "--dataset",
            "small",
            "--algo",
            "pin-vo",
            "--tau",
            "0.7",
            "--candidates",
            "50",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best candidate"), "{text}");
    assert!(text.contains("max influence"), "{text}");
}

#[test]
fn solve_algorithms_agree_via_cli() {
    let influence_of = |algo: &str| -> String {
        let out = cli()
            .args(["solve", "--dataset", "small", "--algo", algo, "--seed", "5"])
            .output()
            .unwrap();
        assert!(out.status.success(), "algo {algo}");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("max influence"))
            .unwrap()
            .to_string()
    };
    let na = influence_of("na");
    assert_eq!(na, influence_of("pin"));
    assert_eq!(na, influence_of("pin-vo"));
    assert_eq!(na, influence_of("pin-vo*"));
}

#[test]
fn solve_threads_flag_reaches_every_parallel_solver() {
    let influence_of = |algo: &str, threads: &str| -> String {
        let out = cli()
            .args([
                "solve",
                "--dataset",
                "small",
                "--algo",
                algo,
                "--seed",
                "5",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "algo {algo} threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("max influence"))
            .unwrap()
            .to_string()
    };
    let sequential = influence_of("pin-vo", "1");
    for algo in ["na", "pin", "pin-vo"] {
        assert_eq!(sequential, influence_of(algo, "4"), "algo {algo}");
    }

    let out = cli()
        .args(["solve", "--dataset", "small", "--threads", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--threads 0 must be rejected");

    let out = cli()
        .args([
            "solve",
            "--dataset",
            "small",
            "--algo",
            "pin-vo*",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "pin-vo* has no parallel driver");
}

#[test]
fn generate_writes_loadable_csv() {
    let dir = std::env::temp_dir().join(format!("pinocchio-cli-gen-{}", std::process::id()));
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "small",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let d = pinocchio::data::io::load_dataset(
        "reload",
        &dir.join("checkins.csv"),
        Some(&dir.join("venues.csv")),
    )
    .unwrap();
    assert_eq!(d.objects().len(), 300);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_top_lists_k_candidates() {
    let out = cli()
        .args(["solve", "--dataset", "small", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("  1. candidate"), "{text}");
}

#[test]
fn approx_reports_sample_size() {
    let out = cli()
        .args([
            "approx",
            "--dataset",
            "small",
            "--epsilon",
            "0.2",
            "--candidates",
            "40",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sample size"), "{text}");
    assert!(text.contains("best candidate"), "{text}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = cli()
        .args(["solve", "--algo", "warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = cli().args(["solve", "--tau", "1.5"]).output().unwrap();
    assert!(!out.status.success(), "tau out of range must be rejected");
}
