//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this vendored crate
//! provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, fast PRNG with 256 bits of state. Streams are
//! deterministic per seed and identical across platforms, which is all
//! the workspace's generators and tests rely on (no code depends on
//! matching crates.io `rand`'s exact stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Deliberate integer mixing/narrowing throughout the PRNG core; the
// workspace's strict cast lints target its own numerics, not this shim.
#![allow(clippy::cast_possible_truncation)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the `rand` trait, reduced to the
/// constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw 64-bit
/// output (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts (the stand-in for `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64: u64, i32: u32, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back into
        // the half-open range.
        if v >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

fn prev_down(x: f64) -> f64 {
    // Largest float strictly below `x` for finite positive spans.
    f64::from_bits(x.to_bits() - 1)
}

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift with a
/// rejection step (unbiased). `bound = 0` means the full 64-bit range.
fn uniform_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= lo.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`] (the `rand::Rng` subset the
/// workspace uses).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The named generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion — recommended by the xoshiro authors
            // for seeding from narrow entropy.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let h = rng.gen_range(0usize..10);
            assert!(h < 10);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
