//! Evaluation toolkit: effectiveness metrics, ground truth handling,
//! curve fitting and result formatting for the experiment harness.
//!
//! * [`metrics`] — `Precision@K` and `AveragePrecision@K` over Top-K
//!   recommendation lists (Tables 3–4; footnote 6 notes `Recall@K`
//!   equals `Precision@K` in this setting because the relevant and
//!   recommended lists share `K`),
//! * [`ground_truth`] — relevant-location rankings from per-venue
//!   check-in counts,
//! * [`polyfit`] — least-squares polynomial fitting (the paper fits the
//!   ⟨n, τ⟩ level curve with Matlab's `polyfit` in Fig. 13b),
//! * [`levelcurve`] — tuning `τ` so a configuration hits a target
//!   maximum influence (the level-curve construction of Fig. 13a),
//! * [`table`] — fixed-width text tables and CSV emission for the
//!   experiment binaries.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ground_truth;
pub mod levelcurve;
pub mod metrics;
pub mod polyfit;
pub mod table;

pub use ground_truth::relevant_ranking;
pub use levelcurve::tune_tau;
pub use metrics::{average_precision_at_k, precision_at_k};
pub use polyfit::Polynomial;
pub use table::Table;
