//! Lock-ordering fixture: every path acquires `stats` before `queue`,
//! and the short path scopes its guard so nothing nests.

use std::sync::Mutex;

pub struct Pair {
    stats: Mutex<u64>,
    queue: Mutex<u64>,
}

impl Pair {
    pub fn record_then_drain(&self) -> u64 {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        *stats + *queue
    }

    pub fn drain_then_record(&self) -> u64 {
        let drained = {
            let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            *queue
        };
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        drained + *stats
    }
}
